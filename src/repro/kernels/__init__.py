"""Backend-dispatched compiled kernels for the engine hot loops.

The columnar frontier merge (:func:`_impl.expand_merge`,
:func:`_impl.group_pairs`) and the Omega recursion
(:func:`_impl.omega_eval`) dominate the path engine's runtime.  This
package selects, builds and caches one implementation set per process:

* ``"numpy"`` — no kernel set at all; the engine runs its vectorized
  NumPy reference path.  Always available.
* ``"numba"`` — the loops of :mod:`repro.kernels._impl` compiled with
  ``numba.njit`` (no ``fastmath``, so no reassociation or FMA
  contraction) and warmed on dummy inputs at build time.  Requires the
  optional ``repro[speed]`` extra.
* ``"python"`` — the same loops un-jitted.  Orders of magnitude slower
  than NumPy; exists so the dispatch path and the bitwise-equivalence
  tests run on machines without numba.
* ``"auto"`` — resolves to ``"numba"`` when it imports and compiles,
  else to ``"numpy"`` with a ``kernels.fallback`` obs event.

All backends produce bitwise-identical results (see the contract notes
in :mod:`repro.kernels._impl`).  Compilation happens once per process:
the built :class:`KernelSet` is cached in a module table (and, when an
:class:`~repro.check.engine_cache.EngineCache` is in play, referenced
from it alongside the contexts), and a failed numba build is remembered
so later ``"auto"`` resolutions fall back without re-importing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import CheckError
from repro.kernels import _impl
from repro.kernels._impl import OMEGA_MAX_COUNT, OMEGA_MAX_GROUPS
from repro.obs import get_collector

__all__ = [
    "BACKENDS",
    "KernelSet",
    "OMEGA_MAX_COUNT",
    "OMEGA_MAX_GROUPS",
    "active_kernels",
    "kernel_set",
    "numba_available",
    "reset_kernel_cache",
    "resolve_backend",
]

#: Accepted values for every ``kernels=`` option in the public API.
BACKENDS = ("auto", "numpy", "numba", "python")


@dataclass(frozen=True)
class KernelSet:
    """One backend's compiled (or plain) kernel callables.

    ``make_omega_memo`` builds an empty memo mapping of the type the
    backend's :func:`~repro.kernels._impl.omega_eval` accepts (a numba
    typed dict for the jitted kernel, a plain dict otherwise);
    ``compile_seconds`` is the one-off JIT build + warm-up cost paid by
    the process that compiled the set (0.0 for ``"python"``).
    """

    backend: str
    expand_merge: Callable
    group_pairs: Callable
    omega_eval: Callable
    make_omega_memo: Callable[[], object]
    compile_seconds: float


_SETS: Dict[str, KernelSet] = {}
_NUMBA_FAILURE: Optional[str] = None


def reset_kernel_cache() -> None:
    """Forget built kernel sets and any remembered numba failure.

    Test hook: lets the fallback tests poison/unpoison the numba import
    and have resolution re-run from scratch.
    """
    global _NUMBA_FAILURE
    _SETS.clear()
    _NUMBA_FAILURE = None


def numba_available() -> bool:
    """Whether the ``"numba"`` backend can be (or already was) built."""
    if "numba" in _SETS:
        return True
    if _NUMBA_FAILURE is not None:
        return False
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _warm(kernels: KernelSet) -> None:
    """Force-compile every kernel on minimal inputs of the real dtypes."""
    int1 = np.zeros(1, dtype=np.int64)
    float1 = np.ones(1, dtype=np.float64)
    indptr = np.array([0, 1], dtype=np.int64)
    kernels.expand_merge(
        int1, int1, int1, float1, indptr, int1, float1, int1, int1, int1, 1
    )
    kernels.group_pairs(int1, int1, float1)
    rows = np.ones((1, 1), dtype=np.int64)
    weights = np.zeros((1, 1), dtype=np.float64)
    out = np.empty(1, dtype=np.float64)
    kernels.omega_eval(
        rows,
        np.empty(0, dtype=np.int64),
        int1,
        weights,
        weights,
        kernels.make_omega_memo(),
        out,
    )


def _build_numba_set() -> KernelSet:
    """Import numba, jit the loop kernels and warm them; timed."""
    start = time.perf_counter()
    from numba import njit, typed, types

    key_type = types.UniTuple(types.int64, 2)

    def make_omega_memo() -> object:
        return typed.Dict.empty(key_type, types.float64)

    built = KernelSet(
        backend="numba",
        expand_merge=njit(nogil=True)(_impl.expand_merge),
        group_pairs=njit(nogil=True)(_impl.group_pairs),
        omega_eval=njit(nogil=True)(_impl.omega_eval),
        make_omega_memo=make_omega_memo,
        compile_seconds=0.0,
    )
    _warm(built)
    elapsed = time.perf_counter() - start
    return KernelSet(
        backend="numba",
        expand_merge=built.expand_merge,
        group_pairs=built.group_pairs,
        omega_eval=built.omega_eval,
        make_omega_memo=make_omega_memo,
        compile_seconds=elapsed,
    )


def kernel_set(backend: str) -> Optional[KernelSet]:
    """Build (once per process) and return the set for a concrete backend.

    ``"numpy"`` returns ``None`` — the engine's reference path needs no
    kernel set.  Raises :class:`~repro.exceptions.CheckError` when the
    ``"numba"`` set cannot be built (import or compile failure); the
    failure is remembered so later calls fail fast.
    """
    global _NUMBA_FAILURE
    if backend == "numpy":
        return None
    cached = _SETS.get(backend)
    if cached is not None:
        return cached
    if backend == "python":
        built = KernelSet(
            backend="python",
            expand_merge=_impl.expand_merge,
            group_pairs=_impl.group_pairs,
            omega_eval=_impl.omega_eval,
            make_omega_memo=dict,
            compile_seconds=0.0,
        )
    elif backend == "numba":
        if _NUMBA_FAILURE is not None:
            raise CheckError(f"numba kernels unavailable: {_NUMBA_FAILURE}")
        try:
            built = _build_numba_set()
        except Exception as exc:
            _NUMBA_FAILURE = f"{type(exc).__name__}: {exc}"
            raise CheckError(
                f"numba kernels unavailable: {_NUMBA_FAILURE}"
            ) from exc
        collector = get_collector()
        if collector.enabled:
            collector.event(
                "kernels.compiled",
                backend="numba",
                compile_seconds=built.compile_seconds,
            )
    else:
        raise CheckError(f"unknown kernel backend {backend!r}")
    _SETS[backend] = built
    return built


def resolve_backend(requested: str) -> str:
    """Resolve a requested backend name to a concrete one.

    ``"auto"`` prefers ``"numba"`` when the set builds, falling back to
    ``"numpy"`` with a ``kernels.fallback`` obs event otherwise.  An
    explicit ``"numba"`` request raises when unavailable; ``"numpy"``
    and ``"python"`` pass through (building the python set eagerly).
    """
    if requested not in BACKENDS:
        raise CheckError(
            f"unknown kernel backend {requested!r} (choose from "
            f"{', '.join(BACKENDS)})"
        )
    if requested != "auto":
        if requested in ("numba", "python"):
            kernel_set(requested)
        return requested
    try:
        kernel_set("numba")
    except CheckError as exc:
        collector = get_collector()
        if collector.enabled:
            collector.event(
                "kernels.fallback",
                requested="auto",
                backend="numpy",
                reason=str(exc),
            )
        return "numpy"
    return "numba"


def active_kernels(backend: str) -> Optional[KernelSet]:
    """The kernel set a hot loop should use for a resolved backend.

    Never raises: when the requested set cannot be built here (e.g. a
    pool worker whose parent resolved ``"numba"`` but whose own import
    fails), records a ``kernels.fallback`` event and returns ``None``
    so the caller runs the NumPy path.
    """
    if backend in ("numpy", ""):
        return None
    if backend == "auto":
        backend = resolve_backend("auto")
        if backend == "numpy":
            return None
    cached = _SETS.get(backend)
    if cached is not None:
        return cached
    try:
        return kernel_set(backend)
    except CheckError as exc:
        collector = get_collector()
        if collector.enabled:
            collector.event(
                "kernels.fallback",
                requested=backend,
                backend="numpy",
                reason=str(exc),
            )
        return None
