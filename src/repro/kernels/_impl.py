"""Backend-agnostic loop kernels for the two hot paths.

Every function in this module is written in the nopython subset of
Python/NumPy that Numba's ``njit`` accepts — scalars, tuples, lists of
tuples and NumPy arrays only, no helper calls — and is **also** run
un-jitted as the ``"python"`` backend, which is what the
bitwise-equivalence tests exercise on machines without numba.
:mod:`repro.kernels` wraps these callables per backend; nothing here
imports numba.

Bitwise contract
----------------
These kernels must reproduce the NumPy reference paths *bitwise*:

* :func:`expand_merge` and :func:`group_pairs` replace the
  ``np.lexsort`` + boundary-detection passes of ``_sweep_packed``.  A
  stable sort by a key tuple has exactly one result permutation, so the
  LSD radix sort used here (stable counting passes, least-significant
  key first) yields the identical order ``np.lexsort`` produces.  The
  kernels return the mass column *in sorted order* plus the group
  starts; the per-group mass reduction stays on ``np.add.reduceat`` in
  the NumPy wrapper, shared verbatim by all backends, because the
  ufunc's internal pairwise summation order is part of the bitwise
  contract and is matched trivially by invoking the ufunc itself.
  The truncation test and discarded-mass sum also stay in the wrapper.
* :func:`omega_eval` replays the scalar Omega stack of
  ``OmegaCalculator._evaluate`` over bit-packed count keys: the same
  first-positive-group ``(i, j)`` selection, the same
  ``w_j * Omega(k - 1_j) + w_i * Omega(k - 1_i)`` arithmetic on the
  same float64 weights, hence the same values by induction.  Compiled
  without ``fastmath`` so no FMA contraction or reassociation happens.
"""

from __future__ import annotations

import numpy as np

# Fixed bit-field layout for packed Omega count keys: 4 fields of 15
# bits per 63-bit word, two words -> at most 8 coefficient groups with
# counts below 2**15.  Callers must check both limits and fall back to
# the tuple-keyed NumPy path when exceeded.
OMEGA_BITS = 15
OMEGA_FIELDS_PER_WORD = 4
OMEGA_MAX_GROUPS = 2 * OMEGA_FIELDS_PER_WORD
OMEGA_MAX_COUNT = (1 << OMEGA_BITS) - 1


def expand_merge(
    states,
    class_lo,
    class_hi,
    mass,
    indptr,
    targets,
    probs,
    moves,
    move_lo,
    move_hi,
    total,
):
    """One fused frontier step: CSR expansion, class derivation, grouping.

    Expands every frontier row through the CSR successor arrays,
    derives the child class words from the per-move bit-field
    increments, then sorts the children by ``(hi, lo, state)`` with a
    stable LSD radix sort — the exact permutation
    ``np.lexsort((state, lo, hi))`` produces — and detects the group
    boundaries.  ``total`` is the pre-computed total out-degree of the
    frontier (the wrapper already needed it for the memory-guard
    checkpoint).

    Returns ``(group_states, group_lo, group_hi, sorted_mass,
    group_starts)``: one leader key per distinct ``(state, lo, hi)``
    group in sort order, the child masses permuted into sort order, and
    the start offset of each group — ready for
    ``np.add.reduceat(sorted_mass, group_starts)`` in the wrapper.
    """
    child_states = np.empty(total, dtype=np.int64)
    child_lo = np.empty(total, dtype=np.int64)
    child_hi = np.empty(total, dtype=np.int64)
    child_mass = np.empty(total, dtype=np.float64)
    pos = 0
    for row in range(states.shape[0]):
        state = states[row]
        parent_lo = class_lo[row]
        parent_hi = class_hi[row]
        parent_mass = mass[row]
        for edge in range(indptr[state], indptr[state + 1]):
            move = moves[edge]
            child_states[pos] = targets[edge]
            child_lo[pos] = parent_lo + move_lo[move]
            child_hi[pos] = parent_hi + move_hi[move]
            child_mass[pos] = parent_mass * probs[edge]
            pos += 1

    # Stable LSD radix sort over the keys state (least significant),
    # lo, hi: 8-bit counting passes, skipping the passes a key's value
    # range never reaches (hi is all-zero whenever the class fields fit
    # one word, costing zero passes).
    order = np.arange(total)
    scratch = np.empty(total, dtype=np.int64)
    for key in (child_states, child_lo, child_hi):
        key_max = np.int64(0)
        for i in range(total):
            if key[i] > key_max:
                key_max = key[i]
        shift = 0
        while (key_max >> shift) > 0:
            counts = np.zeros(257, dtype=np.int64)
            for i in range(total):
                counts[((key[order[i]] >> shift) & 0xFF) + 1] += 1
            for digit in range(256):
                counts[digit + 1] += counts[digit]
            for i in range(total):
                digit = (key[order[i]] >> shift) & 0xFF
                scratch[counts[digit]] = order[i]
                counts[digit] += 1
            swap = order
            order = scratch
            scratch = swap
            shift += 8

    sorted_mass = np.empty(total, dtype=np.float64)
    group_states = np.empty(total, dtype=np.int64)
    group_lo = np.empty(total, dtype=np.int64)
    group_hi = np.empty(total, dtype=np.int64)
    group_starts = np.empty(total, dtype=np.int64)
    num_groups = 0
    prev_state = np.int64(0)
    prev_lo = np.int64(0)
    prev_hi = np.int64(0)
    for rank in range(total):
        idx = order[rank]
        state = child_states[idx]
        lo = child_lo[idx]
        hi = child_hi[idx]
        sorted_mass[rank] = child_mass[idx]
        if rank == 0 or state != prev_state or lo != prev_lo or hi != prev_hi:
            group_states[num_groups] = state
            group_lo[num_groups] = lo
            group_hi[num_groups] = hi
            group_starts[num_groups] = rank
            num_groups += 1
            prev_state = state
            prev_lo = lo
            prev_hi = hi
    return (
        group_states[:num_groups],
        group_lo[:num_groups],
        group_hi[:num_groups],
        sorted_mass,
        group_starts[:num_groups],
    )


def group_pairs(lo, hi, mass):
    """Final class aggregation: group the stored psi rows by class words.

    The ``np.lexsort((lo, hi))`` + boundary-detection counterpart for
    the end-of-sweep aggregation: stable radix sort by ``(hi, lo)``,
    then one grouping pass.  Returns ``(group_lo, group_hi,
    sorted_mass, group_starts)`` for the wrapper's
    ``np.add.reduceat``.
    """
    n = lo.shape[0]
    order = np.arange(n)
    scratch = np.empty(n, dtype=np.int64)
    for key in (lo, hi):
        key_max = np.int64(0)
        for i in range(n):
            if key[i] > key_max:
                key_max = key[i]
        shift = 0
        while (key_max >> shift) > 0:
            counts = np.zeros(257, dtype=np.int64)
            for i in range(n):
                counts[((key[order[i]] >> shift) & 0xFF) + 1] += 1
            for digit in range(256):
                counts[digit + 1] += counts[digit]
            for i in range(n):
                digit = (key[order[i]] >> shift) & 0xFF
                scratch[counts[digit]] = order[i]
                counts[digit] += 1
            swap = order
            order = scratch
            scratch = swap
            shift += 8

    sorted_mass = np.empty(n, dtype=np.float64)
    group_lo = np.empty(n, dtype=np.int64)
    group_hi = np.empty(n, dtype=np.int64)
    group_starts = np.empty(n, dtype=np.int64)
    num_groups = 0
    prev_lo = np.int64(0)
    prev_hi = np.int64(0)
    for rank in range(n):
        idx = order[rank]
        key_lo = lo[idx]
        key_hi = hi[idx]
        sorted_mass[rank] = mass[idx]
        if rank == 0 or key_lo != prev_lo or key_hi != prev_hi:
            group_lo[num_groups] = key_lo
            group_hi[num_groups] = key_hi
            group_starts[num_groups] = rank
            num_groups += 1
            prev_lo = key_lo
            prev_hi = key_hi
    return (
        group_lo[:num_groups],
        group_hi[:num_groups],
        sorted_mass,
        group_starts[:num_groups],
    )


def omega_eval(rows, greater, lesser, weight_j, weight_i, memo, out):
    """Memoized Omega recursion (Alg. 4.8) over packed count keys.

    ``rows`` is an ``(m, g)`` int64 count matrix with ``g <=``
    :data:`OMEGA_MAX_GROUPS` and every count ``<=``
    :data:`OMEGA_MAX_COUNT`; ``greater``/``lesser`` list the group
    indices with coefficient above/at-most the threshold, in ascending
    order (the scalar path's first-positive selection order);
    ``weight_j``/``weight_i`` are the per-``(i, j)`` recursion weights
    built with the scalar arithmetic.  ``memo`` maps packed
    ``(lo, hi)`` keys to values and persists across calls per
    calculator and backend.  Writes ``Omega(threshold, rows[r])`` into
    ``out[r]`` and returns the number of nodes evaluated for the first
    time (the ``evaluations`` delta).
    """
    evals = 0
    one = np.int64(1)
    for r in range(rows.shape[0]):
        root_lo = np.int64(0)
        root_hi = np.int64(0)
        for f in range(rows.shape[1]):
            value = rows[r, f]
            if f < OMEGA_FIELDS_PER_WORD:
                root_lo |= value << np.int64(f * OMEGA_BITS)
            else:
                root_hi |= value << np.int64((f - OMEGA_FIELDS_PER_WORD) * OMEGA_BITS)
        root = (root_lo, root_hi)
        if root not in memo:
            # Iterative DFS replaying OmegaCalculator._evaluate: a node
            # is resolved once both children are memoized; missing
            # children are pushed and the node re-visited.
            stack = [root]
            while len(stack) > 0:
                cur = stack[len(stack) - 1]
                if cur in memo:
                    stack.pop()
                    continue
                cur_lo = cur[0]
                cur_hi = cur[1]
                i_sel = -1
                mass_greater = np.int64(0)
                for t in range(greater.shape[0]):
                    f = greater[t]
                    if f < OMEGA_FIELDS_PER_WORD:
                        count = (cur_lo >> np.int64(f * OMEGA_BITS)) & np.int64(
                            OMEGA_MAX_COUNT
                        )
                    else:
                        count = (
                            cur_hi >> np.int64((f - OMEGA_FIELDS_PER_WORD) * OMEGA_BITS)
                        ) & np.int64(OMEGA_MAX_COUNT)
                    mass_greater += count
                    if i_sel < 0 and count > 0:
                        i_sel = f
                if mass_greater == 0:
                    memo[cur] = 1.0
                    evals += 1
                    stack.pop()
                    continue
                j_sel = -1
                mass_lesser = np.int64(0)
                for t in range(lesser.shape[0]):
                    f = lesser[t]
                    if f < OMEGA_FIELDS_PER_WORD:
                        count = (cur_lo >> np.int64(f * OMEGA_BITS)) & np.int64(
                            OMEGA_MAX_COUNT
                        )
                    else:
                        count = (
                            cur_hi >> np.int64((f - OMEGA_FIELDS_PER_WORD) * OMEGA_BITS)
                        ) & np.int64(OMEGA_MAX_COUNT)
                    mass_lesser += count
                    if j_sel < 0 and count > 0:
                        j_sel = f
                if mass_lesser == 0:
                    memo[cur] = 0.0
                    evals += 1
                    stack.pop()
                    continue
                # Decrement one field: fields are independent bit
                # ranges and the decremented count is positive, so a
                # plain word subtraction never borrows across fields.
                if j_sel < OMEGA_FIELDS_PER_WORD:
                    child_j = (cur_lo - (one << np.int64(j_sel * OMEGA_BITS)), cur_hi)
                else:
                    child_j = (
                        cur_lo,
                        cur_hi
                        - (one << np.int64((j_sel - OMEGA_FIELDS_PER_WORD) * OMEGA_BITS)),
                    )
                if i_sel < OMEGA_FIELDS_PER_WORD:
                    child_i = (cur_lo - (one << np.int64(i_sel * OMEGA_BITS)), cur_hi)
                else:
                    child_i = (
                        cur_lo,
                        cur_hi
                        - (one << np.int64((i_sel - OMEGA_FIELDS_PER_WORD) * OMEGA_BITS)),
                    )
                have_j = child_j in memo
                have_i = child_i in memo
                if have_j and have_i:
                    memo[cur] = (
                        weight_j[i_sel, j_sel] * memo[child_j]
                        + weight_i[i_sel, j_sel] * memo[child_i]
                    )
                    evals += 1
                    stack.pop()
                else:
                    if not have_j:
                        stack.append(child_j)
                    if not have_i:
                        stack.append(child_i)
        out[r] = memo[root]
    return evals
