"""Performability measures over MRMs (Sections 1.1, 3.5 of the paper)."""

from repro.performability.distribution import (
    accumulated_reward_cdf,
    accumulated_reward_distribution,
)
from repro.performability.expected import (
    expected_accumulated_reward,
    expected_reward_rate,
    long_run_reward_rate,
    reward_rate_vector,
)

__all__ = [
    "accumulated_reward_distribution",
    "accumulated_reward_cdf",
    "expected_accumulated_reward",
    "expected_reward_rate",
    "long_run_reward_rate",
    "reward_rate_vector",
]
