"""Expected-reward measures over MRMs (extension).

The paper computes the *distribution* of the accumulated reward
``Y(t)``; practical performability studies also need its moments and
rates.  This module adds the standard closed-form computations (see
e.g. Howard, *Dynamic Probabilistic Systems*; Trivedi et al.,
*Composite Performance and Dependability Analysis*), extended with
impulse rewards:

* instantaneous expected reward rate at time ``t``:
  ``E[rho(X(t))] + sum_{s,s'} p_s(t) R[s,s'] iota(s,s')`` — the second
  term is the expected impulse-reward *flow*, since transitions out of
  ``s`` fire at rate ``R[s,s']``;
* expected accumulated reward ``E[Y(t)] = integral_0^t rate(u) du``,
  evaluated by uniformization without numerical quadrature;
* long-run expected reward rate from the steady-state distribution.

These are exact (up to the Poisson truncation ``epsilon``), so the test
suite also uses them to cross-check the simulator and the path engine
via Markov's inequality.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.ctmc.steady import steady_state_distribution
from repro.ctmc.transient import transient_distribution
from repro.exceptions import ModelError
from repro.mrm.model import MRM
from repro.numerics.poisson import fox_glynn

__all__ = [
    "reward_rate_vector",
    "expected_reward_rate",
    "expected_accumulated_reward",
    "long_run_reward_rate",
]


def reward_rate_vector(model: MRM) -> np.ndarray:
    """Per-state total expected reward rate ``rho(s) + sum R[s,s'] iota(s,s')``.

    Combines the state reward rate with the expected impulse flow out of
    each state; integrating this vector against the transient
    distribution yields ``E[Y(t)]``.
    """
    rates = model.rates
    impulses = model.impulse_rewards
    flow = np.asarray(rates.multiply(impulses).sum(axis=1)).ravel()
    return model.state_rewards + flow


def expected_reward_rate(
    model: MRM,
    initial: Iterable[float],
    time: float,
    epsilon: float = 1e-12,
) -> float:
    """Instantaneous expected reward rate at time ``t``.

    ``sum_s p_s(t) * (rho(s) + sum_s' R[s,s'] iota(s,s'))``.
    """
    distribution = transient_distribution(model.ctmc, initial, time, epsilon)
    return float(distribution.dot(reward_rate_vector(model)))


def expected_accumulated_reward(
    model: MRM,
    initial: Iterable[float],
    time: float,
    epsilon: float = 1e-12,
    uniformization_rate: Optional[float] = None,
) -> float:
    """``E[Y(t)]`` — expected reward accumulated in ``[0, t]``.

    Uses the uniformization identity

        integral_0^t p(u) du = (1 / Lambda) sum_{i>=0} Pr{N_t > i} p(0) P^i,

    where ``Pr{N_t > i}`` are Poisson tail probabilities, so no
    quadrature is needed; impulse rewards enter through the flow term of
    :func:`reward_rate_vector`.
    """
    if time < 0:
        raise ModelError("time must be non-negative")
    if time == 0.0:
        return 0.0
    start = np.asarray(list(initial), dtype=float).ravel()
    if start.shape[0] != model.num_states:
        raise ModelError(
            f"initial distribution has length {start.shape[0]}, expected "
            f"{model.num_states}"
        )
    chain = model.ctmc
    lam = (
        chain.default_uniformization_rate()
        if uniformization_rate is None
        else float(uniformization_rate)
    )
    uniformized = chain.uniformized_dtmc(lam)
    weights = fox_glynn(lam * time, epsilon)
    # Pr{N_t > i} = 1 - cumulative weight up to i; beyond the Fox-Glynn
    # window the tail is below epsilon.
    rewards = reward_rate_vector(model)
    transition_t = uniformized.matrix.T.tocsr()
    current = start.copy()
    total = 0.0
    cumulative = 0.0
    for step in range(weights.right + 1):
        cumulative += weights.weight(step)
        tail = max(0.0, 1.0 - cumulative)
        total += tail * float(current.dot(rewards))
        if step < weights.right:
            current = transition_t.dot(current)
    return total / lam


def long_run_reward_rate(
    model: MRM,
    initial: Optional[Iterable[float]] = None,
) -> float:
    """The steady-state expected reward rate.

    ``sum_s pi(s) (rho(s) + sum_s' R[s,s'] iota(s,s'))`` — the slope of
    ``E[Y(t)]`` as ``t`` grows; requires an initial distribution when
    the chain is reducible.
    """
    steady = steady_state_distribution(model.ctmc, initial)
    return float(steady.dot(reward_rate_vector(model)))
