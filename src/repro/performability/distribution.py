"""The performability distribution ``Perf([0, r]) = Pr{Y(t) <= r}``.

Definition 3.4 of the paper: the performability of a system modeled as an
MRM over the utilization interval ``[0, t]`` with accomplishment set
``[0, r]`` is the probability that the reward accumulated by time ``t``
(state rewards plus impulse rewards) does not exceed ``r``.

This is the uniformization computation of de Souza e Silva & Gail
extended with impulse rewards by Qureshi & Sanders (eqs. 4.1–4.4),
implemented on the same path engine the until operator uses — with *no*
states made absorbing and the target set being the whole state space.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.check.paths_engine import PathEngineResult, joint_distribution
from repro.mrm.model import MRM

__all__ = ["accumulated_reward_distribution", "accumulated_reward_cdf"]


def accumulated_reward_distribution(
    model: MRM,
    initial_state: int,
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    strategy: str = "paths",
    truncation: str = "safe",
    depth_limit: Optional[int] = None,
) -> PathEngineResult:
    """``Pr{Y(t) <= r}`` from ``initial_state`` with full diagnostics.

    Parameters
    ----------
    model:
        The MRM, analyzed as-is (no absorbing transformation).
    initial_state:
        The starting state.
    time_bound, reward_bound:
        The utilization bound ``t`` and accomplishment bound ``r``.
    truncation_probability, strategy, depth_limit:
        Path-engine controls; see
        :func:`repro.check.paths_engine.joint_distribution`.
    """
    every_state = frozenset(range(model.num_states))
    return joint_distribution(
        model,
        initial_state=initial_state,
        psi_states=every_state,
        time_bound=time_bound,
        reward_bound=reward_bound,
        truncation_probability=truncation_probability,
        strategy=strategy,
        truncation=truncation,
        depth_limit=depth_limit,
    )


def accumulated_reward_cdf(
    model: MRM,
    initial_state: int,
    time_bound: float,
    reward_bounds: Iterable[float],
    truncation_probability: float = 1e-8,
    strategy: str = "merged",
) -> List[float]:
    """The CDF of ``Y(t)`` sampled at the given reward levels.

    Convenience wrapper producing one probability per entry of
    ``reward_bounds`` (e.g. for plotting a performability curve).
    """
    return [
        accumulated_reward_distribution(
            model,
            initial_state=initial_state,
            time_bound=time_bound,
            reward_bound=float(bound),
            truncation_probability=truncation_probability,
            strategy=strategy,
        ).probability
        for bound in reward_bounds
    ]
