"""Per-request guards: library budgets plus client-driven cancellation.

A request's :class:`RequestGuard` is an ordinary
:class:`~repro.guard.Guard` (deadline, memory budget, cooperative
checkpoints in every engine hot loop) extended with a cancellation
latch.  The daemon sets the latch when the last client waiting on a
coalesced run disconnects; the next engine checkpoint then raises
:class:`RequestCancelled` — which deliberately does **not** derive from
:class:`~repro.exceptions.GuardExceeded`, so the checker's degradation
cascade does not burn cheaper engine tiers producing an answer nobody
is waiting for.  The exception propagates straight out of ``check()``
and the scheduler accounts the request as ``cancelled``.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.exceptions import ReproError
from repro.guard import Guard

__all__ = ["RequestCancelled", "RequestGuard"]


class RequestCancelled(ReproError):
    """The client(s) waiting on this request disconnected.

    Raised cooperatively at a guard checkpoint, never asynchronously;
    computation stops at a well-defined loop boundary and the engines'
    shared caches stay consistent.
    """


class RequestGuard(Guard):
    """A guard whose checkpoints also honor a cancellation latch.

    Parameters
    ----------
    cancel_event:
        The latch; when set, the next :meth:`checkpoint` (or
        :meth:`reserve`) raises :class:`RequestCancelled`.  A fresh
        private event is created when omitted.
    deadline_s, mem_budget_bytes, error_tolerance, rss_check_interval:
        As for :class:`~repro.guard.Guard`.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
        error_tolerance: Optional[float] = None,
        rss_check_interval: int = 64,
        cancel_event: Optional[threading.Event] = None,
    ) -> None:
        super().__init__(
            deadline_s=deadline_s,
            mem_budget_bytes=mem_budget_bytes,
            error_tolerance=error_tolerance,
            rss_check_interval=rss_check_interval,
        )
        self._cancel = cancel_event if cancel_event is not None else threading.Event()

    @property
    def cancel_event(self) -> threading.Event:
        return self._cancel

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, thread-safe)."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def _check_cancelled(self, phase: Optional[str]) -> None:
        if self._cancel.is_set():
            raise RequestCancelled(
                "request cancelled by client disconnect"
                + (f" during {phase}" if phase else "")
            )

    def checkpoint(
        self, phase: Optional[str] = None, mem_bytes: Optional[int] = None
    ) -> None:
        self._check_cancelled(phase)
        super().checkpoint(phase, mem_bytes)

    def reserve(self, mem_bytes: int, phase: Optional[str] = None) -> None:
        self._check_cancelled(phase)
        super().reserve(mem_bytes, phase)
