"""The HTTP telemetry sidecar: ``/metrics``, health, and debug routes.

A stock Prometheus cannot speak the daemon's NDJSON-RPC protocol, so
:class:`HttpSidecar` exposes the same telemetry over a minimal HTTP/1.1
listener (stdlib asyncio only, no frameworks) that rides the daemon's
event loop:

``GET /metrics``
    The Prometheus text-exposition snapshot — identical bytes to the
    protocol ``metrics`` method's ``prometheus`` field, and valid under
    :func:`repro.obs.validate_prometheus_text`.
``GET /healthz``
    Liveness: 200 whenever the process can answer at all, including
    during a SIGTERM drain.  Carries uptime, pid, version, protocol.
``GET /readyz``
    Readiness: 200 only while the daemon accepts new work; 503 with the
    blocking reasons while draining, before the executor is warm, or
    with admitted memory at the ceiling.  Load balancers watch this one.
``GET /debug/vars``
    The full structured counter snapshot as JSON (an expvar-style dump).
``GET /debug/slowlog``
    The bounded worst-N slow-request log as JSON.

The sidecar is deliberately read-only — nothing it serves mutates the
daemon — and it stays up *through* the drain so operators can watch a
shutdown happen; the daemon closes it at the very end of
:meth:`~repro.server.daemon.ReproServer.shutdown`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.server.protocol import PROTOCOL_VERSION

__all__ = ["HttpSidecar"]

#: Cap on the request line + headers; telemetry GETs are tiny, and the
#: sidecar must not buffer garbage without limit any more than the RPC
#: listener does.
_MAX_HEAD_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class HttpSidecar:
    """One telemetry listener bound next to a :class:`ReproServer`.

    The ``server`` argument is duck-typed (anything with ``metrics``,
    ``slowlog``, ``readiness()`` and ``endpoint``), which keeps this
    module import-light and lets tests drive it with a stub daemon.
    """

    def __init__(self, server: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = server
        self._host = host
        self._port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._bound_port: Optional[int] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._on_connection,
            host=self._host,
            port=self._port,
            limit=_MAX_HEAD_BYTES,
        )
        self._bound_port = self._listener.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    @property
    def port(self) -> Optional[int]:
        return self._bound_port

    @property
    def endpoint(self) -> str:
        return f"http://{self._host}:{self._bound_port}"

    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._respond(reader)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.LimitOverrunError, ValueError):
            pass  # scraper gone or sent garbage; nothing to salvage
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, str]:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", errors="replace").split()
        if len(parts) < 2:
            return 400, _JSON_CONTENT_TYPE, _json_body({"error": "bad request line"})
        method, path = parts[0], parts[1]
        # Drain (and ignore) the headers so keep-alive clients that send
        # a full request are not answered mid-stream.
        consumed = len(request_line)
        while True:
            line = await reader.readline()
            consumed += len(line)
            if line in (b"\r\n", b"\n", b"") or consumed > _MAX_HEAD_BYTES:
                break
        if method.upper() != "GET":
            return (
                405,
                _JSON_CONTENT_TYPE,
                _json_body({"error": f"method {method} not allowed"}),
            )
        path = path.split("?", 1)[0]
        return self._route(path)

    # ------------------------------------------------------------------
    def _route(self, path: str) -> Tuple[int, str, str]:
        if path == "/metrics":
            return 200, _PROMETHEUS_CONTENT_TYPE, self._server.metrics.prometheus_text()
        if path == "/healthz":
            return 200, _JSON_CONTENT_TYPE, _json_body(self._health())
        if path == "/readyz":
            ready, reasons = self._server.readiness()
            body = {"ready": ready, "reasons": reasons}
            return (200 if ready else 503), _JSON_CONTENT_TYPE, _json_body(body)
        if path == "/debug/vars":
            return 200, _JSON_CONTENT_TYPE, _json_body(self._debug_vars())
        if path == "/debug/slowlog":
            slowlog = self._server.slowlog
            body = {
                "capacity": slowlog.capacity,
                "threshold_s": slowlog.threshold_s(),
                "entries": slowlog.entries(),
            }
            return 200, _JSON_CONTENT_TYPE, _json_body(body)
        return 404, _JSON_CONTENT_TYPE, _json_body({"error": f"no route {path}"})

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "pid": os.getpid(),
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started_at,
            "endpoint": self._server.endpoint,
            "draining": bool(getattr(self._server, "draining", False)),
        }

    def _debug_vars(self) -> Dict[str, Any]:
        server = self._server
        body: Dict[str, Any] = {
            "health": self._health(),
            "counters": server.metrics.snapshot(),
        }
        admission = getattr(server, "admission", None)
        if admission is not None:
            body["admission"] = admission.snapshot()
        queue = getattr(server, "queue", None)
        if queue is not None:
            body["queue_depths"] = queue.depths()
        coalescer = getattr(server, "coalescer", None)
        if coalescer is not None:
            body["coalesce_inflight"] = len(coalescer)
        return body


def _json_body(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, default=str) + "\n"
