"""Synchronous client for the daemon + the ``mrmc-impulse client`` CLI.

:class:`ServerClient` is a small blocking NDJSON-RPC client (one frame
out, one frame back per request) usable from tests, scripts and the
bundled CLI.  A typed error response raises
:class:`~repro.server.protocol.ServerError` carrying the server's error
code, message, structured data and ``retry_after_s`` hint, so callers
can branch on ``error.code`` exactly as documented in the protocol.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Mapping, Optional

from repro.server.protocol import MAX_FRAME_BYTES, ServerError

__all__ = ["ServerClient", "client_main"]


class ClientTransportError(ConnectionError):
    """The connection died or the server spoke something unframeable."""


class ServerClient:
    """Blocking client for one daemon connection.

    Parameters
    ----------
    socket_path:
        Unix socket path; mutually exclusive with ``host``/``port``.
    host, port:
        TCP endpoint when ``socket_path`` is not given.
    timeout:
        Socket timeout in seconds for connect and each response read.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("either socket_path or port is required")
            sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(
        self, method: str, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """One round trip; the ``result`` object, or a typed raise."""
        self.send(method, params)
        return self.receive()

    def send(
        self, method: str, params: Optional[Mapping[str, Any]] = None
    ) -> int:
        """Write one request frame without waiting (for pipelining)."""
        self._next_id += 1
        frame = {
            "id": self._next_id,
            "method": method,
            "params": dict(params or {}),
        }
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
        try:
            self._file.write(data)
            self._file.flush()
        except (OSError, ValueError) as error:
            raise ClientTransportError(f"send failed: {error}")
        return self._next_id

    def send_raw(self, payload: bytes) -> None:
        """Write arbitrary bytes (fault-injection tests use this)."""
        self._file.write(payload)
        self._file.flush()

    def receive(self) -> Dict[str, Any]:
        """Read one response frame; raises :class:`ServerError` on error."""
        try:
            line = self._file.readline(MAX_FRAME_BYTES + 1024)
        except (OSError, ValueError) as error:
            raise ClientTransportError(f"receive failed: {error}")
        if not line:
            raise ClientTransportError("server closed the connection")
        try:
            frame = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ClientTransportError(f"unparseable response frame: {error}")
        if not isinstance(frame, dict):
            raise ClientTransportError("response frame is not an object")
        error = frame.get("error")
        if error is not None:
            raise ServerError(
                code=str(error.get("code", "internal")),
                message=str(error.get("message", "unknown server error")),
                data=error.get("data"),
                retry_after_s=error.get("retry_after_s"),
            )
        result = frame.get("result")
        return result if isinstance(result, dict) else {"value": result}

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")

    def slowlog(self) -> Dict[str, Any]:
        return self.request("slowlog")

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.request("shutdown", {"drain": drain})

    def check(
        self,
        model: Mapping[str, Any],
        formula: str,
        tenant: str = "default",
        options: Optional[Mapping[str, Any]] = None,
        include_report: bool = False,
    ) -> Dict[str, Any]:
        """Check ``formula`` against ``model`` (``{"source"|"path": …}``)."""
        params: Dict[str, Any] = {
            "model": dict(model),
            "formula": formula,
            "tenant": tenant,
        }
        if options:
            params["options"] = dict(options)
        if include_report:
            params["include_report"] = True
        return self.request("check", params)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def _print_result(formula: str, body: Mapping[str, Any]) -> None:
    states = body.get("states") or []
    rendered = ", ".join(str(int(s) + 1) for s in states) or "(none)"
    print(f"{formula}")
    print(f"  trust: {body.get('trust', '?')}"
          + ("  [coalesced]" if body.get("coalesced") else ""))
    print(f"  satisfying states (1-based): {rendered}")
    if body.get("wall_seconds") is not None:
        print(f"  wall seconds: {body['wall_seconds']:.4f}")


def client_main(argv: Optional[List[str]] = None) -> int:
    """The ``mrmc-impulse client`` subcommand."""
    import argparse

    from repro.cli.main import _parse_size

    parser = argparse.ArgumentParser(
        prog="mrmc-impulse client",
        description="talk to a running mrmc-impulse serve daemon",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="Unix socket the daemon listens on")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="transport timeout in seconds (default 60)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping", help="round-trip liveness probe")
    metrics_parser = sub.add_parser(
        "metrics", help="operational counters (Prometheus text)"
    )
    metrics_parser.add_argument("--json", action="store_true",
                                help="structured JSON instead of Prometheus "
                                "text")
    sub.add_parser("slowlog", help="the daemon's worst-N slow-request log")
    shutdown_parser = sub.add_parser(
        "shutdown", help="ask the daemon to drain and exit"
    )
    shutdown_parser.add_argument("--no-drain", action="store_true",
                                 help="fail queued requests instead of "
                                 "finishing them")

    check_parser = sub.add_parser("check", help="model-check formulas")
    check_parser.add_argument("model", metavar="MODEL",
                              help="local .mrm file to send inline, or (with "
                              "--remote-path) a path the server resolves "
                              "under its model root")
    check_parser.add_argument("--remote-path", action="store_true",
                              help="treat MODEL as a server-side path "
                              "instead of reading it locally")
    check_parser.add_argument("-f", "--formula", action="append", default=[],
                              metavar="FORMULA", required=True,
                              help="CSRL formula or a name the model "
                              "declares (repeatable)")
    check_parser.add_argument("--const", action="append", default=[],
                              metavar="NAME=VALUE",
                              help="override a model constant (repeatable)")
    check_parser.add_argument("--tenant", default="default")
    check_parser.add_argument("--deadline", type=float, default=None,
                              metavar="SECONDS",
                              help="request deadline (clipped by the "
                              "tenant's quota)")
    check_parser.add_argument("--mem-budget", default=None, metavar="BYTES",
                              help="request memory budget, K/M/G suffixes "
                              "accepted (clipped by the tenant's quota)")
    check_parser.add_argument("--tolerance", type=float, default=None,
                              help="guard error tolerance")
    check_parser.add_argument("--no-degrade", action="store_true",
                              help="fail typed instead of degrading "
                              "through cheaper engines")
    check_parser.add_argument("--workers", type=int, default=None,
                              help="parallel fan-out width (clipped by the "
                              "server)")
    check_parser.add_argument("--include-report", action="store_true",
                              help="attach the full RunReport to the result")
    check_parser.add_argument("--json", action="store_true",
                              help="print raw result objects as JSON lines")

    args = parser.parse_args(argv)
    if (args.socket is None) == (args.port is None):
        print("error: exactly one of --socket or --port is required",
              flush=True)
        return 2

    try:
        client = ServerClient(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            timeout=args.timeout,
        )
    except OSError as error:
        print(f"error: cannot connect: {error}", flush=True)
        return 2

    with client:
        try:
            if args.command == "ping":
                print(json.dumps(client.ping(), sort_keys=True))
                return 0
            if args.command == "metrics":
                result = client.metrics()
                if args.json:
                    print(json.dumps(result, sort_keys=True, indent=2))
                else:
                    print(result.get("prometheus", ""), end="")
                return 0
            if args.command == "slowlog":
                print(json.dumps(client.slowlog(), sort_keys=True, indent=2))
                return 0
            if args.command == "shutdown":
                print(json.dumps(
                    client.shutdown(drain=not args.no_drain), sort_keys=True
                ))
                return 0

            # check
            if args.remote_path:
                model: Dict[str, Any] = {"path": args.model}
            else:
                try:
                    with open(args.model, "r", encoding="utf-8") as handle:
                        model = {"source": handle.read()}
                except OSError as error:
                    print(f"error: cannot read model: {error}", flush=True)
                    return 2
            if args.const:
                constants: Dict[str, float] = {}
                for item in args.const:
                    name, separator, value = item.partition("=")
                    if not separator:
                        print(f"error: bad --const {item!r}: expected "
                              "NAME=VALUE", flush=True)
                        return 2
                    constants[name.strip()] = float(value)
                model["constants"] = constants
            options: Dict[str, Any] = {}
            if args.deadline is not None:
                options["deadline_s"] = args.deadline
            if args.mem_budget is not None:
                options["mem_budget_bytes"] = _parse_size(args.mem_budget)
            if args.tolerance is not None:
                options["error_tolerance"] = args.tolerance
            if args.no_degrade:
                options["degrade"] = False
            if args.workers is not None:
                options["workers"] = args.workers

            failed = False
            for formula in args.formula:
                try:
                    body = client.check(
                        model,
                        formula,
                        tenant=args.tenant,
                        options=options or None,
                        include_report=args.include_report,
                    )
                except ServerError as error:
                    failed = True
                    payload = error.payload()
                    if args.json:
                        print(json.dumps(
                            {"formula": formula, "error": payload},
                            sort_keys=True,
                        ))
                    else:
                        print(f"{formula}")
                        print(f"  error [{error.code}]: {error}")
                        if payload.get("retry_after_s") is not None:
                            print("  retry after: "
                                  f"{payload['retry_after_s']:g}s")
                    continue
                if args.json:
                    print(json.dumps(body, sort_keys=True))
                else:
                    _print_result(formula, body)
            return 1 if failed else 0
        except ServerError as error:
            print(f"error [{error.code}]: {error}", flush=True)
            return 1
        except (ClientTransportError, ConnectionError, socket.timeout) as error:
            print(f"error: transport failure: {error}", flush=True)
            return 2
