"""Wire protocol of the checking daemon: NDJSON frames, typed errors.

The daemon and its clients speak newline-delimited JSON-RPC: one JSON
object per line (UTF-8, no embedded newlines), at most
:data:`MAX_FRAME_BYTES` per frame.  Requests carry ``id`` (echoed back
verbatim, any JSON value), ``method`` and ``params``; responses carry
``id``, ``ok`` and either ``result`` or ``error``.  Because every
response names its request id, a client may pipeline requests on one
connection and receive the answers out of order.

Methods
-------
``check``
    ``params``: ``model`` (``{"source": str}`` or ``{"path": str}``,
    optionally with ``constants``), ``formula`` (CSRL text),
    ``options`` (a subset of :class:`~repro.check.CheckOptions` fields
    plus ``deadline_s``/``mem_budget_bytes``), ``tenant`` and
    ``include_report``.
``ping``
    Liveness probe; returns the protocol version and server pid.
``metrics``
    Returns the Prometheus text snapshot plus a structured counter dict.
``slowlog``
    Returns the daemon's bounded worst-N slow-request log.
``shutdown``
    Asks the daemon to drain and exit (when the server allows it).

Besides the client-chosen ``id``, every response carries a
server-minted ``request_id`` — the correlation token that also appears
in the daemon's structured log lines and on every span attribute of the
run's trace, so one slow or failing request can be chased across the
wire, the logs and an exported Chrome trace.

Error taxonomy
--------------
Failures never close the protocol down to an untyped disconnect: every
failure mode has a stable ``error.code`` from :data:`ERROR_CODES`:

================  ======================================================
``invalid-request``  Malformed frame, unknown method, bad parameter.
``parse-error``      The CSRL formula was rejected (diagnostics attached).
``model-error``      The model source failed the lint/compile gate
                     (diagnostics attached) or the path is not servable.
``check-error``      Model checking failed for a structural reason.
``guard-exceeded``   A deadline/memory budget tripped with degradation
                     off, or the deadline passed while queued.
``worker-error``     A pool worker failed beyond serial recovery.
``overloaded``       Admission refused the request (queue bound, memory
                     ceiling); ``retry_after_s`` says when to retry.
``cancelled``        The request was abandoned by its client.
``shutting-down``    The daemon is draining and accepts no new work.
``internal``         Anything else; the daemon stays up regardless.
================  ======================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import (
    CheckError,
    FormulaError,
    GuardExceeded,
    ModelError,
    NumericalError,
    ParseError,
    ReproError,
    WorkerError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "METHODS",
    "ERROR_CODES",
    "ServerError",
    "encode_frame",
    "decode_frame",
    "validate_request",
    "ok_response",
    "error_response",
    "classify_exception",
]

PROTOCOL_VERSION = "repro.server/1"

#: Hard bound on one frame; inline model sources ride in requests, so
#: this is generous, but a client streaming garbage cannot make the
#: daemon buffer without limit.
MAX_FRAME_BYTES = 4 * 1024 * 1024

METHODS = ("check", "ping", "metrics", "slowlog", "shutdown")

ERROR_CODES = (
    "invalid-request",
    "parse-error",
    "model-error",
    "check-error",
    "guard-exceeded",
    "worker-error",
    "overloaded",
    "cancelled",
    "shutting-down",
    "internal",
)


class ServerError(ReproError):
    """A typed request failure, rendered as an ``error`` response.

    Attributes
    ----------
    code:
        One of :data:`ERROR_CODES`.
    data:
        Optional structured detail (diagnostics, the tripped phase, …).
    retry_after_s:
        For ``overloaded`` responses: the client's backoff hint.
    """

    def __init__(
        self,
        code: str,
        message: str,
        data: Optional[Mapping[str, Any]] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown server error code {code!r}")
        super().__init__(message)
        self.code = code
        self.data = dict(data) if data else None
        self.retry_after_s = retry_after_s

    def payload(self) -> Dict[str, Any]:
        """The JSON body of the ``error`` field."""
        body: Dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.data:
            body["data"] = self.data
        if self.retry_after_s is not None:
            body["retry_after_s"] = float(self.retry_after_s)
        return body


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a JSON object, typed on failure."""
    if len(line) > MAX_FRAME_BYTES:
        raise ServerError(
            "invalid-request",
            f"frame of {len(line)} bytes exceeds the limit of "
            f"{MAX_FRAME_BYTES} bytes",
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ServerError("invalid-request", f"frame is not valid JSON: {error}")
    if not isinstance(obj, dict):
        raise ServerError(
            "invalid-request",
            f"frame must be a JSON object, got {type(obj).__name__}",
        )
    return obj


def validate_request(obj: Mapping[str, Any]) -> Tuple[Any, str, Dict[str, Any]]:
    """``(id, method, params)`` of a request frame, typed on failure."""
    request_id = obj.get("id")
    method = obj.get("method")
    if not isinstance(method, str):
        raise ServerError("invalid-request", "request is missing a string 'method'")
    if method not in METHODS:
        raise ServerError(
            "invalid-request",
            f"unknown method {method!r} (expected one of {', '.join(METHODS)})",
        )
    params = obj.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ServerError(
            "invalid-request",
            f"'params' must be an object, got {type(params).__name__}",
        )
    return request_id, method, params


def ok_response(
    request_id: Any,
    result: Mapping[str, Any],
    server_request_id: Optional[str] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"id": request_id, "ok": True, "result": dict(result)}
    if server_request_id is not None:
        frame["request_id"] = server_request_id
    return frame


def error_response(
    request_id: Any,
    error: ServerError,
    server_request_id: Optional[str] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": error.payload(),
    }
    if server_request_id is not None:
        frame["request_id"] = server_request_id
    return frame


# ----------------------------------------------------------------------
# exception -> typed error mapping
# ----------------------------------------------------------------------
def _diagnostics_data(error: BaseException) -> Optional[Dict[str, Any]]:
    diagnostics = getattr(error, "diagnostics", None)
    if not diagnostics:
        return None
    return {
        "diagnostics": [
            {
                "code": d.code,
                "severity": d.severity,
                "message": d.message,
            }
            for d in diagnostics
        ]
    }


def classify_exception(error: BaseException) -> ServerError:
    """Map any exception escaping a request to its typed server error.

    The mapping is total: whatever a handler raises — library errors,
    injected faults, genuine bugs — the caller gets a typed response and
    the daemon survives.  Already-typed :class:`ServerError` instances
    pass through unchanged.
    """
    from repro.server.guards import RequestCancelled

    if isinstance(error, ServerError):
        return error
    if isinstance(error, RequestCancelled):
        return ServerError("cancelled", str(error) or "request cancelled")
    if isinstance(error, ParseError):
        return ServerError("parse-error", str(error), data=_diagnostics_data(error))
    if isinstance(error, (ModelError,)):
        return ServerError("model-error", str(error), data=_diagnostics_data(error))
    if isinstance(error, GuardExceeded):
        data = {"phase": error.phase} if error.phase else None
        return ServerError("guard-exceeded", str(error), data=data)
    if isinstance(error, WorkerError):
        data = {"shard": list(error.shard)} if error.shard else None
        return ServerError("worker-error", str(error), data=data)
    if isinstance(error, (CheckError, FormulaError, NumericalError, ReproError)):
        return ServerError("check-error", str(error))
    if isinstance(error, MemoryError):
        return ServerError("guard-exceeded", "out of memory during evaluation")
    return ServerError("internal", f"{type(error).__name__}: {error}")
