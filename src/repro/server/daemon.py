"""The ``mrmc-impulse serve`` daemon: asyncio front end over the service.

One :class:`ReproServer` listens on a TCP or Unix socket, reads
newline-delimited JSON-RPC frames, and answers ``check`` requests
through a :class:`~repro.server.service.CheckerService` with the full
robustness pipeline:

``frame → validate → coalesce → admit → fair queue → execute → respond``

* Malformed frames, bad parameters, rejected models and engine failures
  all produce typed error responses on the same connection; nothing a
  client sends can kill the daemon.
* Admission (:class:`~repro.server.admission.AdmissionController`)
  clips every request's budgets to its tenant's quota and the server
  memory ceiling, refusing with ``overloaded`` + ``retry_after_s`` when
  full — as does the bounded weighted fair queue
  (:class:`~repro.server.scheduler.FairQueue`).
* Identical concurrent queries coalesce onto one engine run
  (:class:`~repro.server.coalesce.Coalescer`); a client disconnect
  detaches its waiter, and only when the last waiter is gone does the
  run's :class:`~repro.server.guards.RequestGuard` cancel at the next
  engine checkpoint.
* SIGTERM/SIGINT drain: the listener closes, queued and executing
  requests finish (bounded by ``drain_timeout_s``), responses are
  delivered, and the process exits 0.
* Fleet observability: every frame is minted a ``request_id`` that
  flows through the engine's span attributes, the structured request
  log (:class:`~repro.obs.StructuredLogger`), the bounded slow-request
  log and the response envelope; stage latencies land in the
  :class:`~repro.server.metrics.ServerMetrics` histograms; and the
  optional :class:`~repro.server.http.HttpSidecar` (``--http``) serves
  ``/metrics``, ``/healthz``, ``/readyz`` and the debug routes to a
  stock Prometheus scraper.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import signal
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, TextIO, Tuple

from repro.obs.logging import SlowLog, StructuredLogger
from repro.server.admission import AdmissionController, AdmissionTicket, TenantPolicy
from repro.server.coalesce import Coalescer, InFlightEntry
from repro.server.guards import RequestCancelled, RequestGuard
from repro.server.http import HttpSidecar
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ServerError,
    classify_exception,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)
from repro.server.scheduler import FairQueue
from repro.server.service import CheckerService, RequestSpec

__all__ = ["ServerConfig", "ReproServer", "serve_main"]


def _default_concurrency() -> int:
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class ServerConfig:
    """Static configuration of one daemon instance."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    model_root: str = "."
    max_queue_depth: int = 128
    max_concurrent: int = 0  # 0 -> min(4, cores)
    mem_ceiling_bytes: Optional[int] = None
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    model_cache_entries: int = 32
    checker_cache_entries: int = 32
    max_workers: int = 4
    drain_timeout_s: float = 30.0
    allow_remote_shutdown: bool = True
    # Telemetry sidecar: bind the HTTP listener when http_host is set
    # (port 0 = ephemeral, like the RPC listener).
    http_host: Optional[str] = None
    http_port: int = 0
    # Structured request log: format/level as in repro.obs.logging;
    # stream defaults to stderr, tests and benchmarks inject their own.
    log_format: str = "text"
    log_level: str = "info"
    log_stream: Optional[TextIO] = None
    slowlog_capacity: int = 32

    def concurrency(self) -> int:
        return self.max_concurrent if self.max_concurrent > 0 else _default_concurrency()


@dataclass
class _Work:
    """One admitted request waiting in (or popped from) the fair queue."""

    spec: RequestSpec
    entry: InFlightEntry
    ticket: AdmissionTicket
    abs_deadline: Optional[float]
    # Correlation id of the leader frame (the engine run's id) and the
    # queue-entry instant, for the queue-wait histogram.
    request_id: Optional[str] = None
    enqueued_at: float = 0.0


class ReproServer:
    """The daemon: listener, scheduler and graceful-shutdown machinery."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[CheckerService] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.metrics = metrics or ServerMetrics()
        self.service = service or CheckerService(
            model_root=self.config.model_root,
            model_cache_entries=self.config.model_cache_entries,
            checker_cache_entries=self.config.checker_cache_entries,
            max_workers=self.config.max_workers,
        )
        self.admission = AdmissionController(
            default_policy=self.config.default_policy,
            tenants=self.config.tenants,
            mem_ceiling_bytes=self.config.mem_ceiling_bytes,
        )
        self.queue = FairQueue(max_depth=self.config.max_queue_depth)
        self.coalescer = Coalescer()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._work_available: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._active = 0
        self._draining = False
        self._shutdown_started = False
        self._writers: Set[asyncio.StreamWriter] = set()
        self._bound_port: Optional[int] = None
        self.log = StructuredLogger(
            stream=self.config.log_stream,
            fmt=self.config.log_format,
            level=self.config.log_level,
        )
        self.slowlog = SlowLog(capacity=self.config.slowlog_capacity)
        self.http: Optional[HttpSidecar] = None
        self.metrics.register_gauge("queue_depth", lambda: float(len(self.queue)))
        self.metrics.register_gauge("active_requests", lambda: float(self._active))
        self.metrics.register_gauge(
            "coalesce_inflight", lambda: float(len(self.coalescer))
        )
        self.metrics.register_gauge(
            "committed_mem_bytes", lambda: float(self.admission.committed_bytes)
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the scheduler (returns immediately)."""
        self._loop = asyncio.get_running_loop()
        self._work_available = asyncio.Event()
        self._stopped = asyncio.Event()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.concurrency(),
            thread_name_prefix="repro-server",
        )
        limit = MAX_FRAME_BYTES + 1024
        if self.config.socket_path is not None:
            path = self.config.socket_path
            with contextlib.suppress(OSError):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=path, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
            self._bound_port = self._server.sockets[0].getsockname()[1]
        if self.config.http_host is not None:
            self.http = HttpSidecar(
                self, host=self.config.http_host, port=self.config.http_port
            )
            await self.http.start()
        self._scheduler_task = self._loop.create_task(self._scheduler_loop())
        self.log.info(
            "server.started",
            endpoint=self.endpoint,
            http=None if self.http is None else self.http.endpoint,
            pid=os.getpid(),
            concurrency=self.config.concurrency(),
        )
        # Install drain-on-signal before anyone can see the ready line,
        # so a SIGTERM racing startup still drains instead of killing.
        # In-process embeddings run the loop off the main thread, where
        # signal handlers cannot be installed; they call shutdown()
        # directly, so the suppression loses nothing.

        def _initiate() -> None:
            self._loop.create_task(self.shutdown(drain=True))

        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(
                NotImplementedError, ValueError, RuntimeError
            ):
                self._loop.add_signal_handler(signum, _initiate)

    @property
    def endpoint(self) -> str:
        """Human/scriptable address: ``unix:<path>`` or ``tcp:<host>:<port>``."""
        if self.config.socket_path is not None:
            return f"unix:{self.config.socket_path}"
        return f"tcp:{self.config.host}:{self._bound_port}"

    @property
    def port(self) -> Optional[int]:
        return self._bound_port

    @property
    def draining(self) -> bool:
        return self._draining

    def readiness(self) -> Tuple[bool, List[str]]:
        """``(ready, reasons)`` for the sidecar's ``/readyz`` probe.

        Ready means "send this daemon new work": the listener is up,
        the executor pool is warm, the drain has not started, and the
        admitted memory has headroom under the server ceiling.  The
        reasons list names every failing condition, so a 503 body tells
        the operator *why* the instance left the rotation.
        """
        reasons: List[str] = []
        if self._draining or self._shutdown_started:
            reasons.append("draining")
        if self._executor is None or self._server is None:
            reasons.append("not-started")
        ceiling = self.config.mem_ceiling_bytes
        if ceiling is not None and self.admission.committed_bytes >= ceiling:
            reasons.append("memory-ceiling")
        return (not reasons), reasons

    async def run_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT (handlers installed by
        :meth:`start`) initiates the drain, then return."""
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work; optionally drain in-flight requests.

        Draining finishes every queued and executing request (bounded by
        ``drain_timeout_s``) and delivers its response before
        connections close; without draining, queued requests fail typed
        as ``shutting-down`` and only executing ones finish.
        """
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        self._draining = True
        self.log.info(
            "server.draining",
            drain=drain,
            queued=len(self.queue),
            active=self._active,
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not drain:
            for _, work in self.queue.drain():
                self.admission.release(work.ticket)
                self.coalescer.fail(
                    work.entry,
                    ServerError("shutting-down", "daemon is shutting down"),
                )
        deadline = time.monotonic() + self.config.drain_timeout_s
        while (
            len(self.queue) or self._active or len(self.coalescer)
        ) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        # Give response writers one scheduling round before teardown.
        await asyncio.sleep(0.05)
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self.config.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)
        # The telemetry sidecar outlives the drain on purpose — /healthz
        # stays 200 (and /readyz 503) while requests finish — and only
        # goes away with the daemon itself.
        if self.http is not None:
            await self.http.close()
        self.log.info("server.stopped", endpoint=self.endpoint)
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.record_connection()
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # An over-long frame leaves the stream unframed; the
                    # typed refusal is the last thing this connection gets.
                    self.metrics.record_malformed_frame()
                    await self._write(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            ServerError(
                                "invalid-request",
                                f"frame exceeds {MAX_FRAME_BYTES} bytes",
                            ),
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # Mid-request disconnect: cancel this connection's waiters.
            # Detach-counting in the coalescer decides whether any
            # underlying engine run is actually cancelled.
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: Mapping[str, Any],
    ) -> None:
        try:
            async with write_lock:
                writer.write(encode_frame(payload))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client already gone; the response dies quietly

    async def _serve_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        # The server-minted correlation id: stamped on the response
        # envelope, every log line, the slow log, and (for check) every
        # span attribute of the engine run's trace.
        rid = uuid.uuid4().hex[:16]
        started = time.perf_counter()
        request_id: Any = None
        try:
            obj = decode_frame(line)
            request_id = obj.get("id")
            request_id, method, params = validate_request(obj)
        except ServerError as error:
            self.metrics.record_malformed_frame()
            self.metrics.record_error(error.code)
            self.log.warning(
                "request.rejected", request_id=rid, code=error.code, error=str(error)
            )
            await self._write(
                writer, write_lock, error_response(request_id, error, rid)
            )
            return
        try:
            result = await self._dispatch(method, params, rid)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            error = classify_exception(exc)
            self.metrics.record_request(method, "error")
            self.metrics.record_error(error.code)
            self._finish_frame(
                method, params, rid, error.code, time.perf_counter() - started, None
            )
            await self._write(
                writer, write_lock, error_response(request_id, error, rid)
            )
            return
        self.metrics.record_request(method, "ok")
        self._finish_frame(
            method, params, rid, "ok", time.perf_counter() - started, result
        )
        await self._write(writer, write_lock, ok_response(request_id, result, rid))

    def _finish_frame(
        self,
        method: str,
        params: Mapping[str, Any],
        rid: str,
        outcome: str,
        duration_s: float,
        result: Optional[Mapping[str, Any]],
    ) -> None:
        """Record one answered frame: histogram, log line, slow log."""
        self.metrics.observe_request(method, outcome, total_s=duration_s)
        is_check = method == "check"
        tenant = params.get("tenant", "default") if is_check else None
        formula = params.get("formula") if is_check else None
        self.log.log(
            "info" if is_check else "debug",
            "request.completed",
            request_id=rid,
            method=method,
            outcome=outcome,
            duration_s=duration_s,
            tenant=tenant,
            formula=formula,
            coalesced=bool(result.get("coalesced")) if is_check and result else None,
        )
        if is_check:
            entry: Dict[str, Any] = {
                "request_id": rid,
                "tenant": tenant,
                "formula": formula,
                "outcome": outcome,
            }
            if result:
                if result.get("coalesced"):
                    entry["coalesced"] = True
                if result.get("run_request_id"):
                    entry["run_request_id"] = result["run_request_id"]
                if result.get("error_budget") is not None:
                    entry["error_budget"] = result["error_budget"]
                if result.get("trust") is not None:
                    entry["trust"] = result["trust"]
            self.slowlog.record(duration_s, entry)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, params: Dict[str, Any], rid: str
    ) -> Dict[str, Any]:
        if method == "ping":
            return {
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "draining": self._draining,
            }
        if method == "slowlog":
            return {
                "capacity": self.slowlog.capacity,
                "threshold_s": self.slowlog.threshold_s(),
                "entries": self.slowlog.entries(),
            }
        if method == "metrics":
            return {
                "prometheus": self.metrics.prometheus_text(),
                "counters": self.metrics.snapshot(),
                "coalesce_hits": self.coalescer.hits,
                "admission": self.admission.snapshot(),
                "queue_depths": self.queue.depths(),
                "cached_models": self.service.cached_models(),
                "cached_checkers": self.service.cached_checkers(),
                "engine_cache": vars(self.service.engine_cache.stats),
            }
        if method == "shutdown":
            if not self.config.allow_remote_shutdown:
                raise ServerError(
                    "invalid-request", "remote shutdown is disabled on this server"
                )
            drain = bool(params.get("drain", True))
            assert self._loop is not None
            self._loop.create_task(self.shutdown(drain=drain))
            return {"draining": True}
        # method == "check"
        if self._draining:
            raise ServerError(
                "shutting-down", "daemon is draining and accepts no new work"
            )
        spec = self.service.parse_request(params)
        return await self._handle_check(spec, rid)

    async def _handle_check(self, spec: RequestSpec, rid: str) -> Dict[str, Any]:
        entry, leader = self.coalescer.join(spec.coalesce_key, self._loop)
        if leader:
            try:
                ticket = self.admission.admit(
                    spec.tenant,
                    deadline_s=spec.deadline_s,
                    mem_budget_bytes=spec.mem_budget_bytes,
                    retry_after_s=self.queue.retry_after_s(),
                )
            except ServerError as error:
                self.coalescer.fail(entry, error)
                raise
            abs_deadline = (
                None
                if ticket.deadline_s is None
                else time.monotonic() + ticket.deadline_s
            )
            work = _Work(
                spec=spec,
                entry=entry,
                ticket=ticket,
                abs_deadline=abs_deadline,
                request_id=rid,
                enqueued_at=time.monotonic(),
            )
            try:
                self.queue.push(spec.tenant, ticket.weight, work)
            except ServerError as error:
                self.admission.release(ticket)
                self.coalescer.fail(entry, error)
                raise
            assert self._work_available is not None
            self._work_available.set()
        try:
            # Shielded: cancelling this waiter (client disconnect) must
            # not cancel the shared future other waiters still await —
            # detach-counting below decides the run's actual fate.
            result = await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            self.coalescer.detach(entry)
            raise
        if not leader:
            self.metrics.record_coalesce_hit()
            # The follower keeps its own frame id; the leader's id (the
            # one stamped on the shared engine run's spans) rides along
            # so a coalesced answer can still be traced to its run.
            result = {
                **result,
                "coalesced": True,
                "run_request_id": result.get("request_id"),
                "request_id": rid,
            }
        return result

    # ------------------------------------------------------------------
    # scheduling + execution
    # ------------------------------------------------------------------
    async def _scheduler_loop(self) -> None:
        assert self._work_available is not None
        concurrency = self.config.concurrency()
        while True:
            await self._work_available.wait()
            self._work_available.clear()
            while self._active < concurrency:
                popped = self.queue.pop()
                if popped is None:
                    break
                _, work = popped
                self._active += 1
                assert self._loop is not None
                self._loop.create_task(self._run_work(work))

    async def _run_work(self, work: _Work) -> None:
        spec, entry, ticket = work.spec, work.entry, work.ticket
        queue_wait_s = max(0.0, time.monotonic() - work.enqueued_at)
        execution_s: Optional[float] = None
        outcome = "ok"
        try:
            if entry.cancel_event.is_set():
                raise RequestCancelled("every client disconnected while queued")
            remaining: Optional[float] = None
            if work.abs_deadline is not None:
                # Queue wait burns the budget.  An exhausted deadline is
                # still handed to the guard (clamped to epsilon) rather
                # than rejected here, so the degradation policy decides:
                # degrade=True yields a partial result, degrade=False a
                # typed guard-exceeded — same contract as mid-run trips.
                remaining = max(work.abs_deadline - time.monotonic(), 1e-9)
            guard = RequestGuard(
                deadline_s=remaining,
                mem_budget_bytes=ticket.mem_budget_bytes,
                error_tolerance=spec.error_tolerance,
                cancel_event=entry.cancel_event,
            )
            assert self._loop is not None and self._executor is not None
            start = time.perf_counter()
            result = await self._loop.run_in_executor(
                self._executor,
                self.service.execute,
                spec,
                guard,
                work.request_id,
            )
            execution_s = time.perf_counter() - start
            self.metrics.record_spend(spec.tenant, execution_s)
            result.setdefault("coalesced", False)
            self.coalescer.resolve(entry, result)
        except asyncio.CancelledError:
            outcome = "shutting-down"
            self.coalescer.fail(
                entry, ServerError("shutting-down", "daemon is shutting down")
            )
            raise
        except BaseException as exc:
            error = classify_exception(exc)
            outcome = error.code
            if error.code == "cancelled":
                # No waiter is left to receive (and count) this one.
                self.metrics.record_error("cancelled")
                self.log.warning(
                    "request.cancelled",
                    request_id=work.request_id,
                    tenant=spec.tenant,
                )
            self.coalescer.fail(entry, error)
        finally:
            self.metrics.observe_request(
                "check",
                outcome,
                queue_wait_s=queue_wait_s,
                execution_s=execution_s,
            )
            self.admission.release(ticket)
            self._active -= 1
            if self._work_available is not None:
                self._work_available.set()


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def serve_main(argv) -> int:
    """The ``mrmc-impulse serve`` subcommand."""
    import argparse

    from repro.cli.main import _parse_size

    parser = argparse.ArgumentParser(
        prog="mrmc-impulse serve",
        description="run the persistent model-checking daemon "
        "(newline-delimited JSON-RPC over TCP or a Unix socket)",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="serve on a Unix domain socket at PATH")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; the bound "
                        "port is printed on the ready line)")
    parser.add_argument("--model-root", default=".", metavar="DIR",
                        help="directory 'path' model references resolve "
                        "under (default: cwd)")
    parser.add_argument("--max-queue", type=int, default=128, metavar="N",
                        help="bound on queued requests before load is shed")
    parser.add_argument("--concurrency", type=int, default=0, metavar="N",
                        help="executing requests in parallel "
                        "(default min(4, cores))")
    parser.add_argument("--mem-ceiling", default=None, metavar="BYTES",
                        help="server-wide memory ceiling admitted request "
                        "budgets may sum to (K/M/G suffixes accepted)")
    parser.add_argument("--deadline-cap", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request deadline cap (and default) for "
                        "every tenant")
    parser.add_argument("--mem-cap", default=None, metavar="BYTES",
                        help="per-request memory budget cap for every tenant")
    parser.add_argument("--max-in-flight", type=int, default=16, metavar="N",
                        help="per-tenant bound on requests in flight")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME=WEIGHT",
                        help="declare a tenant with a fair-queue weight "
                        "(repeatable; undeclared tenants get weight 1)")
    parser.add_argument("--no-remote-shutdown", action="store_true",
                        help="ignore protocol 'shutdown' requests "
                        "(SIGTERM still drains)")
    parser.add_argument("--http", default=None, metavar="HOST:PORT",
                        help="serve the HTTP telemetry sidecar "
                        "(/metrics, /healthz, /readyz, /debug/*) on "
                        "HOST:PORT (port 0 = ephemeral)")
    parser.add_argument("--log-format", choices=("text", "json"),
                        default="text",
                        help="structured request-log format on stderr "
                        "(default text; json = one object per line)")
    parser.add_argument("--log-level",
                        choices=("debug", "info", "warning", "error", "off"),
                        default="info",
                        help="request-log threshold (default info)")
    parser.add_argument("--slowlog", type=int, default=32, metavar="N",
                        help="retain the N slowest requests for the "
                        "slowlog method and /debug/slowlog (default 32)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="bound on the SIGTERM drain (default 30)")
    args = parser.parse_args(argv)

    try:
        http_host: Optional[str] = None
        http_port = 0
        if args.http is not None:
            host_part, separator, port_part = args.http.rpartition(":")
            if not separator or not port_part.isdigit():
                raise ValueError(
                    f"bad --http {args.http!r}: expected HOST:PORT"
                )
            http_host = host_part or "127.0.0.1"
            http_port = int(port_part)
        if args.slowlog < 1:
            raise ValueError("--slowlog must be at least 1")
        default_policy = TenantPolicy(
            max_in_flight=args.max_in_flight,
            max_deadline_s=args.deadline_cap,
            max_mem_bytes=None if args.mem_cap is None else _parse_size(args.mem_cap),
        )
        tenants: Dict[str, TenantPolicy] = {}
        for item in args.tenant:
            name, separator, weight = item.partition("=")
            if not separator:
                raise ValueError(f"bad --tenant {item!r}: expected NAME=WEIGHT")
            tenants[name.strip()] = TenantPolicy(
                name=name.strip(),
                weight=float(weight),
                max_in_flight=args.max_in_flight,
                max_deadline_s=args.deadline_cap,
                max_mem_bytes=default_policy.max_mem_bytes,
            )
        config = ServerConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            model_root=args.model_root,
            max_queue_depth=args.max_queue,
            max_concurrent=args.concurrency,
            mem_ceiling_bytes=(
                None if args.mem_ceiling is None else _parse_size(args.mem_ceiling)
            ),
            default_policy=default_policy,
            tenants=tenants,
            drain_timeout_s=args.drain_timeout,
            allow_remote_shutdown=not args.no_remote_shutdown,
            http_host=http_host,
            http_port=http_port,
            log_format=args.log_format,
            log_level=args.log_level,
            slowlog_capacity=args.slowlog,
        )
    except ValueError as error:
        print(f"error: {error}", flush=True)
        return 2

    async def _amain() -> int:
        server = ReproServer(config)
        await server.start()
        ready = f"mrmc-impulse serve: listening on {server.endpoint}"
        if server.http is not None:
            ready += f" (telemetry {server.http.endpoint})"
        print(ready, flush=True)
        await server.run_until_signalled()
        print("mrmc-impulse serve: drained, exiting", flush=True)
        return 0

    try:
        return asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 0
