"""Checker-as-a-service: a fault-tolerant daemon over the library engines.

Everything a long-lived checking service needs exists in library form —
:class:`~repro.check.EngineCache` for warm cross-request state,
:class:`~repro.guard.Guard` for cooperative budgets, the persistent
shared-memory worker pool, and :class:`~repro.obs.RunReport` /
Prometheus export for observability — but it all dies with the CLI
process.  This package keeps it alive: :class:`ReproServer` is an
asyncio front end speaking newline-delimited JSON-RPC over a TCP or
Unix socket (``mrmc-impulse serve``), answering ``(model, formula,
options)`` requests through the existing :class:`~repro.check.ModelChecker`
with robustness as the design center:

* **Admission control** — per-request guard budgets clipped by
  per-tenant quotas and a server-wide memory ceiling
  (:mod:`repro.server.admission`); requests the server cannot afford
  are refused with a typed ``overloaded`` response carrying a
  ``retry_after_s`` hint instead of queueing unboundedly.
* **Fair scheduling** — a weighted start-time-fair queue with a bounded
  depth (:mod:`repro.server.scheduler`); one chatty tenant cannot
  starve the rest.
* **Request coalescing** — concurrent identical queries (same model
  content hash, formula, engine options) share one engine run
  (:mod:`repro.server.coalesce`), and P-formulas over the same model
  that differ only in comparison/bound share the quantitative values
  through the per-model checker's path-value cache — the batched
  ``until_probabilities`` engine invocation answers them all at once.
* **Graceful degradation** — parse failures, model lint rejections,
  guard trips, pool-worker deaths and client disconnects all degrade to
  typed error responses (:mod:`repro.server.protocol`); the daemon
  itself never dies, and SIGTERM drains in-flight requests before exit.
* **Observability** — per-request :class:`~repro.obs.RunReport`
  summaries, server counters and fixed-bucket latency histograms
  (queue wait, execution, end-to-end; :mod:`repro.server.metrics`)
  exposed as a Prometheus text snapshot; a server-minted ``request_id``
  correlating the response envelope, the structured request log and
  every span of the run's trace; and an optional HTTP telemetry sidecar
  (:mod:`repro.server.http`, ``--http``) serving ``/metrics``,
  ``/healthz``, ``/readyz`` and ``/debug/*`` to a stock Prometheus.

:class:`~repro.server.client.ServerClient` (``mrmc-impulse client``) is
the matching scripting front end.
"""

from repro.server.admission import AdmissionController, AdmissionTicket, TenantPolicy
from repro.server.coalesce import Coalescer
from repro.server.daemon import ReproServer, ServerConfig, serve_main
from repro.server.client import ServerClient, client_main
from repro.server.guards import RequestCancelled, RequestGuard
from repro.server.http import HttpSidecar
from repro.server.metrics import LATENCY_BUCKETS, ServerMetrics
from repro.server.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ServerError,
    classify_exception,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    validate_request,
)
from repro.server.scheduler import FairQueue
from repro.server.service import CheckerService

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "TenantPolicy",
    "Coalescer",
    "ReproServer",
    "ServerConfig",
    "serve_main",
    "ServerClient",
    "client_main",
    "RequestCancelled",
    "RequestGuard",
    "HttpSidecar",
    "ServerMetrics",
    "LATENCY_BUCKETS",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ServerError",
    "classify_exception",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "validate_request",
    "FairQueue",
    "CheckerService",
]
