"""A bounded, weighted start-time-fair queue for admitted requests.

The daemon queues admitted requests per tenant and drains them in
*virtual-time* order (start-time fair queuing): each tenant carries a
virtual clock that advances by ``1 / weight`` per served request, and
:meth:`FairQueue.pop` always serves the non-empty tenant with the
smallest clock.  A tenant that was idle re-enters at the current global
virtual time (no credit hoarding), so under contention tenants drain in
proportion to their weights — deterministically, with alphabetical
tie-breaking, which keeps the fairness property unit-testable without
statistics.

Depth is bounded twice: a global ``max_depth`` across all tenants and a
per-push ``tenant_depth`` bound supplied by the caller (the tenant's
in-flight quota already caps it, but the queue enforces its own line).
A full queue refuses the push with a typed ``overloaded``
:class:`~repro.server.protocol.ServerError` whose ``retry_after_s``
scales with the backlog — load is shed at the door, never buffered
unboundedly.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional, Tuple

from repro.server.protocol import ServerError

__all__ = ["FairQueue"]


class FairQueue:
    """Weighted fair FIFO-per-tenant queue with a bounded global depth."""

    def __init__(self, max_depth: int = 128, base_retry_after_s: float = 0.25) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth!r}")
        self._max_depth = int(max_depth)
        self._base_retry = float(base_retry_after_s)
        self._lock = threading.Lock()
        self._queues: Dict[str, deque] = {}
        self._vtime: Dict[str, float] = {}
        self._global_vtime = 0.0
        self._depth = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._depth

    def depths(self) -> Dict[str, int]:
        """Per-tenant queued counts (a snapshot)."""
        with self._lock:
            return {name: len(q) for name, q in self._queues.items() if q}

    @property
    def max_depth(self) -> int:
        return self._max_depth

    def retry_after_s(self) -> float:
        """Backoff hint scaled by the current backlog."""
        with self._lock:
            depth = self._depth
        return self._base_retry * (1.0 + depth / float(self._max_depth))

    # ------------------------------------------------------------------
    def push(
        self,
        tenant: str,
        weight: float,
        item: Any,
        tenant_depth: Optional[int] = None,
    ) -> None:
        """Queue one item for ``tenant``; typed refusal when full."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        with self._lock:
            if self._depth >= self._max_depth:
                depth = self._depth
                raise ServerError(
                    "overloaded",
                    f"queue is full ({depth} of {self._max_depth} slots)",
                    data={"queue_depth": depth},
                    retry_after_s=self._base_retry
                    * (1.0 + depth / float(self._max_depth)),
                )
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
            if tenant_depth is not None and len(queue) >= tenant_depth:
                raise ServerError(
                    "overloaded",
                    f"tenant {tenant!r} queue is full "
                    f"({len(queue)} of {tenant_depth} slots)",
                    data={"tenant": tenant, "queue_depth": len(queue)},
                    retry_after_s=self._base_retry,
                )
            if not queue:
                # An idle tenant re-enters at the current virtual time:
                # it gets no credit for the interval it was not queuing.
                self._vtime[tenant] = max(
                    self._vtime.get(tenant, 0.0), self._global_vtime
                )
            queue.append((float(weight), item))
            self._depth += 1

    def pop(self) -> Optional[Tuple[str, Any]]:
        """The next ``(tenant, item)`` in fair order, or ``None``."""
        with self._lock:
            best: Optional[str] = None
            best_vtime = 0.0
            for tenant, queue in sorted(self._queues.items()):
                if not queue:
                    continue
                vtime = self._vtime.get(tenant, 0.0)
                if best is None or vtime < best_vtime:
                    best = tenant
                    best_vtime = vtime
            if best is None:
                return None
            weight, item = self._queues[best].popleft()
            self._depth -= 1
            self._global_vtime = best_vtime
            self._vtime[best] = best_vtime + 1.0 / weight
            if not self._queues[best]:
                del self._queues[best]
            return best, item

    def drain(self) -> list:
        """Remove and return every queued ``(tenant, item)`` (shutdown)."""
        drained = []
        with self._lock:
            for tenant, queue in sorted(self._queues.items()):
                while queue:
                    _, item = queue.popleft()
                    drained.append((tenant, item))
            self._queues.clear()
            self._depth = 0
        return drained
