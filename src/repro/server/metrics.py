"""Server-level counters, latency histograms, and their Prometheus text.

The per-request :class:`~repro.obs.RunReport` instrumentation already
exists; this module adds the *daemon's* own operational telemetry —
requests by method and outcome, typed errors by code, shed load,
coalesce hits, queue depth, per-tenant spend, and fixed-bucket latency
histograms for the three stages of a request's life (queue wait,
engine execution, end-to-end total).  Everything renders through the
shared :class:`repro.obs.ExpositionBuilder`, so the ``metrics`` method
and the HTTP sidecar's ``/metrics`` both produce text the repo's own
:func:`repro.obs.validate_prometheus_text` accepts — histogram
structure included.

All mutators are thread-safe: the scheduler updates from the event-loop
thread, execution wall-clock spend from worker threads.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro import __version__
from repro.obs.export import ExpositionBuilder
from repro.server.protocol import PROTOCOL_VERSION

__all__ = ["LATENCY_BUCKETS", "ServerMetrics"]

#: Fixed upper bucket edges (seconds) shared by every latency histogram.
#: Fixed buckets keep scrapes joinable across daemons and restarts; the
#: spread covers sub-millisecond cache hits through multi-second
#: numerical runs, with an implicit ``+Inf`` overflow bucket on top.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: (metric suffix, help text) for each request stage we histogram.
_LATENCY_STAGES = (
    ("queue_wait_seconds", "Seconds a request waited in the fair queue."),
    ("execution_seconds", "Engine wall-clock seconds of one execution."),
    ("request_seconds", "End-to-end seconds from frame to response."),
)


class _Histogram:
    """One labelled latency series: per-bucket counts plus a sum.

    Counts are *non-cumulative* (one slot per finite edge plus the
    overflow slot); :meth:`ExpositionBuilder.histogram` derives the
    cumulative ``_bucket`` samples at render time.
    """

    __slots__ = ("counts", "sum")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(LATENCY_BUCKETS, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        return sum(self.counts)


class ServerMetrics:
    """Lock-protected operational counters of one daemon.

    ``latency_histograms=False`` disables the stage histograms entirely
    (``observe_request`` becomes a no-op) — the overhead benchmark's
    baseline leg runs the daemon that way to price the instrumentation.
    """

    def __init__(self, latency_histograms: bool = True) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Dict[tuple, int] = {}  # (method, outcome) -> count
        self._errors: Dict[str, int] = {}  # error code -> count
        self._tenant_spend_s: Dict[str, float] = {}
        self._tenant_requests: Dict[str, int] = {}
        self._shed = 0
        self._cancelled = 0
        self._coalesce_hits = 0
        self._connections = 0
        self._malformed_frames = 0
        self.latency_histograms = bool(latency_histograms)
        # stage suffix -> (method, outcome) -> _Histogram
        self._latency: Dict[str, Dict[tuple, _Histogram]] = {
            suffix: {} for suffix, _ in _LATENCY_STAGES
        }
        # Gauge callbacks wired by the daemon (queue depth, active runs,
        # committed memory, coalesce state) so the snapshot always shows
        # live values without the metrics object owning those subsystems.
        self._gauges: Dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    def register_gauge(self, name: str, read: Callable[[], float]) -> None:
        with self._lock:
            self._gauges[name] = read

    def record_request(self, method: str, outcome: str) -> None:
        with self._lock:
            key = (method, outcome)
            self._requests[key] = self._requests.get(key, 0) + 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] = self._errors.get(code, 0) + 1
            if code == "overloaded":
                self._shed += 1
            if code == "cancelled":
                self._cancelled += 1

    def record_spend(self, tenant: str, wall_seconds: float) -> None:
        with self._lock:
            self._tenant_spend_s[tenant] = (
                self._tenant_spend_s.get(tenant, 0.0) + float(wall_seconds)
            )
            self._tenant_requests[tenant] = self._tenant_requests.get(tenant, 0) + 1

    def record_coalesce_hit(self) -> None:
        with self._lock:
            self._coalesce_hits += 1

    def record_connection(self) -> None:
        with self._lock:
            self._connections += 1

    def record_malformed_frame(self) -> None:
        with self._lock:
            self._malformed_frames += 1

    def observe_request(
        self,
        method: str,
        outcome: str,
        *,
        queue_wait_s: Optional[float] = None,
        execution_s: Optional[float] = None,
        total_s: Optional[float] = None,
    ) -> None:
        """Record one request's stage latencies into the histograms.

        ``outcome`` is ``"ok"`` or a typed error code — both label sets
        are bounded, so histogram cardinality stays method × code.
        Stages a request never reached (a shed request has no execution
        leg) are simply omitted by passing ``None``.
        """
        if not self.latency_histograms:
            return
        key = (method, outcome)
        with self._lock:
            for suffix, value in (
                ("queue_wait_seconds", queue_wait_s),
                ("execution_seconds", execution_s),
                ("request_seconds", total_s),
            ):
                if value is None:
                    continue
                series = self._latency[suffix]
                hist = series.get(key)
                if hist is None:
                    hist = series[key] = _Histogram()
                hist.observe(max(0.0, float(value)))

    # ------------------------------------------------------------------
    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed

    @property
    def cancelled_total(self) -> int:
        with self._lock:
            return self._cancelled

    @property
    def coalesce_hits_total(self) -> int:
        with self._lock:
            return self._coalesce_hits

    def snapshot(self) -> Dict[str, Any]:
        """Structured counters for the JSON half of the metrics method."""
        with self._lock:
            gauges = {name: float(read()) for name, read in self._gauges.items()}
            latency = {
                suffix: {
                    f"{method}:{outcome}": {
                        "count": hist.count,
                        "sum": hist.sum,
                    }
                    for (method, outcome), hist in sorted(series.items())
                }
                for suffix, series in self._latency.items()
            }
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "build": {
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                },
                "requests": {
                    f"{method}:{outcome}": count
                    for (method, outcome), count in sorted(self._requests.items())
                },
                "errors": dict(sorted(self._errors.items())),
                "shed_total": self._shed,
                "cancelled_total": self._cancelled,
                "coalesce_hits_total": self._coalesce_hits,
                "connections_total": self._connections,
                "malformed_frames_total": self._malformed_frames,
                "tenant_spend_seconds": dict(sorted(self._tenant_spend_s.items())),
                "tenant_requests": dict(sorted(self._tenant_requests.items())),
                "latency_seconds": latency,
                "gauges": gauges,
            }

    def _latency_render_state(self) -> Dict[str, List[tuple]]:
        """Consistent copies of the histogram series, for rendering."""
        with self._lock:
            return {
                suffix: [
                    (method, outcome, list(hist.counts), hist.sum)
                    for (method, outcome), hist in sorted(series.items())
                ]
                for suffix, series in self._latency.items()
            }

    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """The counters as a Prometheus text-exposition snapshot."""
        snap = self.snapshot()
        latency = self._latency_render_state()
        builder = ExpositionBuilder()
        family = builder.family
        sample = builder.sample

        family(
            "repro_server_build_info",
            "gauge",
            "Constant 1, labelled with the server build and protocol.",
        )
        sample(
            "repro_server_build_info",
            {"version": snap["build"]["version"], "protocol": snap["build"]["protocol"]},
            1,
        )

        family(
            "repro_server_uptime_seconds", "gauge", "Seconds since daemon start."
        )
        sample("repro_server_uptime_seconds", None, snap["uptime_seconds"])

        family(
            "repro_server_requests_total",
            "counter",
            "Requests handled, by method and outcome.",
        )
        for key, count in snap["requests"].items():
            method, _, outcome = key.partition(":")
            sample(
                "repro_server_requests_total",
                {"method": method, "outcome": outcome},
                count,
            )

        family(
            "repro_server_errors_total",
            "counter",
            "Typed error responses, by error code.",
        )
        for code, count in snap["errors"].items():
            sample("repro_server_errors_total", {"code": code}, count)

        family(
            "repro_server_shed_total",
            "counter",
            "Requests refused by admission control or the bounded queue.",
        )
        sample("repro_server_shed_total", None, snap["shed_total"])

        family(
            "repro_server_cancelled_total",
            "counter",
            "Requests abandoned by client disconnect.",
        )
        sample("repro_server_cancelled_total", None, snap["cancelled_total"])

        family(
            "repro_server_coalesce_hits_total",
            "counter",
            "Requests answered by an in-flight identical run.",
        )
        sample(
            "repro_server_coalesce_hits_total", None, snap["coalesce_hits_total"]
        )

        family(
            "repro_server_connections_total",
            "counter",
            "Client connections accepted.",
        )
        sample("repro_server_connections_total", None, snap["connections_total"])

        family(
            "repro_server_malformed_frames_total",
            "counter",
            "Frames that failed to parse as protocol requests.",
        )
        sample(
            "repro_server_malformed_frames_total",
            None,
            snap["malformed_frames_total"],
        )

        family(
            "repro_server_tenant_spend_seconds",
            "counter",
            "Accumulated engine wall-clock seconds, per tenant.",
        )
        for tenant, spend in snap["tenant_spend_seconds"].items():
            sample("repro_server_tenant_spend_seconds", {"tenant": tenant}, spend)

        family(
            "repro_server_tenant_requests_total",
            "counter",
            "Executed requests, per tenant.",
        )
        for tenant, count in snap["tenant_requests"].items():
            sample("repro_server_tenant_requests_total", {"tenant": tenant}, count)

        if self.latency_histograms:
            for suffix, help_text in _LATENCY_STAGES:
                metric = f"repro_server_{suffix}"
                family(metric, "histogram", help_text)
                for method, outcome, counts, sum_value in latency[suffix]:
                    builder.histogram(
                        metric,
                        {"method": method, "outcome": outcome},
                        LATENCY_BUCKETS,
                        counts,
                        sum_value,
                    )

        for name, value in sorted(snap["gauges"].items()):
            metric = f"repro_server_{name}"
            family(metric, "gauge", f"Live server gauge {name}.")
            sample(metric, None, value)

        return builder.text()
