"""Server-level counters and their Prometheus text snapshot.

The per-request :class:`~repro.obs.RunReport` instrumentation already
exists; this module adds the *daemon's* own operational counters —
requests by method and outcome, typed errors by code, shed load,
coalesce hits, queue depth, per-tenant spend — and renders them in the
Prometheus text-exposition format the repo's existing validator
(:func:`repro.obs.validate_prometheus_text`) accepts, so the ``metrics``
method doubles as a ``/metrics`` scrape target via
``mrmc-impulse client … metrics``.

All mutators are thread-safe: the scheduler updates from the event-loop
thread, execution wall-clock spend from worker threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Lock-protected operational counters of one daemon."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Dict[tuple, int] = {}  # (method, outcome) -> count
        self._errors: Dict[str, int] = {}  # error code -> count
        self._tenant_spend_s: Dict[str, float] = {}
        self._tenant_requests: Dict[str, int] = {}
        self._shed = 0
        self._cancelled = 0
        self._coalesce_hits = 0
        self._connections = 0
        self._malformed_frames = 0
        # Gauge callbacks wired by the daemon (queue depth, active runs,
        # committed memory, coalesce state) so the snapshot always shows
        # live values without the metrics object owning those subsystems.
        self._gauges: Dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    def register_gauge(self, name: str, read: Callable[[], float]) -> None:
        with self._lock:
            self._gauges[name] = read

    def record_request(self, method: str, outcome: str) -> None:
        with self._lock:
            key = (method, outcome)
            self._requests[key] = self._requests.get(key, 0) + 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] = self._errors.get(code, 0) + 1
            if code == "overloaded":
                self._shed += 1
            if code == "cancelled":
                self._cancelled += 1

    def record_spend(self, tenant: str, wall_seconds: float) -> None:
        with self._lock:
            self._tenant_spend_s[tenant] = (
                self._tenant_spend_s.get(tenant, 0.0) + float(wall_seconds)
            )
            self._tenant_requests[tenant] = self._tenant_requests.get(tenant, 0) + 1

    def record_coalesce_hit(self) -> None:
        with self._lock:
            self._coalesce_hits += 1

    def record_connection(self) -> None:
        with self._lock:
            self._connections += 1

    def record_malformed_frame(self) -> None:
        with self._lock:
            self._malformed_frames += 1

    # ------------------------------------------------------------------
    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed

    @property
    def cancelled_total(self) -> int:
        with self._lock:
            return self._cancelled

    @property
    def coalesce_hits_total(self) -> int:
        with self._lock:
            return self._coalesce_hits

    def snapshot(self) -> Dict[str, Any]:
        """Structured counters for the JSON half of the metrics method."""
        with self._lock:
            gauges = {name: float(read()) for name, read in self._gauges.items()}
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": {
                    f"{method}:{outcome}": count
                    for (method, outcome), count in sorted(self._requests.items())
                },
                "errors": dict(sorted(self._errors.items())),
                "shed_total": self._shed,
                "cancelled_total": self._cancelled,
                "coalesce_hits_total": self._coalesce_hits,
                "connections_total": self._connections,
                "malformed_frames_total": self._malformed_frames,
                "tenant_spend_seconds": dict(sorted(self._tenant_spend_s.items())),
                "tenant_requests": dict(sorted(self._tenant_requests.items())),
                "gauges": gauges,
            }

    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """The counters as a Prometheus text-exposition snapshot."""
        snap = self.snapshot()
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        def sample(
            name: str, labels: Optional[Dict[str, str]], value: float
        ) -> None:
            if labels:
                rendered = ",".join(
                    '{}="{}"'.format(
                        k, str(v).replace("\\", r"\\").replace('"', r"\"")
                    )
                    for k, v in labels.items()
                )
                lines.append(f"{name}{{{rendered}}} {float(value):g}")
            else:
                lines.append(f"{name} {float(value):g}")

        family(
            "repro_server_uptime_seconds", "gauge", "Seconds since daemon start."
        )
        sample("repro_server_uptime_seconds", None, snap["uptime_seconds"])

        family(
            "repro_server_requests_total",
            "counter",
            "Requests handled, by method and outcome.",
        )
        for key, count in snap["requests"].items():
            method, _, outcome = key.partition(":")
            sample(
                "repro_server_requests_total",
                {"method": method, "outcome": outcome},
                count,
            )

        family(
            "repro_server_errors_total",
            "counter",
            "Typed error responses, by error code.",
        )
        for code, count in snap["errors"].items():
            sample("repro_server_errors_total", {"code": code}, count)

        family(
            "repro_server_shed_total",
            "counter",
            "Requests refused by admission control or the bounded queue.",
        )
        sample("repro_server_shed_total", None, snap["shed_total"])

        family(
            "repro_server_cancelled_total",
            "counter",
            "Requests abandoned by client disconnect.",
        )
        sample("repro_server_cancelled_total", None, snap["cancelled_total"])

        family(
            "repro_server_coalesce_hits_total",
            "counter",
            "Requests answered by an in-flight identical run.",
        )
        sample(
            "repro_server_coalesce_hits_total", None, snap["coalesce_hits_total"]
        )

        family(
            "repro_server_connections_total",
            "counter",
            "Client connections accepted.",
        )
        sample("repro_server_connections_total", None, snap["connections_total"])

        family(
            "repro_server_malformed_frames_total",
            "counter",
            "Frames that failed to parse as protocol requests.",
        )
        sample(
            "repro_server_malformed_frames_total",
            None,
            snap["malformed_frames_total"],
        )

        family(
            "repro_server_tenant_spend_seconds",
            "counter",
            "Accumulated engine wall-clock seconds, per tenant.",
        )
        for tenant, spend in snap["tenant_spend_seconds"].items():
            sample("repro_server_tenant_spend_seconds", {"tenant": tenant}, spend)

        family(
            "repro_server_tenant_requests_total",
            "counter",
            "Executed requests, per tenant.",
        )
        for tenant, count in snap["tenant_requests"].items():
            sample("repro_server_tenant_requests_total", {"tenant": tenant}, count)

        for name, value in sorted(snap["gauges"].items()):
            metric = f"repro_server_{name}"
            family(metric, "gauge", f"Live server gauge {name}.")
            sample(metric, None, value)

        return "\n".join(lines) + "\n"
