"""Admission control: per-tenant quotas under a server-wide ceiling.

Every request is admitted (or refused, typed) *before* it is queued:

* **Budget clipping.**  The request's own ``deadline_s`` /
  ``mem_budget_bytes`` asks are clipped to the tenant's
  :class:`TenantPolicy` caps — a tenant cannot buy more runtime or
  memory per request than its policy grants, no matter what its client
  sends.
* **Memory ceiling.**  When the server is configured with a memory
  ceiling, each admitted request *commits* its granted memory budget
  against it for the request's whole life (queue wait included); a
  request whose minimum grant no longer fits is refused with
  ``overloaded`` + ``retry_after_s`` instead of letting concurrent
  checks OOM the daemon.  Because the granted budget is also the
  request's :class:`~repro.guard.Guard` memory budget, the commitment
  is enforced, not advisory: the engines' cooperative checkpoints trip
  before the request outgrows what admission charged for it.
* **Concurrency quota.**  A per-tenant bound on requests in flight
  (queued + executing); beyond it the tenant — and only that tenant —
  is refused.

The controller is thread-safe; tickets are returned by :meth:`admit`
and must be released exactly once via :meth:`release`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.server.protocol import ServerError

__all__ = ["TenantPolicy", "AdmissionTicket", "AdmissionController"]

#: The smallest memory grant worth admitting; below this headroom a
#: request would trip its budget on the first table allocation anyway.
MIN_GRANT_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's share of the server.

    Attributes
    ----------
    name:
        Tenant identifier (requests carry it as ``params.tenant``).
    weight:
        Fair-queue weight; a tenant with weight 2 drains twice as fast
        as one with weight 1 under contention.
    max_in_flight:
        Bound on this tenant's queued + executing requests.
    max_deadline_s:
        Cap on the per-request deadline; also the default when the
        request asks for none.  ``None`` leaves time unbounded.
    max_mem_bytes:
        Cap on the per-request memory budget; also the default when the
        request asks for none.  ``None`` defers to the server ceiling.
    """

    name: str = "default"
    weight: float = 1.0
    max_in_flight: int = 16
    max_deadline_s: Optional[float] = None
    max_mem_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight!r}")
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be at least 1, got {self.max_in_flight!r}"
            )


@dataclass
class AdmissionTicket:
    """Proof of admission; holds the granted budgets until released."""

    tenant: str
    weight: float
    deadline_s: Optional[float]
    mem_budget_bytes: Optional[int]
    committed_bytes: int = 0
    released: bool = field(default=False, repr=False)


def _clip(requested: Optional[float], cap: Optional[float]) -> Optional[float]:
    """The smaller of a request's ask and the policy cap (None = no bound)."""
    if requested is None:
        return cap
    if cap is None:
        return requested
    return min(requested, cap)


class AdmissionController:
    """Admits requests against tenant quotas and the memory ceiling."""

    def __init__(
        self,
        default_policy: Optional[TenantPolicy] = None,
        tenants: Optional[Mapping[str, TenantPolicy]] = None,
        mem_ceiling_bytes: Optional[int] = None,
        min_grant_bytes: int = MIN_GRANT_BYTES,
    ) -> None:
        self._default = default_policy or TenantPolicy()
        self._tenants: Dict[str, TenantPolicy] = dict(tenants or {})
        if mem_ceiling_bytes is not None and mem_ceiling_bytes < 1:
            raise ValueError("mem_ceiling_bytes must be positive or None")
        self._ceiling = mem_ceiling_bytes
        self._min_grant = int(min_grant_bytes)
        self._lock = threading.Lock()
        self._committed = 0
        self._in_flight: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy; unknown tenants get the default quotas."""
        policy = self._tenants.get(tenant)
        if policy is not None:
            return policy
        return replace(self._default, name=tenant)

    @property
    def committed_bytes(self) -> int:
        with self._lock:
            return self._committed

    @property
    def mem_ceiling_bytes(self) -> Optional[int]:
        return self._ceiling

    def in_flight(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._in_flight.get(tenant, 0)
            return sum(self._in_flight.values())

    # ------------------------------------------------------------------
    def admit(
        self,
        tenant: str,
        deadline_s: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
        retry_after_s: float = 0.5,
    ) -> AdmissionTicket:
        """Admit one request, clipping its budgets; typed refusal otherwise.

        Raises
        ------
        ServerError
            ``overloaded`` when the tenant's in-flight quota is full or
            the memory ceiling has no usable headroom left.
        """
        policy = self.policy_for(tenant)
        granted_deadline = _clip(deadline_s, policy.max_deadline_s)
        granted_mem = _clip(mem_budget_bytes, policy.max_mem_bytes)
        with self._lock:
            active = self._in_flight.get(tenant, 0)
            if active >= policy.max_in_flight:
                raise ServerError(
                    "overloaded",
                    f"tenant {tenant!r} already has {active} requests in "
                    f"flight (quota {policy.max_in_flight})",
                    data={"tenant": tenant, "in_flight": active},
                    retry_after_s=retry_after_s,
                )
            committed = 0
            if self._ceiling is not None:
                headroom = self._ceiling - self._committed
                if granted_mem is None:
                    granted_mem = headroom
                else:
                    granted_mem = min(granted_mem, headroom)
                if granted_mem < self._min_grant:
                    raise ServerError(
                        "overloaded",
                        f"memory ceiling leaves {max(headroom, 0)} bytes of "
                        f"headroom (minimum useful grant "
                        f"{self._min_grant} bytes)",
                        data={
                            "committed_bytes": self._committed,
                            "ceiling_bytes": self._ceiling,
                        },
                        retry_after_s=retry_after_s,
                    )
                committed = int(granted_mem)
                self._committed += committed
            self._in_flight[tenant] = active + 1
        return AdmissionTicket(
            tenant=tenant,
            weight=policy.weight,
            deadline_s=granted_deadline,
            mem_budget_bytes=None if granted_mem is None else int(granted_mem),
            committed_bytes=committed,
        )

    def release(self, ticket: AdmissionTicket) -> None:
        """Return the ticket's commitments (idempotent)."""
        with self._lock:
            if ticket.released:
                return
            ticket.released = True
            self._committed -= ticket.committed_bytes
            remaining = self._in_flight.get(ticket.tenant, 0) - 1
            if remaining > 0:
                self._in_flight[ticket.tenant] = remaining
            else:
                self._in_flight.pop(ticket.tenant, None)

    def snapshot(self) -> Dict[str, Any]:
        """Structured state for the metrics endpoint."""
        with self._lock:
            return {
                "committed_bytes": self._committed,
                "ceiling_bytes": self._ceiling,
                "in_flight": dict(self._in_flight),
            }
