"""The checking service behind the daemon: models, checkers, execution.

:class:`CheckerService` owns the warm state the daemon exists to keep
alive between requests:

* a bounded **model registry** keyed by content hash — every model
  source (inline or a ``.mrm`` path under the configured root) passes
  the :mod:`repro.diag` lint gate before it is compiled, so untrusted
  sources are rejected up front with their diagnostics instead of
  failing deep inside an engine;
* a bounded **checker registry** keyed by ``(model fingerprint, engine
  options)`` — one :class:`~repro.check.ModelChecker` per combination,
  so Algorithm 4.1's subformula cache and the path-operator value cache
  outlive single requests: P-formulas over the same model that differ
  only in comparison/bound share one batched ``until_probabilities``
  engine run even when they arrive in different requests;
* the shared, thread-safe :class:`~repro.check.EngineCache` (Poisson
  tables, contexts, grids, Omega memos) and, through it, the persistent
  shared-memory worker pool.

Execution is thread-pool based (the engines are synchronous NumPy
code); a per-checker lock serializes runs on one checker — its formula
caches are per-instance state — while distinct models/options execute
concurrently under their own ambient guards and collectors, both of
which are thread-local by design.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.check.checker import CheckOptions, ModelChecker
from repro.check.engine_cache import EngineCache
from repro.exceptions import CheckError, ModelError, ParseError
from repro.server.guards import RequestGuard
from repro.server.protocol import ServerError

__all__ = ["RequestSpec", "CheckerService"]

#: ``options`` keys a check request may carry.  ``deadline_s`` /
#: ``mem_budget_bytes`` / ``error_tolerance`` become the request guard
#: (after admission clipping); the rest configure the engines.
_ENGINE_OPTION_KEYS = (
    "until_engine",
    "truncation_probability",
    "discretization_step",
    "path_strategy",
    "truncation_mode",
    "linear_solver",
    "kernels",
    "workers",
    "degrade",
)
_GUARD_OPTION_KEYS = ("deadline_s", "mem_budget_bytes", "error_tolerance")
ALLOWED_OPTION_KEYS = _ENGINE_OPTION_KEYS + _GUARD_OPTION_KEYS


@dataclass(frozen=True)
class RequestSpec:
    """One parsed, normalized check request (pre-admission)."""

    tenant: str
    model_key: str
    model_source: str
    constants: Optional[Tuple[Tuple[str, float], ...]]
    formula: str
    options: CheckOptions
    deadline_s: Optional[float]
    mem_budget_bytes: Optional[int]
    error_tolerance: Optional[float]
    include_report: bool = False

    @property
    def coalesce_key(self) -> Hashable:
        """Everything that determines the answer (never the budgets)."""
        opts = self.options
        return (
            self.model_key,
            self.formula,
            opts.until_engine,
            opts.truncation_probability,
            opts.discretization_step,
            opts.path_strategy,
            opts.truncation_mode,
            opts.linear_solver,
            opts.kernels,
            opts.degrade,
        )


@dataclass
class _ModelEntry:
    """One compiled model in the registry."""

    key: str
    mrm: Any
    formulas: Dict[str, str] = field(default_factory=dict)


class CheckerService:
    """Warm model/checker state plus the request execution path."""

    def __init__(
        self,
        model_root: str = ".",
        engine_cache: Optional[EngineCache] = None,
        model_cache_entries: int = 32,
        checker_cache_entries: int = 32,
        max_workers: int = 0,
        default_degrade: bool = True,
    ) -> None:
        self._model_root = os.path.realpath(model_root)
        self._engine_cache = engine_cache if engine_cache is not None else EngineCache()
        self._models: "OrderedDict[str, _ModelEntry]" = OrderedDict()
        self._model_cache_entries = int(model_cache_entries)
        self._checkers: "OrderedDict[Hashable, Tuple[ModelChecker, threading.Lock]]" = (
            OrderedDict()
        )
        self._checker_cache_entries = int(checker_cache_entries)
        self._max_workers = int(max_workers)
        self._default_degrade = bool(default_degrade)
        self._lock = threading.RLock()
        # Test/fault-injection seam: called in the worker thread right
        # before the engine run, with the spec.  Exceptions it raises
        # are classified like any other execution failure.
        self.before_execute: Optional[Callable[[RequestSpec], None]] = None

    # ------------------------------------------------------------------
    @property
    def engine_cache(self) -> EngineCache:
        return self._engine_cache

    def cached_models(self) -> int:
        with self._lock:
            return len(self._models)

    def cached_checkers(self) -> int:
        with self._lock:
            return len(self._checkers)

    # ------------------------------------------------------------------
    # request parsing (event-loop side: cheap, no compilation)
    # ------------------------------------------------------------------
    def parse_request(self, params: Mapping[str, Any]) -> RequestSpec:
        """Validate and normalize a ``check`` request's parameters."""
        formula = params.get("formula")
        if not isinstance(formula, str) or not formula.strip():
            raise ServerError(
                "invalid-request", "'formula' must be a non-empty string"
            )
        tenant = params.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServerError("invalid-request", "'tenant' must be a string")
        include_report = bool(params.get("include_report", False))
        source, constants = self._model_params(params.get("model"))
        options, deadline, mem_budget, tolerance = self._build_options(
            params.get("options")
        )
        digest = hashlib.sha256()
        digest.update(source.encode("utf-8"))
        if constants:
            digest.update(
                json.dumps(dict(constants), sort_keys=True).encode("utf-8")
            )
        return RequestSpec(
            tenant=tenant,
            model_key=digest.hexdigest(),
            model_source=source,
            constants=constants,
            formula=formula.strip(),
            options=options,
            deadline_s=deadline,
            mem_budget_bytes=mem_budget,
            error_tolerance=tolerance,
            include_report=include_report,
        )

    def _model_params(
        self, model: Any
    ) -> Tuple[str, Optional[Tuple[Tuple[str, float], ...]]]:
        if not isinstance(model, dict):
            raise ServerError(
                "invalid-request",
                "'model' must be an object with 'source' or 'path'",
            )
        constants_raw = model.get("constants")
        constants: Optional[Tuple[Tuple[str, float], ...]] = None
        if constants_raw is not None:
            if not isinstance(constants_raw, dict):
                raise ServerError(
                    "invalid-request", "model 'constants' must be an object"
                )
            try:
                constants = tuple(
                    sorted((str(k), float(v)) for k, v in constants_raw.items())
                )
            except (TypeError, ValueError):
                raise ServerError(
                    "invalid-request", "model constants must be numeric"
                )
        source = model.get("source")
        path = model.get("path")
        if (source is None) == (path is None):
            raise ServerError(
                "invalid-request",
                "'model' needs exactly one of 'source' or 'path'",
            )
        if source is not None:
            if not isinstance(source, str) or not source.strip():
                raise ServerError(
                    "invalid-request", "model 'source' must be .mrm text"
                )
            return source, constants
        if not isinstance(path, str) or not path.endswith(".mrm"):
            raise ServerError(
                "model-error",
                "model 'path' must name a .mrm file under the server's "
                "model root (use inline 'source' for other formats)",
            )
        resolved = os.path.realpath(os.path.join(self._model_root, path))
        if resolved != self._model_root and not resolved.startswith(
            self._model_root + os.sep
        ):
            raise ServerError(
                "model-error",
                f"model path {path!r} escapes the served model root",
            )
        try:
            with open(resolved, "r", encoding="utf-8") as handle:
                return handle.read(), constants
        except OSError as error:
            raise ServerError("model-error", f"cannot read model: {error}")

    def _build_options(
        self, options: Any
    ) -> Tuple[CheckOptions, Optional[float], Optional[int], Optional[float]]:
        if options is None:
            options = {}
        if not isinstance(options, dict):
            raise ServerError("invalid-request", "'options' must be an object")
        unknown = sorted(set(options) - set(ALLOWED_OPTION_KEYS))
        if unknown:
            raise ServerError(
                "invalid-request",
                f"unknown option(s) {', '.join(map(repr, unknown))} "
                f"(allowed: {', '.join(ALLOWED_OPTION_KEYS)})",
            )
        engine_kwargs = {
            key: options[key] for key in _ENGINE_OPTION_KEYS if key in options
        }
        engine_kwargs.setdefault("degrade", self._default_degrade)
        if self._max_workers >= 0 and "workers" in engine_kwargs:
            try:
                engine_kwargs["workers"] = min(
                    int(engine_kwargs["workers"]), self._max_workers
                )
            except (TypeError, ValueError):
                pass  # CheckOptions validation reports it with context
        try:
            built = CheckOptions(observe=True, **engine_kwargs)
        except (CheckError, TypeError) as error:
            raise ServerError("invalid-request", f"bad options: {error}")
        deadline = options.get("deadline_s")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ServerError(
                "invalid-request", "'deadline_s' must be a positive number"
            )
        mem_budget = options.get("mem_budget_bytes")
        if mem_budget is not None:
            if not isinstance(mem_budget, int) or mem_budget < 1:
                raise ServerError(
                    "invalid-request",
                    "'mem_budget_bytes' must be a positive integer",
                )
        tolerance = options.get("error_tolerance")
        if tolerance is not None and (
            not isinstance(tolerance, (int, float)) or tolerance < 0
        ):
            raise ServerError(
                "invalid-request", "'error_tolerance' must be non-negative"
            )
        return built, deadline, mem_budget, tolerance

    # ------------------------------------------------------------------
    # model + checker registries (worker-thread side)
    # ------------------------------------------------------------------
    def _resolve_model(self, spec: RequestSpec) -> _ModelEntry:
        with self._lock:
            entry = self._models.get(spec.model_key)
            if entry is not None:
                self._models.move_to_end(spec.model_key)
                return entry

        from repro.diag import lint_model_source
        from repro.lang.compiler import compile_model

        diagnostics = lint_model_source(spec.model_source)
        # MRM307 is the lint pass compiling with the *declared* constant
        # values; a request that overrides constants may legitimately
        # compile where the defaults do not, so the real compile below
        # stays the authority for that code alone.
        blocking = [
            d
            for d in diagnostics
            if d.severity == "error"
            and not (spec.constants and d.code == "MRM307")
        ]
        if blocking:
            raise ServerError(
                "model-error",
                f"model rejected by lint: {blocking[0].message}",
                data={
                    "diagnostics": [
                        {
                            "code": d.code,
                            "severity": d.severity,
                            "message": d.message,
                        }
                        for d in diagnostics
                    ]
                },
            )
        try:
            compiled = compile_model(
                spec.model_source,
                constants=dict(spec.constants) if spec.constants else None,
            )
        except (ModelError, ParseError, ValueError) as error:
            raise ServerError("model-error", f"model rejected: {error}")
        entry = _ModelEntry(
            key=spec.model_key,
            mrm=compiled.mrm,
            formulas=dict(compiled.formulas or {}),
        )
        with self._lock:
            self._models[spec.model_key] = entry
            while len(self._models) > self._model_cache_entries:
                self._models.popitem(last=False)
        return entry

    def _checker_for(
        self, entry: _ModelEntry, options: CheckOptions
    ) -> Tuple[ModelChecker, threading.Lock]:
        key = (
            entry.mrm.fingerprint(),
            options.until_engine,
            options.truncation_probability,
            options.discretization_step,
            options.path_strategy,
            options.truncation_mode,
            options.linear_solver,
            options.kernels,
            options.workers,
            options.degrade,
        )
        with self._lock:
            cached = self._checkers.get(key)
            if cached is not None:
                self._checkers.move_to_end(key)
                return cached
            checker = ModelChecker(
                entry.mrm, options, engine_cache=self._engine_cache
            )
            pair = (checker, threading.Lock())
            self._checkers[key] = pair
            while len(self._checkers) > self._checker_cache_entries:
                self._checkers.popitem(last=False)
            return pair

    # ------------------------------------------------------------------
    # execution (worker-thread side)
    # ------------------------------------------------------------------
    def execute(
        self,
        spec: RequestSpec,
        guard: Optional[RequestGuard] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run one admitted request; returns the JSON result body.

        ``request_id`` is the daemon-minted correlation id: it becomes
        the run collector's id (so every span of the trace carries it)
        and is echoed in the result body.

        Raises whatever the front end or engines raise — the daemon maps
        every exception to a typed error response via
        :func:`repro.server.protocol.classify_exception`.
        """
        entry = self._resolve_model(spec)
        formula = entry.formulas.get(spec.formula, spec.formula)
        checker, lock = self._checker_for(entry, spec.options)
        before = self.before_execute
        if before is not None:
            before(spec)
        with lock:
            result = checker.check(formula, guard=guard, request_id=request_id)
        body: Dict[str, Any] = {
            "formula": result.formula,
            "states": sorted(int(s) for s in result.states),
            "probabilities": (
                None
                if result.probabilities is None
                else [float(v) for v in result.probabilities]
            ),
            "trust": result.trust,
            "model_fingerprint": entry.mrm.fingerprint(),
        }
        if request_id is not None:
            body["request_id"] = request_id
        report = result.report
        if report is not None:
            body["wall_seconds"] = report.wall_seconds
            body["engine_cache"] = dict(report.cache)
            body["degradations"] = [dict(r) for r in report.degradations]
            body["error_budget"] = report.error_budget.to_dict()
            if spec.include_report:
                body["report"] = report.to_dict()
        return body
