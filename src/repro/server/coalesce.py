"""Request coalescing: concurrent identical queries share one engine run.

The coalescing key is ``(model content hash, formula text, engine
options)`` — everything that determines the *answer*.  The first
arrival ("leader") is admitted, queued and executed; every concurrent
identical request ("follower") attaches to the leader's in-flight entry
and awaits its future instead of triggering another engine invocation.
N concurrent identical requests therefore cost exactly one run, and all
N receive the same result object.

Budgets are deliberately *not* part of the key: a coalesced run executes
under the leader's admitted budgets, and followers share whatever trust
level that run produced (the response says ``coalesced: true`` so a
client that insists on its own budget can disable coalescing by varying
the formula text or reissuing after the in-flight run completes).

Cancellation is reference-counted: each waiter that disconnects detaches
from the entry, and only when the *last* waiter is gone is the run's
cancel latch set — a leader's disconnect never kills a run that other
clients still await.

The coalescer is loop-affine: every method must be called from the
daemon's event-loop thread (entries hold ``asyncio`` futures).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["InFlightEntry", "Coalescer"]


@dataclass
class InFlightEntry:
    """One in-flight engine run and the clients awaiting it."""

    key: Hashable
    future: "asyncio.Future[Any]"
    cancel_event: threading.Event = field(default_factory=threading.Event)
    waiters: int = 1
    coalesced: int = 0

    @property
    def done(self) -> bool:
        return self.future.done()


class Coalescer:
    """In-flight map of engine runs keyed by their answer-determining key."""

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, InFlightEntry] = {}
        self._hits = 0

    @property
    def hits(self) -> int:
        """Total follower attachments (N identical requests count N-1)."""
        return self._hits

    def __len__(self) -> int:
        return len(self._inflight)

    # ------------------------------------------------------------------
    def join(
        self, key: Hashable, loop: Optional[asyncio.AbstractEventLoop] = None
    ) -> Tuple[InFlightEntry, bool]:
        """Attach to the in-flight run for ``key``; ``(entry, leader)``.

        The caller that gets ``leader=True`` owns admission, queueing and
        eventually :meth:`resolve`/:meth:`fail`; followers only await
        ``entry.future`` and :meth:`detach` if they stop waiting.
        """
        entry = self._inflight.get(key)
        if entry is not None and not entry.done:
            entry.waiters += 1
            entry.coalesced += 1
            self._hits += 1
            return entry, False
        if loop is None:
            loop = asyncio.get_event_loop()
        entry = InFlightEntry(key=key, future=loop.create_future())
        self._inflight[key] = entry
        return entry, True

    def detach(self, entry: InFlightEntry) -> None:
        """One waiter stopped waiting (client disconnect).

        When the last waiter detaches from an unfinished run, its cancel
        latch is set so the executing guard aborts at the next engine
        checkpoint instead of finishing work nobody will read.
        """
        entry.waiters -= 1
        if entry.waiters <= 0 and not entry.done:
            entry.cancel_event.set()

    # ------------------------------------------------------------------
    def resolve(self, entry: InFlightEntry, result: Any) -> None:
        """Complete the run; every waiter's await returns ``result``."""
        self._inflight.pop(entry.key, None)
        if not entry.future.done():
            entry.future.set_result(result)

    def fail(self, entry: InFlightEntry, error: BaseException) -> None:
        """Fail the run; every waiter's await raises ``error``."""
        self._inflight.pop(entry.key, None)
        if not entry.future.done():
            entry.future.set_exception(error)
            # A coalesced failure with zero remaining waiters would log
            # an "exception was never retrieved" warning at GC time.
            entry.future.exception()
