"""Markov reward models: the paper's core model class and timed paths."""

from repro.mrm.builder import MRMBuilder
from repro.mrm.lumping import LumpingResult, lump
from repro.mrm.model import MRM, UniformizedMRM
from repro.mrm.paths import TimedPath, UniformizedPath

__all__ = [
    "MRM",
    "MRMBuilder",
    "UniformizedMRM",
    "TimedPath",
    "UniformizedPath",
    "LumpingResult",
    "lump",
]
