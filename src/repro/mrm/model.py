"""Markov reward models (Definition 3.1 of the paper).

An MRM is a labeled CTMC augmented with

* a state reward structure ``rho: S -> R>=0`` — residing in ``s`` for
  ``t`` time units earns ``rho(s) * t``;
* an impulse reward structure ``iota: S x S -> R>=0`` — taking the
  transition ``s -> s'`` earns ``iota(s, s')`` instantaneously.

Definition 3.1 requires ``iota(s, s) = 0`` whenever the self-loop
``R[s, s] > 0`` exists; the constructor enforces this.

The module also provides the two transformations the model-checking
algorithms rely on:

* :meth:`MRM.make_absorbing` — Definition 4.1: given a set of states,
  cut all their outgoing transitions and zero their rewards;
* :meth:`MRM.uniformize` — Definition 4.2: the uniformized MRM
  ``(S, P, Lambda, Label, rho, iota)``.
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.dtmc.chain import DTMC
from repro.exceptions import ModelError, RewardError

__all__ = ["MRM", "UniformizedMRM"]

ImpulseMap = Mapping[Tuple[int, int], float]


class MRM:
    """A Markov reward model ``((S, R, Label), rho, iota)``.

    Parameters
    ----------
    ctmc:
        The underlying labeled CTMC.
    state_rewards:
        ``rho`` as a vector (length ``num_states``) of non-negative reals;
        defaults to all zeros.
    impulse_rewards:
        ``iota`` as either a mapping ``{(s, s'): reward}`` or a matrix;
        entries must be non-negative, may only sit on existing transitions,
        and must be zero on self-loops (Definition 3.1).  Defaults to all
        zeros.

    Examples
    --------
    >>> chain = CTMC([[0.0, 2.0], [1.0, 0.0]], labels={0: {"up"}, 1: {"down"}})
    >>> model = MRM(chain, state_rewards=[3.0, 0.0], impulse_rewards={(0, 1): 5.0})
    >>> model.state_reward(0), model.impulse_reward(0, 1)
    (3.0, 5.0)
    """

    def __init__(
        self,
        ctmc: CTMC,
        state_rewards: Optional[Iterable[float]] = None,
        impulse_rewards: "ImpulseMap | sp.spmatrix | np.ndarray | None" = None,
    ) -> None:
        if not isinstance(ctmc, CTMC):
            raise ModelError("first argument must be a CTMC")
        self._ctmc = ctmc
        n = ctmc.num_states

        if state_rewards is None:
            rho = np.zeros(n, dtype=float)
        else:
            rho = np.asarray(list(state_rewards), dtype=float).ravel()
            if rho.shape[0] != n:
                raise RewardError(
                    f"state reward vector has length {rho.shape[0]}, expected {n}"
                )
            if not np.all(np.isfinite(rho)):
                raise RewardError("state rewards must be finite")
            if rho.min() < 0.0:
                raise RewardError("state rewards must be non-negative")
        self._rho = rho

        iota = self._build_impulse_matrix(impulse_rewards, n)
        self._validate_impulses(iota)
        self._iota = iota
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build_impulse_matrix(impulse_rewards, n: int) -> sp.csr_matrix:
        if impulse_rewards is None:
            return sp.csr_matrix((n, n), dtype=float)
        if isinstance(impulse_rewards, Mapping):
            rows: List[int] = []
            cols: List[int] = []
            vals: List[float] = []
            for (source, target), value in impulse_rewards.items():
                source, target = int(source), int(target)
                if not (0 <= source < n and 0 <= target < n):
                    raise RewardError(
                        f"impulse reward on out-of-range transition "
                        f"({source}, {target})"
                    )
                value = float(value)
                if not np.isfinite(value):
                    raise RewardError("impulse rewards must be finite")
                if value < 0.0:
                    raise RewardError("impulse rewards must be non-negative")
                if value > 0.0:
                    rows.append(source)
                    cols.append(target)
                    vals.append(value)
            return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
        matrix = sp.csr_matrix(impulse_rewards, dtype=float)
        if matrix.shape != (n, n):
            raise RewardError(
                f"impulse reward matrix has shape {matrix.shape}, expected "
                f"({n}, {n})"
            )
        if matrix.nnz and not np.all(np.isfinite(matrix.data)):
            raise RewardError("impulse rewards must be finite")
        if matrix.nnz and matrix.data.min() < 0.0:
            raise RewardError("impulse rewards must be non-negative")
        matrix.eliminate_zeros()
        return matrix

    def _validate_impulses(self, iota: sp.csr_matrix) -> None:
        rates = self._ctmc.rates
        coo = iota.tocoo()
        for source, target, value in zip(coo.row, coo.col, coo.data):
            if value == 0.0:
                continue
            if rates[source, target] <= 0.0:
                raise RewardError(
                    f"impulse reward on non-existent transition "
                    f"({int(source)}, {int(target)})"
                )
            if source == target:
                raise RewardError(
                    f"impulse reward on self-loop of state {int(source)} "
                    "violates Definition 3.1 (must be zero)"
                )

    # ------------------------------------------------------------------
    # delegation to the underlying CTMC
    # ------------------------------------------------------------------
    @property
    def ctmc(self) -> CTMC:
        """The underlying labeled CTMC ``(S, R, Label)``."""
        return self._ctmc

    @property
    def num_states(self) -> int:
        return self._ctmc.num_states

    @property
    def rates(self) -> sp.csr_matrix:
        return self._ctmc.rates

    @property
    def state_names(self) -> List[str]:
        return self._ctmc.state_names

    @property
    def atomic_propositions(self) -> FrozenSet[str]:
        return self._ctmc.atomic_propositions

    def labels_of(self, state: int) -> FrozenSet[str]:
        return self._ctmc.labels_of(state)

    def states_with_label(self, proposition: str) -> Set[int]:
        return self._ctmc.states_with_label(proposition)

    def exit_rate(self, state: int) -> float:
        return self._ctmc.exit_rate(state)

    def is_absorbing(self, state: int) -> bool:
        return self._ctmc.is_absorbing(state)

    def successors(self, state: int) -> List[int]:
        return self._ctmc.successors(state)

    def transition_probability(self, source: int, target: int) -> float:
        return self._ctmc.transition_probability(source, target)

    # ------------------------------------------------------------------
    # rewards
    # ------------------------------------------------------------------
    @property
    def state_rewards(self) -> np.ndarray:
        """``rho`` as a vector (copied)."""
        return self._rho.copy()

    @property
    def impulse_rewards(self) -> sp.csr_matrix:
        """``iota`` as a sparse matrix (do not mutate)."""
        return self._iota

    def state_reward(self, state: int) -> float:
        """``rho(state)``."""
        return float(self._rho[state])

    def impulse_reward(self, source: int, target: int) -> float:
        """``iota(source, target)``."""
        return float(self._iota[source, target])

    def distinct_state_rewards(self) -> List[float]:
        """The distinct values of ``rho``, sorted strictly decreasing.

        These are the reward levels ``r_1 > r_2 > ... > r_{K+1}`` that
        index the ``k`` vector in the uniformization engine (Section
        4.4.2).
        """
        return sorted(set(float(r) for r in self._rho), reverse=True)

    def distinct_impulse_rewards(self) -> List[float]:
        """The distinct impulse values present, sorted strictly decreasing.

        Zero is always included (transitions without an explicit impulse
        reward carry impulse 0), matching the paper's
        ``i_1 > ... > i_J >= 0``.
        """
        values = {0.0}
        if self._iota.nnz:
            values |= {float(v) for v in self._iota.data}
        return sorted(values, reverse=True)

    def has_impulse_rewards(self) -> bool:
        """Whether any transition carries a positive impulse reward."""
        return bool(self._iota.nnz)

    def fingerprint(self) -> str:
        """Stable content hash of the model (rates, labels, rewards).

        Two MRMs with identical state spaces, transition rates, labels,
        state rewards and impulse rewards share a fingerprint; any
        difference in those ingredients changes it.  The digest is
        computed once and cached (the model is immutable by design).

        The fingerprint keys the :class:`repro.check.EngineCache`:
        engine precomputation (path-engine contexts, discretization
        grids, Poisson tables, Omega memo tables) built for one formula
        can be reused for a different formula, a repeated
        :class:`~repro.check.ModelChecker`, or a later CLI invocation
        whenever the (transformed) model and the formula-relevant
        parameters coincide.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = hashlib.sha256()
        digest.update(b"mrm-v1")
        digest.update(np.int64(self.num_states).tobytes())
        rates = self._ctmc.rates.tocsr()
        iota = self._iota.tocsr()
        for matrix in (rates, iota):
            digest.update(np.asarray(matrix.indptr, dtype=np.int64).tobytes())
            digest.update(np.asarray(matrix.indices, dtype=np.int64).tobytes())
            digest.update(np.asarray(matrix.data, dtype=np.float64).tobytes())
        digest.update(np.asarray(self._rho, dtype=np.float64).tobytes())
        for state in range(self.num_states):
            line = ",".join(sorted(self._ctmc.labels_of(state)))
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def make_absorbing(self, states: Iterable[int]) -> "MRM":
        """Definition 4.1: make the given states absorbing with zero rewards.

        Every outgoing transition of a state in ``states`` is removed,
        its state reward is set to 0, and its outgoing impulse rewards are
        set to 0.  Labels are preserved.  Applying the transformation for
        ``Phi``-states and then ``Psi``-states equals applying it once for
        the union (the paper's ``M[Phi][Psi] = M[Phi or Psi]``).
        """
        target_set = {int(s) for s in states}
        n = self.num_states
        for state in target_set:
            if not 0 <= state < n:
                raise ModelError(f"state {state} out of range for {n} states")
        keep = np.ones(n, dtype=bool)
        for state in target_set:
            keep[state] = False

        rates = self._ctmc.rates.tocoo()
        mask = keep[rates.row]
        new_rates = sp.csr_matrix(
            (rates.data[mask], (rates.row[mask], rates.col[mask])), shape=(n, n)
        )
        new_ctmc = CTMC(
            new_rates,
            labels=self._ctmc.labeling(),
            state_names=self._ctmc.state_names,
            atomic_propositions=self._ctmc.atomic_propositions,
        )
        new_rho = np.where(keep, self._rho, 0.0)
        iota = self._iota.tocoo()
        imask = keep[iota.row]
        new_iota = sp.csr_matrix(
            (iota.data[imask], (iota.row[imask], iota.col[imask])), shape=(n, n)
        )
        return MRM(new_ctmc, state_rewards=new_rho, impulse_rewards=new_iota)

    def scale_rewards(self, factor: float) -> "MRM":
        """Multiply all state and impulse rewards by a positive factor.

        Used to turn rational reward rates into integers for the
        discretization engine (Section 4.4.1); the reward bound of the
        formula must be scaled identically.
        """
        if factor <= 0:
            raise RewardError("scale factor must be positive")
        return MRM(
            self._ctmc,
            state_rewards=self._rho * factor,
            impulse_rewards=self._iota * factor,
        )

    def uniformize(self, rate: Optional[float] = None) -> "UniformizedMRM":
        """Definition 4.2: the uniformized MRM.

        Parameters
        ----------
        rate:
            Uniformization rate ``Lambda >= max_s E(s)``; defaults to the
            maximum exit rate.
        """
        lam = (
            self._ctmc.default_uniformization_rate() if rate is None else float(rate)
        )
        dtmc = self._ctmc.uniformized_dtmc(lam)
        return UniformizedMRM(self, dtmc, lam)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MRM(num_states={self.num_states}, "
            f"impulse_transitions={self._iota.nnz})"
        )


class UniformizedMRM:
    """The uniformized MRM ``(S, P, Lambda, Label, rho, iota)`` (Def. 4.2).

    Rewards and labels are shared with the source MRM; ``P`` is the
    uniformized one-step matrix and ``Lambda`` the Poisson rate.
    """

    def __init__(self, source: MRM, dtmc: DTMC, rate: float) -> None:
        self._source = source
        self._dtmc = dtmc
        self._rate = float(rate)

    @property
    def source(self) -> MRM:
        """The MRM this process was derived from."""
        return self._source

    @property
    def dtmc(self) -> DTMC:
        """The uniformized one-step chain ``P = I + Q / Lambda``."""
        return self._dtmc

    @property
    def rate(self) -> float:
        """The Poisson rate ``Lambda``."""
        return self._rate

    @property
    def num_states(self) -> int:
        return self._source.num_states

    def state_reward(self, state: int) -> float:
        return self._source.state_reward(state)

    def impulse_reward(self, source: int, target: int) -> float:
        """Impulse of the uniformized step ``source -> target``.

        Self-loops introduced by uniformization carry no impulse — they
        correspond to the original process *not* moving.
        """
        if source == target:
            return 0.0
        return self._source.impulse_reward(source, target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformizedMRM(num_states={self.num_states}, rate={self._rate:g})"
