"""Ordinary lumping (Markovian bisimulation) of MRMs.

A partition of the state space is an *ordinary lumping* when all states
in a block agree on

* their label set (so CSRL formulas cannot distinguish them),
* their state reward rate,
* and, for every target block ``B`` and every impulse value ``v``, the
  aggregate rate ``sum {R[s, s'] | s' in B, iota(s, s') = v}``.

The quotient MRM then has the same transient, steady-state and
accumulated-reward behaviour with respect to block-level measures, so
model checking any CSRL formula over the preserved atomic propositions
on the quotient gives the answer for the original (cf. Buchholz 1994;
Derisavi, Hermanns & Sanders 2003 for the algorithmics).

The implementation is the classic signature-based partition refinement:
start from the (labels, reward) partition and split blocks by the
signature ``{(target block, impulse value) -> aggregate rate}`` until a
fixed point, then build the quotient.  The refinement loop runs at most
``|S|`` times, each pass in ``O(M)`` signature work, which is ample for
the model sizes this library targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError
from repro.mrm.model import MRM

__all__ = ["LumpingResult", "lump"]


@dataclass(frozen=True)
class LumpingResult:
    """The quotient MRM plus the block structure.

    Attributes
    ----------
    quotient:
        The lumped MRM; block ``i`` of ``blocks`` is its state ``i``.
    blocks:
        The partition, as tuples of original state indices (each sorted).
    block_of:
        Per original state, the index of its block.
    """

    quotient: MRM
    blocks: Tuple[Tuple[int, ...], ...]
    block_of: Tuple[int, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, block_values) -> List[float]:
        """Expand per-block values back to per-original-state values."""
        values = list(block_values)
        if len(values) != len(self.blocks):
            raise ModelError(
                f"expected {len(self.blocks)} block values, got {len(values)}"
            )
        return [values[self.block_of[s]] for s in range(len(self.block_of))]


def _signature(
    model: MRM, state: int, block_of: List[int]
) -> FrozenSet[Tuple[int, float, float]]:
    """Aggregated outgoing behaviour of a state w.r.t. the partition.

    The signature is the set of ``(target block, impulse value,
    aggregate rate)`` triples; two states with equal label set, equal
    state reward and equal signature are bisimilar w.r.t. the current
    partition.
    """
    rates = model.rates
    aggregate: Dict[Tuple[int, float], float] = {}
    for pos in range(rates.indptr[state], rates.indptr[state + 1]):
        target = int(rates.indices[pos])
        rate = float(rates.data[pos])
        if rate == 0.0:
            continue
        key = (block_of[target], model.impulse_reward(state, target))
        aggregate[key] = aggregate.get(key, 0.0) + rate
    return frozenset(
        (block, impulse, rate) for (block, impulse), rate in aggregate.items()
    )


def lump(model: MRM) -> LumpingResult:
    """Compute the coarsest ordinary lumping of the MRM.

    Returns the quotient together with the partition.  If the model has
    no lumpable symmetry the quotient is isomorphic to the input (one
    block per state).
    """
    n = model.num_states
    if n == 0:
        raise ModelError("cannot lump an empty model")

    # Initial partition: (labels, state reward).
    keys = [(model.labels_of(s), model.state_reward(s)) for s in range(n)]
    block_index: Dict[object, int] = {}
    block_of: List[int] = [0] * n
    for state, key in enumerate(keys):
        if key not in block_index:
            block_index[key] = len(block_index)
        block_of[state] = block_index[key]

    # Refinement to a fixed point.
    while True:
        refined_index: Dict[object, int] = {}
        refined: List[int] = [0] * n
        for state in range(n):
            key = (block_of[state], _signature(model, state, block_of))
            if key not in refined_index:
                refined_index[key] = len(refined_index)
            refined[state] = refined_index[key]
        if len(refined_index) == len(set(block_of)):
            break
        block_of = refined

    # Canonicalize block numbering by smallest member for determinism.
    members: Dict[int, List[int]] = {}
    for state, block in enumerate(block_of):
        members.setdefault(block, []).append(state)
    ordered = sorted(members.values(), key=lambda group: group[0])
    renumber = {block_of[group[0]]: new for new, group in enumerate(ordered)}
    block_of = [renumber[b] for b in block_of]
    blocks = tuple(tuple(sorted(group)) for group in ordered)
    k = len(blocks)

    # Quotient structures: rates/impulses from a representative.
    rates = [[0.0] * k for _ in range(k)]
    impulses: Dict[Tuple[int, int], float] = {}
    rewards = [0.0] * k
    labels: Dict[int, FrozenSet[str]] = {}
    names: List[str] = []
    source_names = model.state_names
    for block_id, group in enumerate(blocks):
        representative = group[0]
        rewards[block_id] = model.state_reward(representative)
        labels[block_id] = model.labels_of(representative)
        names.append("+".join(source_names[s] for s in group[:3]) + ("+..." if len(group) > 3 else ""))
        for target_block, impulse, rate in _signature(model, representative, block_of):
            rates[block_id][target_block] += rate
            if impulse > 0.0:
                existing = impulses.get((block_id, target_block))
                if existing is not None and existing != impulse:
                    # One state can reach two different states of the
                    # same target block with *different* impulse values;
                    # that is a legal MRM, but the quotient would need
                    # two parallel transitions between one block pair,
                    # which the rate-matrix formalism cannot express.
                    raise ModelError(
                        "cannot lump: a block has transitions with "
                        "different impulse rewards into the same target "
                        "block (not expressible as a single quotient "
                        "transition)"
                    )
                impulses[(block_id, target_block)] = impulse
    chain = CTMC(
        rates,
        labels=labels,
        state_names=names,
        atomic_propositions=model.atomic_propositions,
    )
    quotient = MRM(chain, state_rewards=rewards, impulse_rewards=impulses)
    return LumpingResult(
        quotient=quotient, blocks=blocks, block_of=tuple(block_of)
    )
