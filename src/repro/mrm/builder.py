"""Fluent construction of MRMs with named states.

The core classes take index-based matrices; hand-written models read
better with names.  :class:`MRMBuilder` collects states, transitions,
labels and rewards incrementally, validates on :meth:`build`, and
resolves names to indices in insertion order.

Example
-------
>>> builder = MRMBuilder()
>>> _ = builder.state("up", labels={"operational"}, reward=3.0)
>>> _ = builder.state("down", labels={"failed"})
>>> _ = builder.transition("up", "down", rate=0.1, impulse=5.0)
>>> _ = builder.transition("down", "up", rate=1.0)
>>> model = builder.build()
>>> model.state_names
['up', 'down']
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError
from repro.mrm.model import MRM

__all__ = ["MRMBuilder"]


class MRMBuilder:
    """Incremental builder for :class:`repro.mrm.MRM`."""

    def __init__(self) -> None:
        self._order: List[str] = []
        self._labels: Dict[str, set] = {}
        self._rewards: Dict[str, float] = {}
        self._transitions: Dict[Tuple[str, str], float] = {}
        self._impulses: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    def state(
        self,
        name: str,
        labels: Optional[Iterable[str]] = None,
        reward: float = 0.0,
    ) -> "MRMBuilder":
        """Declare a state (idempotent for repeated labels/reward updates).

        Parameters
        ----------
        name:
            Unique state name; insertion order defines the index.
        labels:
            Atomic propositions valid in the state.
        reward:
            State reward rate ``rho(name)``.
        """
        if not name:
            raise ModelError("state name must be non-empty")
        if name not in self._labels:
            self._order.append(name)
            self._labels[name] = set()
            self._rewards[name] = 0.0
        if labels:
            self._labels[name].update(str(label) for label in labels)
        if reward:
            if reward < 0:
                raise ModelError("state rewards must be non-negative")
            self._rewards[name] = float(reward)
        return self

    def transition(
        self,
        source: str,
        target: str,
        rate: float,
        impulse: float = 0.0,
    ) -> "MRMBuilder":
        """Add a transition; states are auto-declared if new.

        Repeated calls for the same pair *accumulate* the rate (parallel
        transitions merge, as in the rate-matrix formulation) and
        overwrite the impulse.
        """
        if rate <= 0:
            raise ModelError("transition rates must be positive")
        if impulse < 0:
            raise ModelError("impulse rewards must be non-negative")
        if source == target and impulse > 0:
            raise ModelError(
                "impulse rewards on self-loops violate Definition 3.1"
            )
        self.state(source)
        self.state(target)
        key = (source, target)
        self._transitions[key] = self._transitions.get(key, 0.0) + float(rate)
        if impulse > 0:
            self._impulses[key] = float(impulse)
        return self

    # ------------------------------------------------------------------
    @property
    def state_names(self) -> List[str]:
        """Declared states in index order."""
        return list(self._order)

    def index_of(self, name: str) -> int:
        """Index a state name will receive in the built model."""
        try:
            return self._order.index(name)
        except ValueError:
            raise ModelError(f"unknown state {name!r}") from None

    def build(self) -> MRM:
        """Materialize the MRM (validates via the core constructors)."""
        if not self._order:
            raise ModelError("cannot build an MRM without states")
        index = {name: i for i, name in enumerate(self._order)}
        n = len(self._order)
        rates = [[0.0] * n for _ in range(n)]
        for (source, target), rate in self._transitions.items():
            rates[index[source]][index[target]] = rate
        labels = {
            index[name]: props for name, props in self._labels.items() if props
        }
        rewards = [self._rewards[name] for name in self._order]
        impulses = {
            (index[source], index[target]): value
            for (source, target), value in self._impulses.items()
        }
        chain = CTMC(rates, labels=labels, state_names=self._order)
        return MRM(chain, state_rewards=rewards, impulse_rewards=impulses)
