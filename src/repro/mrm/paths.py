"""Timed paths in MRMs (Definitions 3.3–3.5 of the paper).

A timed path is a sequence ``s_0 --t_0--> s_1 --t_1--> ...`` of states
with positive sojourn times.  The two path functionals the CSRL semantics
builds on are provided:

* ``sigma @ t`` — the state occupied at time ``t``;
* ``y_sigma(t)`` — the reward accumulated by time ``t``, combining state
  reward earned during residences and impulse rewards earned at jumps.

:class:`UniformizedPath` models the *untimed* paths of the uniformized
MRM (Definition 4.3) together with their probability (Definitions
4.4/4.5), which the path-generation engine enumerates.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.exceptions import ModelError
from repro.mrm.model import MRM, UniformizedMRM
from repro.numerics.poisson import poisson_pmf

__all__ = ["TimedPath", "UniformizedPath"]


class TimedPath:
    """A finite prefix of a path through an MRM, with sojourn times.

    Parameters
    ----------
    model:
        The MRM the path lives in.
    states:
        Visited states ``s_0, s_1, ..., s_n``.
    sojourns:
        Sojourn times ``t_0, ..., t_{n-1}`` for all but the last state
        (each ``> 0``).  The last state's sojourn is open-ended: for an
        absorbing last state this matches the paper's ``t_n = infinity``;
        for a non-absorbing one the object represents the path's behaviour
        up to any time before the next (unspecified) jump.
    validate_transitions:
        When True (default), every consecutive pair must be an actual
        transition of the model (``R[s_i, s_{i+1}] > 0``).

    Examples
    --------
    >>> # doctest-free illustration: see tests/test_paths.py
    """

    def __init__(
        self,
        model: MRM,
        states: Sequence[int],
        sojourns: Sequence[float],
        validate_transitions: bool = True,
    ) -> None:
        if not states:
            raise ModelError("a path must visit at least one state")
        state_list = [int(s) for s in states]
        n = model.num_states
        for state in state_list:
            if not 0 <= state < n:
                raise ModelError(f"path state {state} out of range")
        sojourn_list = [float(t) for t in sojourns]
        if len(sojourn_list) != len(state_list) - 1:
            raise ModelError(
                f"need exactly {len(state_list) - 1} sojourn times for "
                f"{len(state_list)} states, got {len(sojourn_list)}"
            )
        if any(t <= 0.0 for t in sojourn_list):
            raise ModelError("sojourn times must be positive")
        if validate_transitions:
            for source, target in zip(state_list, state_list[1:]):
                if model.rates[source, target] <= 0.0:
                    raise ModelError(
                        f"({source} -> {target}) is not a transition of the model"
                    )
        self._model = model
        self._states = state_list
        self._sojourns = sojourn_list

    # ------------------------------------------------------------------
    @property
    def model(self) -> MRM:
        return self._model

    @property
    def states(self) -> List[int]:
        """The visited states (copied)."""
        return list(self._states)

    @property
    def sojourns(self) -> List[float]:
        """The sojourn times (copied)."""
        return list(self._sojourns)

    def __len__(self) -> int:
        """Number of transitions on the path."""
        return len(self._states) - 1

    def __getitem__(self, index: int) -> int:
        """``sigma[i]`` — the ``(i+1)``-st state on the path."""
        return self._states[index]

    @property
    def last(self) -> int:
        """``last(sigma)`` — the final state of the (finite) path."""
        return self._states[-1]

    @property
    def duration(self) -> float:
        """Total time covered by the specified sojourns."""
        return sum(self._sojourns)

    def is_finite_path(self) -> bool:
        """Whether this is a *finite path* in the paper's sense.

        A finite path ends in an absorbing state where the process remains
        forever (Definition 3.3).
        """
        return self._model.is_absorbing(self._states[-1])

    # ------------------------------------------------------------------
    # the two CSRL path functionals
    # ------------------------------------------------------------------
    def state_at(self, time: float) -> int:
        """``sigma @ t``: the state occupied at time ``t``.

        Per Definition 3.3 the state at the exact jump instant is the
        state being *left* (``sum_{j<=i} t_j >= t``), and at ``t = 0`` the
        initial state.  The final residence is open-ended: beyond the
        specified sojourns the path is still in its last state (forever,
        when that state is absorbing; until the next — unspecified — jump
        otherwise, matching Example 3.2's infinite-path prefix).
        """
        if time < 0.0:
            raise ModelError("time must be non-negative")
        if time == 0.0:
            return self._states[0]
        elapsed = 0.0
        for state, sojourn in zip(self._states, self._sojourns):
            if elapsed < time <= elapsed + sojourn:
                return state
            elapsed += sojourn
        return self._states[-1]

    def accumulated_reward(self, time: float) -> float:
        """``y_sigma(t)``: reward accumulated by time ``t`` (Def. 3.3).

        State rewards accrue at rate ``rho(s)`` during each residence;
        impulse rewards accrue at each jump strictly before ``t``.
        """
        if time < 0.0:
            raise ModelError("time must be non-negative")
        model = self._model
        total = 0.0
        elapsed = 0.0
        for index, state in enumerate(self._states):
            open_ended = index >= len(self._sojourns)
            sojourn = math.inf if open_ended else self._sojourns[index]
            if open_ended or time <= elapsed + sojourn:
                total += model.state_reward(state) * (time - elapsed)
                return total
            total += model.state_reward(state) * sojourn
            total += model.impulse_reward(state, self._states[index + 1])
            elapsed += sojourn
        raise ModelError(  # pragma: no cover - unreachable
            "path ended before the requested time"
        )

    def total_impulse_reward(self) -> float:
        """Sum of impulse rewards over all transitions of the path."""
        model = self._model
        return sum(
            model.impulse_reward(source, target)
            for source, target in zip(self._states, self._states[1:])
        )

    def cylinder_probability(self, intervals: Sequence[Tuple[float, float]]) -> float:
        """Probability of the cylinder set ``C(s_0, I_0, ..., I_{k-1}, s_k)``.

        Per Section 3.3: the product over steps of
        ``P(s_i, s_{i+1}) * (exp(-E(s_i) a_i) - exp(-E(s_i) b_i))`` where
        ``[a_i, b_i]`` is the ``i``-th sojourn interval.  ``intervals``
        must supply one ``(a, b)`` pair per transition.
        """
        if len(intervals) != len(self):
            raise ModelError(
                f"need {len(self)} sojourn intervals, got {len(intervals)}"
            )
        model = self._model
        probability = 1.0
        for (source, target), (a, b) in zip(
            zip(self._states, self._states[1:]), intervals
        ):
            if a < 0 or b < a:
                raise ModelError(f"invalid sojourn interval ({a}, {b})")
            exit_rate = model.exit_rate(source)
            jump = model.transition_probability(source, target)
            upper = math.exp(-exit_rate * a)
            lower = 0.0 if math.isinf(b) else math.exp(-exit_rate * b)
            probability *= jump * (upper - lower)
        return probability

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pieces = []
        for state, sojourn in zip(self._states, self._sojourns):
            pieces.append(f"{state} --{sojourn:g}--> ")
        pieces.append(str(self._states[-1]))
        return "TimedPath(" + "".join(pieces) + ")"


class UniformizedPath:
    """An untimed path in a uniformized MRM (Definitions 4.3–4.5).

    Parameters
    ----------
    process:
        The uniformized MRM the path lives in.
    states:
        The visited states ``s_0 -> s_1 -> ... -> s_n`` (every consecutive
        pair must have positive one-step probability).
    """

    def __init__(self, process: UniformizedMRM, states: Sequence[int]) -> None:
        if not states:
            raise ModelError("a path must visit at least one state")
        state_list = [int(s) for s in states]
        matrix = process.dtmc.matrix
        for source, target in zip(state_list, state_list[1:]):
            if matrix[source, target] <= 0.0:
                raise ModelError(
                    f"({source} -> {target}) has zero probability in the "
                    "uniformized chain"
                )
        self._process = process
        self._states = state_list

    @property
    def states(self) -> List[int]:
        return list(self._states)

    def __len__(self) -> int:
        """Path length ``n`` = number of transitions."""
        return len(self._states) - 1

    @property
    def last(self) -> int:
        """``last(sigma)``."""
        return self._states[-1]

    def probability(self, initial_probability: float = 1.0) -> float:
        """``P(sigma)`` per Definition 4.4 (DTMC step product)."""
        matrix = self._process.dtmc.matrix
        probability = float(initial_probability)
        for source, target in zip(self._states, self._states[1:]):
            probability *= float(matrix[source, target])
        return probability

    def probability_at(self, time: float, initial_probability: float = 1.0) -> float:
        """``P(sigma, t)`` per Definition 4.5: Poisson-weighted probability."""
        n = len(self)
        return poisson_pmf(self._process.rate * time, n) * self.probability(
            initial_probability
        )

    def sojourn_counts(self, reward_levels: Sequence[float]) -> List[int]:
        """The ``k``-vector: visits per distinct state-reward level.

        ``reward_levels`` must list the distinct state rewards (strictly
        decreasing, as produced by
        :meth:`repro.mrm.MRM.distinct_state_rewards`).  Counts sum to
        ``n + 1``.
        """
        index = {level: i for i, level in enumerate(reward_levels)}
        counts = [0] * len(reward_levels)
        for state in self._states:
            counts[index[self._process.state_reward(state)]] += 1
        return counts

    def impulse_counts(self, impulse_levels: Sequence[float]) -> List[int]:
        """The ``j``-vector: transitions per distinct impulse level.

        Counts sum to ``n``; uniformization self-loops count as impulse 0.
        """
        index = {level: i for i, level in enumerate(impulse_levels)}
        counts = [0] * len(impulse_levels)
        for source, target in zip(self._states, self._states[1:]):
            counts[index[self._process.impulse_reward(source, target)]] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UniformizedPath(" + " -> ".join(map(str, self._states)) + ")"
