"""Run observability: counters, spans, events, series, and run reports.

See :mod:`repro.obs.collector` for the collection primitives,
:mod:`repro.obs.trace` / :mod:`repro.obs.series` for the span and
time-series records, :mod:`repro.obs.report` for the structured
:class:`RunReport` every :meth:`repro.check.ModelChecker.check` call
produces, and :mod:`repro.obs.export` for the Chrome trace-event and
Prometheus text-exposition exporters.
"""

from repro.obs.collector import (
    DEFAULT_EVENT_CAPACITY,
    EVENTS_DROPPED_COUNTER,
    Collector,
    NullCollector,
    get_collector,
    use_collector,
)
from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    ExpositionBuilder,
    chrome_trace,
    diff_reports,
    load_report_file,
    prometheus_exposition,
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.obs.logging import LOG_LEVELS, SlowLog, StructuredLogger
from repro.obs.report import (
    REPORT_SCHEMA,
    ErrorBudget,
    PhaseTiming,
    RunReport,
)
from repro.obs.series import DEFAULT_SERIES_CAPACITY, NullSeries, SeriesChannel
from repro.obs.trace import SpanRecord

__all__ = [
    "Collector",
    "NullCollector",
    "get_collector",
    "use_collector",
    "DEFAULT_EVENT_CAPACITY",
    "EVENTS_DROPPED_COUNTER",
    "SpanRecord",
    "SeriesChannel",
    "NullSeries",
    "DEFAULT_SERIES_CAPACITY",
    "RunReport",
    "ErrorBudget",
    "PhaseTiming",
    "REPORT_SCHEMA",
    "chrome_trace",
    "ExpositionBuilder",
    "prometheus_exposition",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "diff_reports",
    "load_report_file",
    "CHROME_REQUIRED_KEYS",
    "LOG_LEVELS",
    "StructuredLogger",
    "SlowLog",
]
