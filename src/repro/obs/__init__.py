"""Run observability: counters, timers, span events, and run reports.

See :mod:`repro.obs.collector` for the collection primitives and
:mod:`repro.obs.report` for the structured :class:`RunReport` every
:meth:`repro.check.ModelChecker.check` call produces.
"""

from repro.obs.collector import (
    Collector,
    NullCollector,
    get_collector,
    use_collector,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    ErrorBudget,
    PhaseTiming,
    RunReport,
)

__all__ = [
    "Collector",
    "NullCollector",
    "get_collector",
    "use_collector",
    "RunReport",
    "ErrorBudget",
    "PhaseTiming",
    "REPORT_SCHEMA",
]
