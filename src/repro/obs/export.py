"""Trace and metrics exporters: run reports in industry-standard formats.

The schema-v3 :class:`~repro.obs.report.RunReport` carries the full span
tree (``trace``) and the convergence time-series (``series``); this
module renders one-or-more reports into formats external tooling already
understands:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``--trace FILE``
  CLI option).  Loadable in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``: spans become complete events (``ph: "X"``),
  collector events become instant events (``ph: "i"``), and the
  pid/tid recorded on each span keep worker-process activity on its own
  track, so a ``workers=N`` run renders as one timeline per process.
* :func:`prometheus_exposition` — a Prometheus text-exposition snapshot
  (the ``--metrics FILE`` CLI option): counters, phase timings and the
  error-budget gauges, suitable for a textfile collector or a one-shot
  scrape.
* :func:`diff_reports` — cross-run regression comparison backing the
  ``report diff OLD NEW`` CLI subcommand: wall-clock, phase and
  error-budget deltas for formulas present in both runs.

The validators (:func:`validate_chrome_trace`,
:func:`validate_prometheus_text`) are intentionally strict about the
keys/grammar the consumers require — CI runs them against the sample
artifacts so a malformed export fails the build, not the user's
Perfetto session.
"""

from __future__ import annotations

import json
import math
import re
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.report import RunReport

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "ExpositionBuilder",
    "prometheus_exposition",
    "validate_prometheus_text",
    "diff_reports",
    "load_report_file",
    "CHROME_REQUIRED_KEYS",
]

#: Keys every emitted trace event must carry (the Chrome trace-event
#: format's required set for ``X``/``i`` phases).
CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Event-record keys that are envelope, not payload, when exporting.
_EVENT_ENVELOPE_KEYS = ("event", "ts", "pid")


def _as_report(report: Union[RunReport, Mapping[str, Any]]) -> RunReport:
    if isinstance(report, RunReport):
        return report
    return RunReport.from_dict(report)


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(
    reports: Union[RunReport, Mapping[str, Any], Sequence[Any]],
) -> Dict[str, Any]:
    """Render report(s) as a Chrome trace-event JSON object.

    Accepts a single report (``RunReport`` or its dict form) or a
    sequence of them.  Reports are laid out back-to-back on the time
    axis (each shifted past the previous one's extent), so a multi
    formula CLI run produces one continuous timeline.

    Timestamps convert from the reports' relative seconds to the
    microseconds the format requires.  Span attributes and event fields
    ride along in ``args``.
    """
    if isinstance(reports, (RunReport, Mapping)):
        report_list = [_as_report(reports)]
    else:
        report_list = [_as_report(r) for r in reports]

    trace_events: List[Dict[str, Any]] = []
    time_offset = 0.0  # seconds, cumulative across reports
    for report in report_list:
        extent = float(report.wall_seconds)
        for span in report.trace:
            start = float(span.get("start", 0.0))
            end = float(span.get("end", start))
            extent = max(extent, end)
            args = dict(span.get("attributes", {}))
            args["formula"] = report.formula
            trace_events.append(
                {
                    "name": str(span.get("name", "span")),
                    "ph": "X",
                    "ts": (time_offset + start) * 1e6,
                    "dur": max(0.0, end - start) * 1e6,
                    "pid": int(span.get("pid", 0)),
                    "tid": int(span.get("tid", 0)),
                    "cat": "repro",
                    "args": args,
                }
            )
        for event in report.events:
            ts = event.get("ts")
            if ts is None:
                continue  # pre-v3 events carried no timestamp
            extent = max(extent, float(ts))
            args = {
                k: v for k, v in event.items() if k not in _EVENT_ENVELOPE_KEYS
            }
            trace_events.append(
                {
                    "name": str(event.get("event", "event")),
                    "ph": "i",
                    "s": "t",
                    "ts": (time_offset + float(ts)) * 1e6,
                    "pid": int(event.get("pid", 0)),
                    "tid": 0,
                    "cat": "repro",
                    "args": args,
                }
            )
        time_offset += extent
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Union[str, Mapping[str, Any]]) -> int:
    """Check a trace against the Chrome trace-event required keys.

    Accepts the JSON text or the decoded object.  Raises
    :class:`ValueError` on the first violation; returns the number of
    validated events otherwise.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload has no 'traceEvents' array")
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in CHROME_REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing required key {key!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or not math.isfinite(ts):
            raise ValueError(f"traceEvents[{index}] has non-finite ts {ts!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{index}] complete event has bad dur {dur!r}"
                )
    return len(events)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_METRIC_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})?\s+[^\s]+(\s+[0-9]+)?$"
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    """An ``le`` label value: ``+Inf`` for the overflow bucket."""
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


class ExpositionBuilder:
    """Incremental renderer for the Prometheus text-exposition format.

    Both metric producers in the repo — the per-run report exporter
    below and the daemon's :class:`repro.server.metrics.ServerMetrics`
    — render through this one class, so label-value escaping
    (backslash, double quote, newline) and value formatting cannot
    drift between them.  ``histogram`` emits a full conformant family:
    cumulative ``_bucket`` samples with ``le`` labels ending in
    ``+Inf``, plus ``_sum`` and ``_count``.
    """

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        """Open a metric family: its ``# HELP`` and ``# TYPE`` comments."""
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]],
        value: float,
    ) -> None:
        """One sample line, with label values escaped."""
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in labels.items()
            )
            self._lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            self._lines.append(f"{name} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]],
        bounds: Sequence[float],
        counts: Sequence[int],
        sum_value: float,
    ) -> None:
        """One histogram series: buckets, ``_sum`` and ``_count``.

        ``bounds`` are the finite upper bucket edges; ``counts`` holds
        one *per-bucket* (non-cumulative) count per edge plus a final
        overflow count, so ``len(counts) == len(bounds) + 1``.  The
        cumulative ``_bucket`` samples and the ``+Inf`` bucket (always
        equal to ``_count``) are derived here.
        """
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"histogram {name!r}: expected {len(bounds) + 1} bucket "
                f"counts, got {len(counts)}"
            )
        base = dict(labels) if labels else {}
        cumulative = 0
        for bound, count in zip(list(bounds) + [math.inf], counts):
            cumulative += int(count)
            self.sample(
                f"{name}_bucket", {**base, "le": _format_le(bound)}, cumulative
            )
        self.sample(f"{name}_sum", labels, float(sum_value))
        self.sample(f"{name}_count", labels, cumulative)

    def text(self) -> str:
        """The accumulated exposition, newline-terminated."""
        return "\n".join(self._lines) + "\n"


def prometheus_exposition(
    reports: Union[RunReport, Mapping[str, Any], Sequence[Any]],
) -> str:
    """Render report(s) as Prometheus text exposition (version 0.0.4).

    Emits one time-series family per measured quantity, labelled by
    formula (and phase/counter name where applicable):

    * ``repro_checks_total`` / ``repro_check_wall_seconds``
    * ``repro_phase_seconds`` / ``repro_phase_count`` (label ``phase``)
    * ``repro_counter`` (label ``counter``) — raw engine counters
    * ``repro_error_*`` gauges — the error-budget decomposition
    * ``repro_check_trust`` (label ``trust``) — 1 for the run's level
    """
    if isinstance(reports, (RunReport, Mapping)):
        report_list = [_as_report(reports)]
    else:
        report_list = [_as_report(r) for r in reports]

    builder = ExpositionBuilder()
    family = builder.family
    sample = builder.sample

    family("repro_checks_total", "counter", "Number of check() runs in this snapshot.")
    sample("repro_checks_total", {}, float(len(report_list)))

    family(
        "repro_check_wall_seconds",
        "gauge",
        "End-to-end wall-clock seconds of one check() run.",
    )
    for report in report_list:
        sample(
            "repro_check_wall_seconds",
            {"formula": report.formula},
            report.wall_seconds,
        )

    family("repro_phase_seconds", "gauge", "Accumulated seconds per engine phase.")
    family_count_deferred: List[Tuple[Dict[str, str], float]] = []
    for report in report_list:
        for phase in report.phases:
            labels = {"formula": report.formula, "phase": phase.name}
            sample("repro_phase_seconds", labels, phase.seconds)
            family_count_deferred.append((labels, float(phase.count)))
    family("repro_phase_count", "counter", "Completed spans per engine phase.")
    for labels, count in family_count_deferred:
        sample("repro_phase_count", labels, count)

    family("repro_counter", "counter", "Raw engine counters.")
    for report in report_list:
        for name, value in sorted(report.counters.items()):
            sample(
                "repro_counter",
                {"formula": report.formula, "counter": name},
                float(value),
            )

    # One family at a time: the exposition format requires all samples
    # of a metric to form one contiguous group under its TYPE line.
    budget_rows = [
        (
            "repro_error_truncation_mass",
            "truncation_mass",
            "Probability mass discarded by Poisson/path truncation.",
        ),
        (
            "repro_error_discretization_defect",
            "discretization_defect",
            "Mass-defect bound of the discretization engine.",
        ),
        (
            "repro_error_solver_residual",
            "solver_residual",
            "Worst true linear-solver residual over the run.",
        ),
        ("repro_error_total", "total", "Summed indicative error magnitude."),
    ]
    for metric, key, help_text in budget_rows:
        family(metric, "gauge", help_text)
        for report in report_list:
            sample(
                metric,
                {"formula": report.formula},
                float(report.error_budget.to_dict()[key]),
            )

    family("repro_check_trust", "gauge", "1 for the trust level of each run.")
    for report in report_list:
        sample(
            "repro_check_trust",
            {"formula": report.formula, "trust": report.trust},
            1.0,
        )

    family(
        "repro_degradations_total",
        "counter",
        "Degradations, fallbacks and worker failures survived.",
    )
    for report in report_list:
        sample(
            "repro_degradations_total",
            {"formula": report.formula},
            float(len(report.degradations)),
        )

    return builder.text()


def validate_prometheus_text(text: str) -> int:
    """Check a snapshot against the text-exposition grammar.

    Validates metric/label naming, HELP/TYPE comment structure, and
    sample-line shape; for every family declared ``TYPE … histogram``
    it additionally validates the histogram structure — cumulative
    bucket counts monotonically non-decreasing in ascending ``le``
    order, a ``+Inf`` bucket present and equal to the series'
    ``_count``, and ``_sum``/``_count`` samples for every bucketed
    label combination.  Raises :class:`ValueError` on the first
    violation; returns the number of sample lines otherwise.
    """
    samples = 0
    typed: Dict[str, str] = {}
    parsed: List[Tuple[int, str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Other comments are legal; HELP/TYPE must be well-formed.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise ValueError(f"line {lineno}: malformed {parts[1]} comment")
                continue
            metric = parts[2]
            if not _METRIC_NAME_OK.match(metric):
                raise ValueError(f"line {lineno}: bad metric name {metric!r}")
            if parts[1] == "TYPE":
                if metric in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {metric!r}")
                if len(parts) < 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError(f"line {lineno}: bad TYPE for {metric!r}")
                typed[metric] = parts[3]
            continue
        if not _EXPOSITION_LINE.match(line):
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name = re.split(r"[{\s]", line, maxsplit=1)[0]
        if not _METRIC_NAME_OK.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        labels: Dict[str, str] = {}
        brace = line.find("{")
        if brace >= 0:
            label_blob = line[brace + 1 : line.rfind("}")]
            for pair in filter(None, _split_labels(label_blob)):
                key, _, raw = pair.partition("=")
                if not _LABEL_NAME_OK.match(key):
                    raise ValueError(f"line {lineno}: bad label name {key!r}")
                labels[key] = _unquote_label(raw)
        value_text = line[line.rfind("}") + 1 :] if brace >= 0 else line[len(name) :]
        try:
            value = float(value_text.split()[0])
        except (ValueError, IndexError):
            raise ValueError(f"line {lineno}: bad sample value in {line!r}") from None
        parsed.append((lineno, name, labels, value))
        samples += 1
    if samples == 0:
        raise ValueError("no sample lines found")
    for family, kind in typed.items():
        if kind == "histogram":
            _validate_histogram_family(family, parsed)
    return samples


def _unquote_label(raw: str) -> str:
    """Undo exposition label-value quoting and escaping."""
    if len(raw) >= 2 and raw.startswith('"') and raw.endswith('"'):
        raw = raw[1:-1]
    return (
        raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _validate_histogram_family(
    family: str, parsed: Sequence[Tuple[int, str, Dict[str, str], float]]
) -> None:
    """Structural checks for one ``TYPE … histogram`` family."""
    buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float, int]]] = {}
    sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for lineno, name, labels, value in parsed:
        if name == f"{family}_bucket":
            le = labels.get("le")
            if le is None:
                raise ValueError(
                    f"line {lineno}: histogram bucket of {family!r} has no "
                    "'le' label"
                )
            try:
                bound = math.inf if le == "+Inf" else float(le)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad 'le' value {le!r} in {family!r}"
                ) from None
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault(key, []).append((bound, value, lineno))
        elif name == f"{family}_sum":
            sums[tuple(sorted(labels.items()))] = value
        elif name == f"{family}_count":
            counts[tuple(sorted(labels.items()))] = value
        elif name == family:
            raise ValueError(
                f"histogram family {family!r} has a bare sample (expected "
                "_bucket/_sum/_count)"
            )
    if not buckets:
        return  # a declared histogram family with no series yet is legal
    for key, series in buckets.items():
        series.sort(key=lambda entry: entry[0])
        previous = -math.inf
        for bound, value, lineno in series:
            if value < previous:
                raise ValueError(
                    f"line {lineno}: histogram {family!r} bucket "
                    f"le={_format_le(bound)} count {value:g} is below the "
                    f"previous bucket's {previous:g}"
                )
            previous = value
        if not math.isinf(series[-1][0]):
            raise ValueError(
                f"histogram {family!r}{dict(key)} is missing its +Inf bucket"
            )
        if key not in sums:
            raise ValueError(f"histogram {family!r}{dict(key)} is missing _sum")
        if key not in counts:
            raise ValueError(f"histogram {family!r}{dict(key)} is missing _count")
        if counts[key] != series[-1][1]:
            raise ValueError(
                f"histogram {family!r}{dict(key)}: +Inf bucket "
                f"{series[-1][1]:g} != _count {counts[key]:g}"
            )


def _split_labels(blob: str) -> Iterable[str]:
    """Split a label blob on commas outside quoted values."""
    out: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        out.append("".join(current))
    return out


# ----------------------------------------------------------------------
# Cross-run diff
# ----------------------------------------------------------------------
def _percent(old: float, new: float) -> str:
    if old == 0.0:
        return "n/a" if new == 0.0 else "+inf%"
    delta = (new - old) / old * 100.0
    return f"{delta:+.1f}%"


def diff_reports(
    old: Sequence[Union[RunReport, Mapping[str, Any]]],
    new: Sequence[Union[RunReport, Mapping[str, Any]]],
) -> str:
    """A human-readable regression comparison of two report sets.

    Reports are matched by formula text.  For each match: wall-clock
    delta, per-phase deltas, error-budget movement, and trust changes;
    formulas present on only one side are listed as added/removed.
    """
    old_reports = {r.formula: r for r in (_as_report(x) for x in old)}
    new_reports = {r.formula: r for r in (_as_report(x) for x in new)}
    lines: List[str] = []
    for formula, new_report in new_reports.items():
        old_report = old_reports.get(formula)
        if old_report is None:
            lines.append(f"+ {formula}  (new formula)")
            continue
        lines.append(f"= {formula}")
        lines.append(
            f"    wall: {old_report.wall_seconds:.6f}s -> "
            f"{new_report.wall_seconds:.6f}s "
            f"({_percent(old_report.wall_seconds, new_report.wall_seconds)})"
        )
        if old_report.trust != new_report.trust:
            lines.append(f"    trust: {old_report.trust} -> {new_report.trust}  [!]")
        old_phases = {p.name: p for p in old_report.phases}
        for phase in new_report.phases:
            before = old_phases.get(phase.name)
            if before is None:
                lines.append(f"    phase {phase.name}: (new) {phase.seconds:.6f}s")
            elif before.seconds or phase.seconds:
                lines.append(
                    f"    phase {phase.name}: {before.seconds:.6f}s -> "
                    f"{phase.seconds:.6f}s "
                    f"({_percent(before.seconds, phase.seconds)})"
                )
        old_budget = old_report.error_budget.to_dict()
        new_budget = new_report.error_budget.to_dict()
        for key in ("truncation_mass", "discretization_defect", "solver_residual"):
            if old_budget[key] != new_budget[key]:
                lines.append(
                    f"    {key}: {old_budget[key]:.3e} -> {new_budget[key]:.3e}"
                )
        old_deg = len(old_report.degradations)
        new_deg = len(new_report.degradations)
        if old_deg != new_deg:
            lines.append(f"    degradations: {old_deg} -> {new_deg}  [!]")
    for formula in old_reports:
        if formula not in new_reports:
            lines.append(f"- {formula}  (removed)")
    if not lines:
        return "no reports to compare\n"
    return "\n".join(lines) + "\n"


def load_report_file(path: str) -> List[RunReport]:
    """Load reports from a ``--report`` output file (or a bare report).

    Accepts both the CLI's ``{"schema": ..., "reports": [...]}``
    envelope and a single serialized report object.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, Mapping) and "reports" in payload:
        entries: Iterable[Mapping[str, Any]] = payload["reports"]
    elif isinstance(payload, Mapping):
        entries = [payload]
    elif isinstance(payload, list):
        entries = payload
    else:
        raise ValueError(f"{path}: not a run-report payload")
    return [RunReport.from_dict(entry) for entry in entries]
