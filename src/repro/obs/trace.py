"""Hierarchical span records: the trace side of the obs layer.

A :class:`SpanRecord` is one timed region of a run — a CSRL parse-tree
node being evaluated, an engine phase, a worker shard — with a parent
pointer, so the records of one :class:`~repro.obs.Collector` form a
forest that mirrors the ``Sat(Phi)`` recursion of Algorithm 4.1.  The
collector keeps a stack of *open* spans: entering ``span()`` pushes a
record whose parent is the stack top, leaving pops it and appends the
completed record to ``Collector.spans`` (children therefore precede
their parents in completion order; consumers sort by ``start``).

Timestamps are seconds relative to the owning collector's ``epoch``
(a ``time.perf_counter()`` reading taken at construction).  Worker
processes ship their spans back as part of a collector snapshot; the
parent-side merge re-bases them with the per-worker clock offset
``worker_epoch - parent_epoch`` — exact under the ``fork`` start method,
where both processes read the same ``CLOCK_MONOTONIC`` timeline.

Span ids are only unique within one collector; merging remaps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["SpanRecord"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    Attributes
    ----------
    span_id:
        Identifier unique within the owning collector.
    parent_id:
        ``span_id`` of the enclosing span, or ``None`` for a root.
    name:
        Span name; equal names aggregate into one ``phases`` entry.
    start, end:
        Seconds relative to the owning collector's epoch.
    pid, tid:
        Process id and thread id that recorded the span (worker spans
        keep their worker pid through the merge, which is what lets a
        merged trace show the fan-out).
    attributes:
        Free-form JSON-ready annotations (operator, bounds, chosen
        engine, trust, ...), mutable until the report is assembled.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    pid: int
    tid: int
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (never negative)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready representation (the report's ``trace`` entries)."""
        return {
            "span_id": int(self.span_id),
            "parent_id": None if self.parent_id is None else int(self.parent_id),
            "name": self.name,
            "start": float(self.start),
            "end": float(self.end),
            "pid": int(self.pid),
            "tid": int(self.tid),
            "attributes": dict(self.attributes),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        parent = payload.get("parent_id")
        return SpanRecord(
            span_id=int(payload["span_id"]),
            parent_id=None if parent is None else int(parent),
            name=str(payload.get("name", "")),
            start=float(payload.get("start", 0.0)),
            end=float(payload.get("end", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            attributes=dict(payload.get("attributes", {})),
        )
