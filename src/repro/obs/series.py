"""Bounded time-series channels: convergence trajectories, not just sums.

The iterative engines drive an error term down over thousands of steps —
the solvers' true residual per sweep, the Poisson/path truncation mass
per epoch, the columnar engine's frontier size per merge.  The run
report previously kept only the final aggregate; a
:class:`SeriesChannel` records the *trajectory* under a hard memory
bound so instrumentation can never blow a guarded run's budget:

* storage is a pair of fixed-capacity float arrays (``capacity``
  points, ~16 bytes each), allocated once;
* when the buffer fills, every other retained sample is dropped and the
  sampling ``stride`` doubles (uniform reservoir downsampling): a
  channel fed ``N`` points keeps an evenly spaced subset of at most
  ``capacity`` of them, whatever ``N`` is;
* ``observed`` counts every offered point, so consumers can tell how
  much was downsampled away.

Channels are created through :meth:`repro.obs.Collector.series`, which
accounts the fixed buffer footprint to the ambient
:class:`repro.guard.Guard` (``Guard.reserve``) — instrumentation memory
is charged against the same budget as engine memory.  The no-op
:data:`NULL_SERIES` mirrors the ``NullCollector`` pattern: hot loops
hold a channel reference and skip the call when disabled.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

__all__ = ["SeriesChannel", "NullSeries", "NULL_SERIES", "DEFAULT_SERIES_CAPACITY"]

#: Default points retained per channel (16 bytes each: ~8 KiB).
DEFAULT_SERIES_CAPACITY = 512


class NullSeries:
    """The do-nothing channel returned by ``NullCollector.series``."""

    enabled = False
    name = ""
    capacity = 0
    stride = 1
    observed = 0
    nbytes = 0

    def append(self, step: float, value: float) -> None:
        pass

    def merge(self, payload: Mapping[str, Any]) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "", "capacity": 0, "stride": 1, "observed": 0, "points": []}


class SeriesChannel(NullSeries):
    """A bounded ``(step, value)`` series with stride-doubling downsampling.

    The retained samples are exactly the offered points whose index is a
    multiple of the current ``stride`` — deterministic, uniform in the
    step axis for regular producers, and stable under replay.
    """

    enabled = True

    def __init__(self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY) -> None:
        capacity = max(8, int(capacity))
        if capacity % 2:
            capacity += 1
        self.name = str(name)
        self.capacity = capacity
        self.stride = 1
        self.observed = 0
        self._count = 0
        self._steps = np.zeros(capacity, dtype=float)
        self._values = np.zeros(capacity, dtype=float)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Fixed buffer footprint (what ``Guard.reserve`` is charged)."""
        return int(self._steps.nbytes + self._values.nbytes)

    def __len__(self) -> int:
        return self._count

    @property
    def steps(self) -> np.ndarray:
        """The retained step coordinates (a copy)."""
        return self._steps[: self._count].copy()

    @property
    def values(self) -> np.ndarray:
        """The retained values (a copy)."""
        return self._values[: self._count].copy()

    # ------------------------------------------------------------------
    def append(self, step: float, value: float) -> None:
        """Offer one point; it is retained iff it lands on the stride."""
        index = self.observed
        self.observed += 1
        if index % self.stride:
            return
        if self._count == self.capacity:
            # Decimate: keep every other retained sample.  Retained
            # sample i held offered index i*stride, so keeping the even
            # positions preserves the all-multiples-of-stride invariant
            # under the doubled stride.
            half = self.capacity // 2
            self._steps[:half] = self._steps[0 : self.capacity : 2]
            self._values[:half] = self._values[0 : self.capacity : 2]
            self._count = half
            self.stride *= 2
            if index % self.stride:
                return
        self._steps[self._count] = step
        self._values[self._count] = value
        self._count += 1

    def merge(self, payload: Mapping[str, Any]) -> None:
        """Fold a serialized channel (e.g. a worker's) into this one.

        The already-downsampled points are offered through
        :meth:`append` (they may be thinned further if this channel is
        fuller than the source); the source's unsampled observations
        still count toward ``observed``.
        """
        points = payload.get("points", [])
        for step, value in points:
            self.append(float(step), float(value))
        extra = int(payload.get("observed", len(points))) - len(points)
        if extra > 0:
            self.observed += extra

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready representation (the report's ``series`` entries)."""
        points: List[List[float]] = [
            [float(s), float(v)]
            for s, v in zip(self._steps[: self._count], self._values[: self._count])
        ]
        return {
            "name": self.name,
            "capacity": int(self.capacity),
            "stride": int(self.stride),
            "observed": int(self.observed),
            "points": points,
        }


#: Shared no-op channel (one instance is enough — it holds no state).
NULL_SERIES = NullSeries()
