"""Lightweight instrumentation primitives: counters, spans, events, series.

The model-checking engines are numerical black boxes unless they report
what they did — truncation mass discarded, solver residuals reached,
cache entries hit, seconds spent per phase.  This module provides the
collection side of that story:

* :class:`Collector` — a recording sink with four primitives:
  monotonically increasing **counters** (``counter_add``), hierarchical
  wall-clock **spans** (``span``, a context manager; parent/child
  structure plus free-form attributes, see
  :class:`repro.obs.trace.SpanRecord`), free-form **events** (``event``,
  a capped ring buffer of dicts), and bounded time-series
  **channels** (``series``, see :class:`repro.obs.series.SeriesChannel`);
* :class:`NullCollector` — the no-op default.  Every method is a stub
  and ``enabled`` is ``False`` so hot loops can skip even the argument
  construction;
* an ambient *current collector* (:func:`get_collector`,
  :func:`use_collector`) so deep call chains (checker → until engine →
  linear solver) need no extra plumbing parameter.

The ambient collector is thread-local: concurrent checkers on separate
threads record into their own sinks.  Worker *processes* (the
``workers=`` fan-out) install a fresh recording collector per shard and
ship its :meth:`Collector.snapshot` back alongside the shard results;
the parent folds it in with :meth:`Collector.merge_snapshot`, re-basing
worker timestamps by the per-worker clock offset, so a fan-out run
yields one merged trace.

Events are bounded: the ring keeps the most recent
:data:`DEFAULT_EVENT_CAPACITY` records and counts overwrites in the
:data:`EVENTS_DROPPED_COUNTER` counter, so a long guarded run cannot
blow its own memory budget through instrumentation.  A per-name index
maintained on append keeps :meth:`Collector.events_named` O(matches)
instead of O(all events).

Instrumentation cost is a handful of dict operations per *phase* (not
per path or per matrix element), which keeps the measured overhead well
under the 5% budget tracked in ``BENCH_3.json``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional

from repro.obs.series import NULL_SERIES, DEFAULT_SERIES_CAPACITY, SeriesChannel
from repro.obs.trace import SpanRecord

__all__ = [
    "Collector",
    "NullCollector",
    "get_collector",
    "use_collector",
    "DEFAULT_EVENT_CAPACITY",
    "EVENTS_DROPPED_COUNTER",
]

#: Ring-buffer capacity of ``Collector.events``.
DEFAULT_EVENT_CAPACITY = 4096

#: Counter incremented once per event evicted from the full ring.
EVENTS_DROPPED_COUNTER = "obs.events-dropped"


class _NullSpanHandle:
    """Reusable no-op context manager returned by ``NullCollector.span``.

    A plain object instead of a ``@contextmanager`` generator: span sites
    sit on engine hot paths, and the disabled case must cost no more
    than an attribute lookup and a method call.
    """

    __slots__ = ()

    def __enter__(self) -> Optional[SpanRecord]:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager for one recording span (see ``Collector.span``).

    Hand-rolled (no generator machinery): the record is created on
    ``__enter__`` and finalized on ``__exit__``, exception or not.
    """

    __slots__ = ("_collector", "_name", "_attributes", "record")

    def __init__(
        self, collector: "Collector", name: str, attributes: Dict[str, Any]
    ) -> None:
        self._collector = collector
        self._name = name
        self._attributes = attributes
        self.record: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        collector = self._collector
        stack = collector._span_stack
        if collector.request_id is not None:
            self._attributes.setdefault("request_id", collector.request_id)
        record = SpanRecord(
            span_id=collector._next_span_id,
            parent_id=stack[-1].span_id if stack else None,
            name=self._name,
            start=time.perf_counter() - collector.epoch,
            end=0.0,
            pid=collector.pid,
            tid=threading.get_ident(),
            attributes=self._attributes,
        )
        collector._next_span_id += 1
        stack.append(record)
        self.record = record
        return record

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        collector = self._collector
        record = self.record
        record.end = time.perf_counter() - collector.epoch
        collector._span_stack.pop()
        collector.spans.append(record)
        elapsed = record.end - record.start
        entry = collector.phases.get(record.name)
        if entry is None:
            collector.phases[record.name] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1
        return False


class NullCollector:
    """The do-nothing sink installed by default.

    ``enabled`` is ``False`` so instrumentation sites can guard any
    non-trivial payload construction::

        obs = get_collector()
        if obs.enabled:
            obs.event("until.paths", generated=total_generated)
    """

    enabled = False
    request_id: Optional[str] = None

    def counter_add(self, name: str, value: float = 1.0) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def span(self, name: str, **attributes: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def annotate(self, **attributes: Any) -> None:
        pass

    def series(self, name: str, capacity: Optional[int] = None):
        return NULL_SERIES


class Collector(NullCollector):
    """A recording sink for one run (typically one ``check()`` call).

    Attributes
    ----------
    counters:
        Name → accumulated value.
    events:
        Ring buffer of event dicts (newest ``event_capacity`` records);
        each carries its ``"event"`` name and a ``"ts"`` timestamp in
        seconds since :attr:`epoch`.  Evictions are counted in the
        ``obs.events-dropped`` counter and :attr:`events_dropped`.
    phases:
        Span name → ``[total_seconds, count]``; repeated spans with the
        same name aggregate (the flat view the report's timing table
        uses).
    spans:
        Completed :class:`~repro.obs.trace.SpanRecord` instances in
        completion order (children before parents; sort by ``start``
        for the tree view).
    series_channels:
        Name → :class:`~repro.obs.series.SeriesChannel`.
    epoch:
        ``time.perf_counter()`` at construction; all span/event
        timestamps are relative to it.
    """

    enabled = True

    def __init__(
        self,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        request_id: Optional[str] = None,
    ) -> None:
        # The end-to-end correlation id: when set, every span records it
        # as a ``request_id`` attribute (see ``_SpanHandle.__enter__``),
        # fan-out workers inherit it through the shard-task envelope,
        # and the Chrome-trace exporter ships it in each event's args —
        # so one id links a daemon response to its spans in Perfetto.
        self.request_id = request_id
        self.counters: Dict[str, float] = {}
        self.events: Deque[Dict[str, Any]] = deque(maxlen=max(1, int(event_capacity)))
        self.phases: Dict[str, List[float]] = {}
        self.spans: List[SpanRecord] = []
        self.series_channels: Dict[str, SeriesChannel] = {}
        self.events_dropped = 0
        self.pid = os.getpid()
        self.epoch = time.perf_counter()
        self._events_by_name: Dict[str, Deque[Dict[str, Any]]] = {}
        self._span_stack: List[SpanRecord] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def event(self, name: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "event": name,
            "ts": time.perf_counter() - self.epoch,
        }
        record.update(fields)
        self._append_event(record)

    def _append_event(self, record: Dict[str, Any]) -> None:
        """Append to the ring, evicting (and de-indexing) the oldest."""
        events = self.events
        if len(events) == events.maxlen:
            dropped = events[0]  # evicted by the append below
            self.events_dropped += 1
            self.counters[EVENTS_DROPPED_COUNTER] = (
                self.counters.get(EVENTS_DROPPED_COUNTER, 0.0) + 1.0
            )
            bucket = self._events_by_name.get(dropped.get("event"))
            if bucket and bucket[0] is dropped:
                # Ring eviction is FIFO and the index preserves insertion
                # order, so the victim is always its bucket's head.
                bucket.popleft()
        events.append(record)
        self._events_by_name.setdefault(record.get("event"), deque()).append(record)

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """A context manager recording one hierarchical wall-clock span.

        Entering creates the :class:`SpanRecord` (parented to the
        innermost open span) and yields it; exiting — normally or with
        an exception — closes it, appends it to :attr:`spans` and
        aggregates its duration into :attr:`phases`.
        """
        return _SpanHandle(self, name, attributes)

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self._span_stack:
            self._span_stack[-1].attributes.update(attributes)

    def series(self, name: str, capacity: Optional[int] = None) -> SeriesChannel:
        """Get or create the named bounded series channel.

        Creation charges the channel's fixed buffer footprint to the
        ambient :class:`repro.guard.Guard` (``reserve``), so a memory
        budget bounds instrumentation and engine allocations alike.
        """
        channel = self.series_channels.get(name)
        if channel is None:
            channel = SeriesChannel(
                name, capacity=DEFAULT_SERIES_CAPACITY if capacity is None else capacity
            )
            self.series_channels[name] = channel
            from repro.guard.guard import get_guard  # local: avoids import cycle

            guard = get_guard()
            if guard.enabled:
                guard.reserve(channel.nbytes, phase="obs.series")
        return channel

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        """The accumulated value of one counter."""
        return self.counters.get(name, default)

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        """All recorded events with the given name, in order.

        Served from the per-name index maintained on append — O(matches),
        not a scan of the whole ring.
        """
        bucket = self._events_by_name.get(name)
        return list(bucket) if bucket else []

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable dump of everything recorded so far.

        This is what a fan-out worker ships back alongside its shard
        results; the parent folds it in with :meth:`merge_snapshot`.
        """
        return {
            "pid": int(self.pid),
            "epoch": float(self.epoch),
            "counters": dict(self.counters),
            "phases": {name: list(entry) for name, entry in self.phases.items()},
            "events": [dict(e) for e in self.events],
            "events_dropped": int(self.events_dropped),
            "spans": [span.to_dict() for span in self.spans],
            "series": {
                name: channel.to_dict()
                for name, channel in self.series_channels.items()
            },
        }

    def merge_snapshot(
        self, snapshot: Mapping[str, Any], clock_offset: Optional[float] = None
    ) -> None:
        """Fold a worker collector snapshot into this collector.

        Counters and phase aggregates add; events append (re-based and
        stamped with the worker pid); series channels merge point-wise;
        spans are re-identified into this collector's id space with
        their tree structure intact, and the worker's root spans are
        hung off the span currently open *here* (the merge site — e.g.
        ``until.search``), so the merged trace shows the fan-out as a
        subtree.

        ``clock_offset`` defaults to ``snapshot epoch − this epoch``:
        under the ``fork`` start method both processes read the same
        ``CLOCK_MONOTONIC`` timeline, so this places worker spans at
        their true wall-clock position on the parent timeline.
        """
        if clock_offset is None:
            offset = float(snapshot.get("epoch", self.epoch)) - self.epoch
        else:
            offset = float(clock_offset)
        worker_pid = int(snapshot.get("pid", 0))
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        for name, entry in snapshot.get("phases", {}).items():
            total, count = float(entry[0]), int(entry[1])
            mine = self.phases.get(name)
            if mine is None:
                self.phases[name] = [total, count]
            else:
                mine[0] += total
                mine[1] += count
        for record in snapshot.get("events", []):
            merged = dict(record)
            if "ts" in merged:
                try:
                    merged["ts"] = float(merged["ts"]) + offset
                except (TypeError, ValueError):
                    pass
            merged.setdefault("pid", worker_pid)
            self._append_event(merged)
        parent_here = self._span_stack[-1].span_id if self._span_stack else None
        id_map: Dict[int, int] = {}
        remapped: List[SpanRecord] = []
        for payload in snapshot.get("spans", []):
            span = SpanRecord.from_dict(payload)
            new_id = self._next_span_id
            self._next_span_id += 1
            id_map[span.span_id] = new_id
            span.span_id = new_id
            span.start += offset
            span.end += offset
            remapped.append(span)
        for span in remapped:
            if span.parent_id is None:
                span.parent_id = parent_here
            else:
                span.parent_id = id_map.get(span.parent_id, parent_here)
            self.spans.append(span)
        for name, payload in snapshot.get("series", {}).items():
            self.series(name).merge(payload)


_NULL = NullCollector()
_state = threading.local()


def get_collector() -> NullCollector:
    """The ambient collector of the current thread (no-op by default)."""
    return getattr(_state, "current", _NULL)


@contextmanager
def use_collector(collector: Optional[NullCollector]) -> Iterator[NullCollector]:
    """Install ``collector`` as the ambient sink for the ``with`` body.

    ``None`` installs the shared no-op collector (useful to *silence*
    instrumentation inside an outer recording scope).  The previous
    collector is restored on exit, so scopes nest naturally.
    """
    installed = _NULL if collector is None else collector
    previous = getattr(_state, "current", _NULL)
    _state.current = installed
    try:
        yield installed
    finally:
        _state.current = previous
