"""Lightweight instrumentation primitives: counters, spans, events.

The model-checking engines are numerical black boxes unless they report
what they did — truncation mass discarded, solver residuals reached,
cache entries hit, seconds spent per phase.  This module provides the
collection side of that story:

* :class:`Collector` — a recording sink with three primitives:
  monotonically increasing **counters** (``counter_add``), wall-clock
  **spans** grouped by name (``span``, a context manager), and free-form
  **events** (``event``, an append-only list of dicts);
* :class:`NullCollector` — the no-op default.  Every method is a stub
  and ``enabled`` is ``False`` so hot loops can skip even the argument
  construction;
* an ambient *current collector* (:func:`get_collector`,
  :func:`use_collector`) so deep call chains (checker → until engine →
  linear solver) need no extra plumbing parameter.

The ambient collector is thread-local: concurrent checkers on separate
threads record into their own sinks.  Worker *processes* (the ``workers=``
fan-out) do not propagate events back to the parent; the batched engines
therefore record their aggregate statistics from the parent side.

Instrumentation cost is a handful of dict operations per *phase* (not
per path or per matrix element), which keeps the measured overhead well
under the 5% budget tracked in ``BENCH_3.json``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Collector",
    "NullCollector",
    "get_collector",
    "use_collector",
]


class NullCollector:
    """The do-nothing sink installed by default.

    ``enabled`` is ``False`` so instrumentation sites can guard any
    non-trivial payload construction::

        obs = get_collector()
        if obs.enabled:
            obs.event("until.paths", generated=total_generated)
    """

    enabled = False

    def counter_add(self, name: str, value: float = 1.0) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield


class Collector(NullCollector):
    """A recording sink for one run (typically one ``check()`` call).

    Attributes
    ----------
    counters:
        Name → accumulated value.
    events:
        Append-only list of dicts; each carries its ``"event"`` name.
    phases:
        Span name → ``[total_seconds, count]``; repeated spans with the
        same name aggregate.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self.phases: Dict[str, List[float]] = {}

    def counter_add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def event(self, name: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"event": name}
        record.update(fields)
        self.events.append(record)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self.phases.get(name)
            if entry is None:
                self.phases[name] = [elapsed, 1]
            else:
                entry[0] += elapsed
                entry[1] += 1

    # ------------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        """The accumulated value of one counter."""
        return self.counters.get(name, default)

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        """All recorded events with the given name, in order."""
        return [e for e in self.events if e.get("event") == name]


_NULL = NullCollector()
_state = threading.local()


def get_collector() -> NullCollector:
    """The ambient collector of the current thread (no-op by default)."""
    return getattr(_state, "current", _NULL)


@contextmanager
def use_collector(collector: Optional[NullCollector]) -> Iterator[NullCollector]:
    """Install ``collector`` as the ambient sink for the ``with`` body.

    ``None`` installs the shared no-op collector (useful to *silence*
    instrumentation inside an outer recording scope).  The previous
    collector is restored on exit, so scopes nest naturally.
    """
    installed = _NULL if collector is None else collector
    previous = getattr(_state, "current", _NULL)
    _state.current = installed
    try:
        yield installed
    finally:
        _state.current = previous
