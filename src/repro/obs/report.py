"""Structured run reports: what a ``check()`` did and how trustworthy it is.

A :class:`RunReport` condenses one :class:`~repro.obs.Collector` into a
JSON-serializable record with three audiences:

* **perf tracking** — per-phase wall-clock timings and engine-cache
  hit/miss deltas, so regressions in any engine phase show up run over
  run (``BENCH_3.json`` stores the instrumentation overhead itself);
* **numerical trust** — the :class:`ErrorBudget`: the Poisson/path
  truncation mass given up by the uniformization engine, the
  discretization scheme's mass-defect bound, and the *true* linear-solver
  residual ``‖b − Ax‖∞`` (PAPER.md Ch. 5 reports exactly these
  alongside every probability);
* **debugging** — the raw counters and events, including solver
  fallbacks and cache activity.

The report schema (``repro.run-report/3``) is documented in
``docs/api.md``; :meth:`RunReport.to_dict` emits it and
:meth:`RunReport.from_dict` round-trips it.  Earlier payloads still
load: schema 1 had no ``degradations``/``trust`` (defaults apply) and
schema 2 had no ``trace``/``series`` sections (they default to empty —
those runs simply recorded no span tree or time-series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.collector import Collector

__all__ = ["ErrorBudget", "PhaseTiming", "RunReport", "REPORT_SCHEMA"]

#: Schema identifier embedded in every serialized report.
REPORT_SCHEMA = "repro.run-report/3"

#: Counter names the engines use to feed the error budget.
TRUNCATION_COUNTER = "error.truncation_mass"
DEFECT_COUNTER = "error.discretization_defect"
#: Event name carrying linear-solver diagnostics (field ``residual``).
LINSOLVE_EVENT = "linsolve"
#: Event names feeding the ``degradations`` report section.
DEGRADATION_EVENT = "guard.degradation"
PARTIAL_EVENT = "guard.partial"
POOL_FAILURE_EVENT = "pool.worker-failure"
SOLVER_FALLBACK_EVENT = "linsolve.fallback"


@dataclass(frozen=True)
class ErrorBudget:
    """Per-formula numerical error decomposition.

    Attributes
    ----------
    truncation_mass:
        Total probability mass discarded by path/Poisson truncation
        (eq. 4.6 bounds plus the Fox–Glynn tail mass of transient
        analysis), summed over the quantitative sub-evaluations.
    discretization_defect:
        Total mass-defect bound of the discretization engine (per-step
        multi-jump probability times the number of steps), summed over
        sub-evaluations; 0 for uniformization-only formulas.
    solver_residual:
        Worst true residual ``‖b − Ax‖∞`` over all linear solves
        (steady-state and unbounded-until systems); 0 when no linear
        system was solved.
    """

    truncation_mass: float = 0.0
    discretization_defect: float = 0.0
    solver_residual: float = 0.0

    @property
    def total(self) -> float:
        """The summed budget — a single *indicative* error magnitude."""
        return self.truncation_mass + self.discretization_defect + self.solver_residual

    def to_dict(self) -> Dict[str, float]:
        return {
            "truncation_mass": self.truncation_mass,
            "discretization_defect": self.discretization_defect,
            "solver_residual": self.solver_residual,
            "total": self.total,
        }

    @staticmethod
    def from_collector(collector: Collector) -> "ErrorBudget":
        """Aggregate the budget from a collector's counters and events.

        Truncation mass and discretization defect accumulate additively
        in their counters; the solver residual is the *maximum* over all
        recorded ``linsolve`` events (residuals of separate systems do
        not add — the worst one dominates the trust statement).
        """
        residual = 0.0
        for event in collector.events_named(LINSOLVE_EVENT):
            value = event.get("residual")
            if value is not None:
                residual = max(residual, float(value))
        return ErrorBudget(
            truncation_mass=float(collector.counter(TRUNCATION_COUNTER)),
            discretization_defect=float(collector.counter(DEFECT_COUNTER)),
            solver_residual=residual,
        )


@dataclass(frozen=True)
class PhaseTiming:
    """Aggregated wall-clock time of one named phase."""

    name: str
    seconds: float
    count: int

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seconds": self.seconds, "count": self.count}


@dataclass(frozen=True)
class RunReport:
    """The observable outcome of one ``ModelChecker.check()`` call.

    Attributes
    ----------
    formula:
        Rendered formula text.
    wall_seconds:
        End-to-end duration of the check (parse excluded — it happens
        before the collector is installed — and report assembly
        excluded).
    phases:
        Per-phase timings, insertion-ordered (outer phases first).
    counters:
        Raw counters (search statistics, cache activity, budget feeds).
    events:
        Raw event dicts (solver diagnostics, fallbacks, grid shapes).
    cache:
        Engine-cache activity *during this check* (hit/miss/eviction
        deltas plus the absolute entry count afterwards).
    error_budget:
        The aggregated numerical trust statement.
    trust:
        The run's trust qualification (``"exact"``, ``"degraded"`` or
        ``"partial"`` — see :class:`repro.check.SatResult`).
    degradations:
        Every degradation, fallback, budget trip and worker failure the
        run survived, in order: engine tier step-downs and partial
        fill-ins (``kind: "engine"``/``"partial"``), linear-solver
        direct fallbacks (``kind: "solver"``) and fan-out pool worker
        recoveries (``kind: "pool"``, carrying the shard index and the
        pool's worker pids).
    trace:
        Serialized :class:`~repro.obs.trace.SpanRecord` dicts — the
        hierarchical span tree of the run (one ``sat.*`` span per CSRL
        parse-tree node, engine phases beneath, worker shards merged in
        with their own pids).  Schema 3+; empty for older payloads.
    series:
        Serialized :class:`~repro.obs.series.SeriesChannel` dicts by
        name — bounded convergence time-series (solver residual per
        sweep, truncation mass per epoch, frontier sizes per merge).
        Schema 3+; empty for older payloads.
    """

    formula: str
    wall_seconds: float
    phases: List[PhaseTiming] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    cache: Dict[str, int] = field(default_factory=dict)
    error_budget: ErrorBudget = field(default_factory=ErrorBudget)
    trust: str = "exact"
    degradations: List[Dict[str, Any]] = field(default_factory=list)
    trace: List[Dict[str, Any]] = field(default_factory=list)
    series: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def degradations_from_collector(collector: Collector) -> List[Dict[str, Any]]:
        """The ``degradations`` section assembled from a collector's events.

        Engine/partial records are emitted by the checker's cascade as
        ``guard.degradation``/``guard.partial`` events and pass through
        unchanged (minus the event name); solver fallbacks and pool
        worker failures are normalized into the same shape.
        """
        records: List[Dict[str, Any]] = []
        for event in collector.events:
            name = event.get("event")
            if name in (DEGRADATION_EVENT, PARTIAL_EVENT):
                # "ts"/"pid" are trace envelope, not degradation payload.
                record = {
                    k: v for k, v in event.items() if k not in ("event", "ts", "pid")
                }
                record.setdefault(
                    "kind", "partial" if name == PARTIAL_EVENT else "engine"
                )
                records.append(record)
            elif name == SOLVER_FALLBACK_EVENT:
                records.append(
                    {
                        "kind": "solver",
                        "operator": "linsolve",
                        "from": str(event.get("method", "iterative")),
                        "to": "direct",
                        "reason": (
                            f"ConvergenceError: no convergence within "
                            f"{event.get('iterations')} iterations "
                            f"(residual {event.get('residual')})"
                        ),
                    }
                )
            elif name == POOL_FAILURE_EVENT:
                record = {
                    "kind": "pool",
                    "operator": "until",
                    "from": "fork-pool",
                    "to": str(event.get("recovery", "serial")),
                    "reason": str(event.get("reason", "worker failure")),
                }
                if "shard" in event:
                    record["shard"] = list(event["shard"])
                if "shard_index" in event:
                    record["shard_index"] = int(event["shard_index"])
                if "worker_pids" in event:
                    record["worker_pids"] = list(event["worker_pids"])
                records.append(record)
        return records

    @staticmethod
    def from_collector(
        formula: str,
        collector: Collector,
        wall_seconds: float,
        cache: Optional[Mapping[str, int]] = None,
        trust: str = "exact",
    ) -> "RunReport":
        """Condense a collector (plus cache deltas) into a report."""
        phases = [
            PhaseTiming(name=name, seconds=float(total), count=int(count))
            for name, (total, count) in collector.phases.items()
        ]
        return RunReport(
            formula=formula,
            wall_seconds=float(wall_seconds),
            phases=phases,
            counters=dict(collector.counters),
            events=[dict(e) for e in collector.events],
            cache=dict(cache or {}),
            error_budget=ErrorBudget.from_collector(collector),
            trust=str(trust),
            degradations=RunReport.degradations_from_collector(collector),
            trace=[span.to_dict() for span in getattr(collector, "spans", [])],
            series={
                name: channel.to_dict()
                for name, channel in getattr(collector, "series_channels", {}).items()
            },
        )

    # ------------------------------------------------------------------
    def phase(self, name: str) -> Optional[PhaseTiming]:
        """The timing entry for one phase name (None if absent)."""
        for entry in self.phases:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready representation (schema ``repro.run-report/3``)."""
        return {
            "schema": REPORT_SCHEMA,
            "formula": self.formula,
            "wall_seconds": self.wall_seconds,
            "phases": [p.to_dict() for p in self.phases],
            "counters": dict(self.counters),
            "events": [dict(e) for e in self.events],
            "cache": dict(self.cache),
            "error_budget": self.error_budget.to_dict(),
            "trust": self.trust,
            "degradations": [dict(d) for d in self.degradations],
            "trace": [dict(s) for s in self.trace],
            "series": {name: dict(ch) for name, ch in self.series.items()},
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        Accepts older payloads too.  Schema 1 carried no ``trust`` or
        ``degradations`` keys, which default to ``"exact"`` and an empty
        list (schema 1 had no way to degrade, so those defaults are the
        truth, not a guess); schema 2 additionally carried no ``trace``
        or ``series`` sections, which default to empty (those runs
        recorded no span tree or time-series).
        """
        budget = payload.get("error_budget", {})
        return RunReport(
            formula=str(payload.get("formula", "")),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            phases=[
                PhaseTiming(
                    name=str(p["name"]),
                    seconds=float(p["seconds"]),
                    count=int(p["count"]),
                )
                for p in payload.get("phases", [])
            ],
            counters={str(k): float(v) for k, v in payload.get("counters", {}).items()},
            events=[dict(e) for e in payload.get("events", [])],
            cache={str(k): int(v) for k, v in payload.get("cache", {}).items()},
            error_budget=ErrorBudget(
                truncation_mass=float(budget.get("truncation_mass", 0.0)),
                discretization_defect=float(budget.get("discretization_defect", 0.0)),
                solver_residual=float(budget.get("solver_residual", 0.0)),
            ),
            trust=str(payload.get("trust", "exact")),
            degradations=[dict(d) for d in payload.get("degradations", [])],
            trace=[dict(s) for s in payload.get("trace", [])],
            series={
                str(name): dict(ch)
                for name, ch in payload.get("series", {}).items()
            },
        )
