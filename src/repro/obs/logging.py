"""Structured logging and the bounded slow-request log.

The daemon's operational narrative — requests admitted, completed,
shed, cancelled — needs to be machine-joinable with the metrics scrape
and the trace exporters, so every record here is *structured*: an
event name plus typed fields (``tenant``, ``request_id``, duration
seconds), rendered either as one JSON object per line (the fleet
format: ``--log-format json``) or as a human ``key=value`` line
(``--log-format text``).  A ``request_id`` field on a log line is the
same identifier stamped on the response envelope and on every span
attribute of the run's trace, which is what makes one slow request
findable across all three.

:class:`SlowLog` is the retention half of that story: a bounded
worst-N-by-duration record of completed requests (with their
error-budget summaries riding along), cheap enough to keep forever and
small enough to ship whole over the daemon's ``slowlog`` method or the
HTTP sidecar's ``/debug/slowlog``.

Everything here is stdlib-only and thread-safe; the daemon logs from
the event-loop thread and from executor worker threads alike.
"""

from __future__ import annotations

import heapq
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "LOG_LEVELS",
    "StructuredLogger",
    "SlowLog",
]

#: Recognized level names, in increasing severity.  ``off`` disables
#: every record (the benchmark baseline and quiet embeddings use it).
LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}


#: Second-granularity timestamp prefix cache.  Formatting the calendar
#: part of the timestamp (``gmtime`` plus an f-string) dominates the
#: cost of a log record, and every record within the same wall-clock
#: second shares it, so cache one ``(second, prefix)`` pair.  The
#: benign race (two threads formatting the same second twice) only
#: costs a redundant recompute; tuple assignment is atomic.
_TS_CACHE = (-1, "")


def _utc_timestamp(epoch_seconds: float) -> str:
    """RFC 3339 UTC timestamp with millisecond precision."""
    global _TS_CACHE
    second = int(epoch_seconds)
    cached_second, prefix = _TS_CACHE
    if second != cached_second:
        whole = time.gmtime(second)
        prefix = (
            f"{whole.tm_year:04d}-{whole.tm_mon:02d}-{whole.tm_mday:02d}T"
            f"{whole.tm_hour:02d}:{whole.tm_min:02d}:{whole.tm_sec:02d}."
        )
        _TS_CACHE = (second, prefix)
    millis = int((epoch_seconds - second) * 1000)
    return f"{prefix}{millis:03d}Z"


class StructuredLogger:
    """A tiny leveled, structured, line-oriented logger.

    Not built on :mod:`logging`: the records are data (event name +
    fields), the two output formats are fixed, and the hot call must
    stay a couple of dict operations plus one write.  A logger below
    threshold returns before building the record, so ``off`` costs a
    single integer comparison per call site.

    Parameters
    ----------
    stream:
        Where lines go (default ``sys.stderr``).  The stream is written
        under a lock and flushed per record, so interleaved writers
        from multiple threads never shear a line.
    fmt:
        ``"json"`` for one JSON object per line, ``"text"`` for a
        ``timestamp LEVEL event key=value ...`` line.
    level:
        Threshold name from :data:`LOG_LEVELS`.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        fmt: str = "text",
        level: str = "info",
    ) -> None:
        if fmt not in ("text", "json"):
            raise ValueError(f"unknown log format {fmt!r} (expected text or json)")
        if level not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {level!r} "
                f"(expected one of {', '.join(sorted(LOG_LEVELS))})"
            )
        self._stream = stream if stream is not None else sys.stderr
        self._fmt = fmt
        self._threshold = LOG_LEVELS[level]
        self._lock = threading.Lock()

    @property
    def format(self) -> str:
        return self._fmt

    def enabled_for(self, level: str) -> bool:
        return LOG_LEVELS.get(level, 0) >= self._threshold

    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one record; ``None``-valued fields are dropped."""
        if LOG_LEVELS.get(level, 0) < self._threshold:
            return
        payload: Dict[str, Any] = {
            "ts": _utc_timestamp(time.time()),
            "level": level,
            "event": event,
        }
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        if self._fmt == "json":
            # Insertion order is already stable (ts, level, event, then
            # the caller's fields); sorting would only add cost, and the
            # compact separators shave both time and bytes.
            line = json.dumps(payload, default=str, separators=(",", ":"))
        else:
            detail = " ".join(
                f"{key}={_render_text_value(value)}"
                for key, value in payload.items()
                if key not in ("ts", "level", "event")
            )
            line = f"{payload['ts']} {level.upper():<7} {event}"
            if detail:
                line = f"{line} {detail}"
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a dead log stream must never take the daemon down

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def _render_text_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or '"' in text:
        return json.dumps(text)
    return text


class SlowLog:
    """A bounded record of the slowest requests seen so far.

    Keeps the worst ``capacity`` entries by ``duration_s`` on a min-heap
    (O(log capacity) per record, O(capacity) memory forever), so a
    long-running daemon can always answer "which requests were slow and
    why" without retaining unbounded history.  Entries are free-form
    dicts — the daemon stores the request id, tenant, formula, the
    per-stage latencies and the run's error-budget summary.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity!r}")
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._heap: List[Any] = []  # (duration_s, seq, entry)
        self._seq = 0  # tie-breaker: equal durations never compare dicts

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, duration_s: float, entry: Dict[str, Any]) -> bool:
        """Offer one completed request; returns ``True`` when retained."""
        duration_s = float(duration_s)
        item = dict(entry)
        item["duration_s"] = duration_s
        with self._lock:
            self._seq += 1
            if len(self._heap) < self._capacity:
                heapq.heappush(self._heap, (duration_s, self._seq, item))
                return True
            if duration_s <= self._heap[0][0]:
                return False
            heapq.heapreplace(self._heap, (duration_s, self._seq, item))
            return True

    def entries(self) -> List[Dict[str, Any]]:
        """Retained entries, slowest first (a copy; JSON-ready)."""
        with self._lock:
            ranked = sorted(self._heap, key=lambda it: (-it[0], it[1]))
            return [dict(item) for _, _, item in ranked]

    def threshold_s(self) -> Optional[float]:
        """The duration a new request must exceed to be retained, or
        ``None`` while the log is not yet full."""
        with self._lock:
            if len(self._heap) < self._capacity:
                return None
            return float(self._heap[0][0])
