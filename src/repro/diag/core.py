"""Core diagnostics model: spans, diagnostics, and the collecting sink.

Both front ends (the CSRL formula grammar of :mod:`repro.logic.parser`
and the guarded-command ``.mrm`` language of :mod:`repro.lang`) report
problems through the same three types:

* :class:`Span` — a line/column *range* in the source text (1-based,
  end-exclusive columns), optionally carrying the flat character offset
  for single-line formula sources;
* :class:`Diagnostic` — one finding: a stable error code from
  :mod:`repro.diag.codes` (``CSRL010``, ``MRM203``, ...), a severity
  (``error`` or ``warning``), a message, the span, and an optional
  "did you mean" suggestion;
* :class:`DiagnosticSink` — the collector the parsers emit into.
  Parsers *recover* instead of aborting (synchronizing at ``;``/``]``/
  declaration keywords), so one run reports every error; at the end,
  :meth:`DiagnosticSink.raise_if_errors` raises a single
  :class:`~repro.exceptions.ParseError` summarizing the first error and
  carrying the complete diagnostic list for callers that want all of
  them.

The :func:`did_you_mean` helper produces the suggestion strings for
near-miss keywords, labels and action names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.diag.codes import severity_of
from repro.exceptions import ParseError

__all__ = [
    "Span",
    "Diagnostic",
    "DiagnosticSink",
    "did_you_mean",
]


@dataclass(frozen=True)
class Span:
    """A source range: 1-based lines and columns, end-exclusive columns.

    A single character at line 3, column 5 is ``Span(3, 5, 3, 6)``.
    ``offset`` is the flat character offset of the start when known
    (CSRL formulas are addressed by offset; ``.mrm`` files by
    line/column).
    """

    line: int
    column: int
    end_line: int
    end_column: int
    offset: Optional[int] = field(default=None, compare=False)

    @staticmethod
    def from_offsets(source: str, start: int, end: Optional[int] = None) -> "Span":
        """Build a span from flat character offsets into ``source``.

        ``end`` defaults to ``start + 1`` (a single character); both are
        clamped to the source length so "unexpected end of input" spans
        stay printable.
        """
        start = max(0, min(int(start), len(source)))
        stop = start + 1 if end is None else max(start, min(int(end), len(source) + 1))
        line = source.count("\n", 0, start) + 1
        bol = source.rfind("\n", 0, start) + 1
        column = start - bol + 1
        end_line = source.count("\n", 0, max(start, stop - 1)) + 1
        if end_line == line:
            end_column = column + (stop - start)
        else:
            end_bol = source.rfind("\n", 0, max(start, stop - 1)) + 1
            end_column = max(start, stop - 1) - end_bol + 2
        return Span(line, column, end_line, end_column, offset=start)

    @staticmethod
    def at(line: int, column: int, length: int = 1) -> "Span":
        """A single-line span of ``length`` characters."""
        length = max(1, int(length))
        return Span(int(line), int(column), int(line), int(column) + length)

    @property
    def length(self) -> int:
        """Character length for single-line spans (1 for multi-line)."""
        if self.end_line != self.line:
            return 1
        return max(1, self.end_column - self.column)

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a front end or lint pass.

    ``code`` is stable across releases (documented in
    ``docs/diagnostics.md``); tools may match on it.  ``severity`` is
    ``"error"`` or ``"warning"``.  ``span`` is ``None`` only for
    problems with no usable location (an empty input, a semantic error
    reported by the compiler without source attribution).
    """

    code: str
    severity: str
    message: str
    span: Optional[Span] = None
    suggestion: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``repro.diagnostics/1`` item shape)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "end_line": self.span.end_line if self.span else None,
            "end_column": self.span.end_column if self.span else None,
            "suggestion": self.suggestion,
        }
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the JSON round-trip tests)."""
        span = None
        if payload.get("line") is not None:
            span = Span(
                payload["line"],
                payload["column"],
                payload.get("end_line", payload["line"]),
                payload.get("end_column", payload["column"] + 1),
            )
        return Diagnostic(
            code=payload["code"],
            severity=payload["severity"],
            message=payload["message"],
            span=span,
            suggestion=payload.get("suggestion"),
        )

    def __str__(self) -> str:
        location = f" at {self.span}" if self.span else ""
        text = f"[{self.code}] {self.message}{location}"
        if self.suggestion:
            text += f" (did you mean {self.suggestion!r}?)"
        return text


class DiagnosticSink:
    """Collects :class:`Diagnostic` records during a parse or lint run.

    The sink is deliberately dumb: parsers decide *where* to recover;
    the sink only accumulates, de-duplicates exact repeats (recovery
    paths occasionally revisit a token), and converts to the raised
    :class:`~repro.exceptions.ParseError` summary.
    """

    def __init__(self) -> None:
        self._diagnostics: List[Diagnostic] = []
        self._seen: set = set()

    # ------------------------------------------------------------------
    def emit(self, diagnostic: Diagnostic) -> None:
        key = (
            diagnostic.code,
            diagnostic.message,
            diagnostic.span.line if diagnostic.span else None,
            diagnostic.span.column if diagnostic.span else None,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self._diagnostics.append(diagnostic)

    def error(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, "error", message, span, suggestion)
        self.emit(diagnostic)
        return diagnostic

    def warning(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, "warning", message, span, suggestion)
        self.emit(diagnostic)
        return diagnostic

    def report(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        """Emit with the code's catalogued default severity."""
        diagnostic = Diagnostic(code, severity_of(code), message, span, suggestion)
        self.emit(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    # ------------------------------------------------------------------
    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.is_error)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if not d.is_error)

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self):
        return iter(self._diagnostics)

    # ------------------------------------------------------------------
    def raise_if_errors(self) -> None:
        """Raise a :class:`~repro.exceptions.ParseError` when any error
        diagnostic was collected.

        The exception message summarizes the first error (with its code
        and location) and says how many more there are; the full list —
        warnings included — rides along as ``error.diagnostics``.
        """
        errors = self.errors
        if not errors:
            return
        first = errors[0]
        message = f"[{first.code}] {first.message}"
        if first.suggestion:
            message += f" (did you mean {first.suggestion!r}?)"
        position = None
        if first.span is not None:
            position = first.span.offset
            if position is None:
                message += f" at {first.span}"
        if len(errors) > 1:
            message += f" (and {len(errors) - 1} more error{'s' if len(errors) > 2 else ''})"
        raise ParseError(message, position=position, diagnostics=self.diagnostics)


def did_you_mean(word: str, candidates: Sequence[str]) -> Optional[str]:
    """The closest near-miss among ``candidates``, or ``None``.

    Used for suggestion strings on unknown keywords, labels, state
    names and actions.  Conservative on purpose: a suggestion that is
    wrong is worse than none.
    """
    if not word or not candidates:
        return None
    matches = difflib.get_close_matches(word, list(candidates), n=1, cutoff=0.6)
    if matches and matches[0] != word:
        return matches[0]
    # Case-insensitive exact hit beats fuzzy distance ("tt" -> "TT").
    lowered = {c.lower(): c for c in candidates}
    exact = lowered.get(word.lower())
    if exact is not None and exact != word:
        return exact
    return matches[0] if matches else None
