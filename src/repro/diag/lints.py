"""Semantic lints over formulas, models and ``.mrm`` source files.

Three entry points, all returning plain lists of
:class:`~repro.diag.core.Diagnostic`:

* :func:`lint_formula` — AST-level warnings on a *well-formed* CSRL
  formula (vacuous probability bounds, measure-zero reward points);
* :func:`lint_model` — warnings on a built :class:`~repro.mrm.model.MRM`
  (unreachable states, absorbing states that keep accumulating state
  reward, zero-rate rows);
* :func:`lint_model_source` — the full ``.mrm`` pipeline used by
  ``mrmc-impulse lint``: lex + parse with multi-error recovery, then
  AST-level semantic checks (impulse rewards on undeclared actions,
  invalid declared formulas), then — when those pass — a compile and
  the model/formula lints with source spans where available.

Errors make ``mrmc-impulse lint`` exit non-zero; warnings do not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.diag.core import Diagnostic, DiagnosticSink, did_you_mean
from repro.exceptions import ModelError, ParseError
from repro.logic.ast import (
    Comparison,
    Next,
    Prob,
    StateFormula,
    Steady,
    Until,
)
from repro.mrm.model import MRM

__all__ = [
    "lint_formula",
    "lint_formula_source",
    "lint_model",
    "lint_model_source",
]


# ----------------------------------------------------------------------
# formula lints (AST level)
# ----------------------------------------------------------------------
def _bound_is_vacuous(comparison: Comparison, bound: float) -> bool:
    """Whether every probability in [0, 1] satisfies the bound."""
    if comparison is Comparison.GE and bound == 0.0:
        return True
    if comparison is Comparison.LE and bound == 1.0:
        return True
    return False


def lint_formula(formula: StateFormula) -> List[Diagnostic]:
    """Warnings for a well-formed formula (no spans: AST input)."""
    sink = DiagnosticSink()
    for node in formula.subformulas():
        if isinstance(node, (Prob, Steady)):
            if _bound_is_vacuous(node.comparison, node.bound):
                operator = "P" if isinstance(node, Prob) else "S"
                sink.warning(
                    "CSRL020",
                    f"bound {operator}({node.comparison}{node.bound:g}) is vacuous: "
                    "every state satisfies it",
                )
        if isinstance(node, (Next, Until)):
            reward = node.reward_bound
            if reward.is_point and reward.lower > 0.0:
                sink.warning(
                    "CSRL022",
                    f"point reward interval [{reward.lower:g},{reward.upper:g}] "
                    "is met only when the accumulated reward is exactly "
                    f"{reward.lower:g}; for continuously accumulating rewards "
                    "this path set typically has probability 0",
                )
    return list(sink.diagnostics)


def lint_formula_source(text: str) -> List[Diagnostic]:
    """Parse one CSRL formula and return every diagnostic (no raise).

    Syntax errors come back as error diagnostics (multi-error recovery:
    one run reports all of them); on a clean parse the AST lints run
    on top.
    """
    from repro.logic.parser import parse_formula

    sink = DiagnosticSink()
    formula = parse_formula(text, sink=sink)
    if not sink.has_errors and formula is not None:
        sink.extend(lint_formula(formula))
    return list(sink.diagnostics)


# ----------------------------------------------------------------------
# model lints (built MRM)
# ----------------------------------------------------------------------
def lint_model(
    model: MRM,
    initial_states: Optional[Sequence[int]] = None,
) -> List[Diagnostic]:
    """Warnings on a built MRM.

    ``initial_states`` enables the reachability lint (MRM301); without
    it — a bare ``.tra`` bundle has no distinguished initial state —
    only the per-state lints run.
    """
    from repro.graphs.reachability import forward_reachable

    sink = DiagnosticSink()
    n = model.num_states
    if initial_states is not None:
        reachable = forward_reachable(model.rates, initial_states)
        unreachable = sorted(set(range(n)) - reachable)
        for state in unreachable:
            sink.warning(
                "MRM301",
                f"state {model.state_names[state]!r} (index {state}) is "
                "unreachable from the initial state",
            )
    for state in range(n):
        if model.is_absorbing(state):
            name = model.state_names[state]
            sink.warning(
                "MRM303",
                f"rate row of state {name!r} (index {state}) sums to zero "
                "(the state is absorbing)",
            )
            if model.state_reward(state) > 0.0:
                sink.warning(
                    "MRM302",
                    f"absorbing state {name!r} (index {state}) carries state "
                    f"reward rate {model.state_reward(state):g}: accumulated "
                    "reward grows without bound once the state is entered",
                )
    return list(sink.diagnostics)


# ----------------------------------------------------------------------
# full .mrm source lint
# ----------------------------------------------------------------------
def lint_model_source(source: str) -> List[Diagnostic]:
    """Lex, parse, semantically check and lint ``.mrm`` source text."""
    from repro.lang.compiler import compile_model
    from repro.lang.parser import parse_model_collect
    from repro.logic.parser import parse_formula

    sink = DiagnosticSink()
    ast = parse_model_collect(source, sink)
    if sink.has_errors or ast is None:
        return list(sink.diagnostics)

    # AST-level semantic checks that have spans.
    declared_actions = sorted({c.action for c in ast.commands if c.action})
    for declaration in ast.impulse_rewards:
        if declaration.action not in declared_actions:
            sink.error(
                "MRM304",
                f"impulse reward declared for action {declaration.action!r}, "
                "but no command carries that action",
                span=declaration.span,
                suggestion=did_you_mean(declaration.action, declared_actions),
            )
    for declaration in ast.formulas:
        formula_sink = DiagnosticSink()
        parsed = parse_formula(declaration.text, sink=formula_sink)
        if formula_sink.has_errors:
            nested = "; ".join(
                f"[{d.code}] {d.message}" for d in formula_sink.errors
            )
            sink.error(
                "MRM308",
                f"formula {declaration.name!r} is not valid CSRL: {nested}",
                span=declaration.span,
            )
        elif parsed is not None:
            for warning in lint_formula(parsed):
                sink.warning(
                    warning.code,
                    f"in formula {declaration.name!r}: {warning.message}",
                    span=declaration.span,
                )
    if sink.has_errors:
        return list(sink.diagnostics)

    try:
        compiled = compile_model(source)
    except (ModelError, ParseError) as error:
        sink.error("MRM307", str(error))
        return list(sink.diagnostics)

    # Dead commands and never-true labels need the reachable state space.
    from repro.lang.expressions import evaluate_boolean

    environments: List[Dict[str, float]] = []
    for valuation in compiled.states:
        environment = dict(compiled.constants)
        environment.update(zip(compiled.variable_names, valuation))
        environments.append(environment)
    for command in ast.commands:
        if not any(evaluate_boolean(command.guard, env) for env in environments):
            label = f"[{command.action}]" if command.action else "[]"
            sink.warning(
                "MRM305",
                f"command {label} can never fire: its guard is unsatisfiable "
                "on the reachable state space",
                span=command.span,
            )
    for declaration in ast.labels:
        if not compiled.mrm.states_with_label(declaration.name):
            sink.warning(
                "MRM306",
                f"label {declaration.name!r} holds in no reachable state",
                span=declaration.span,
            )
    sink.extend(lint_model(compiled.mrm, initial_states=(compiled.initial_state,)))
    return list(sink.diagnostics)
