"""Shared diagnostics engine for the CSRL and ``.mrm`` front ends.

The package splits into four layers:

* :mod:`repro.diag.core` — :class:`Span`, :class:`Diagnostic`,
  :class:`DiagnosticSink` and the :func:`did_you_mean` suggestion
  helper;
* :mod:`repro.diag.codes` — the stable, append-only error-code
  catalogue (``CSRL0xx``, ``MRM1xx``/``2xx``/``3xx``);
* :mod:`repro.diag.render` — caret excerpts and the
  ``repro.diagnostics/1`` JSON document of ``mrmc-impulse lint``;
* :mod:`repro.diag.lints` — semantic lints over formulas, built MRMs
  and ``.mrm`` source files.

Both parsers emit into a :class:`DiagnosticSink` and *recover* instead
of aborting, so a single run reports every error; the raised
:class:`~repro.exceptions.ParseError` summarizes the first one and
carries the full list as ``error.diagnostics``.
"""

from repro.diag.codes import CATALOG, describe, is_known_code, severity_of
from repro.diag.core import Diagnostic, DiagnosticSink, Span, did_you_mean
from repro.diag.lints import (
    lint_formula,
    lint_formula_source,
    lint_model,
    lint_model_source,
)
from repro.diag.render import (
    DIAGNOSTICS_SCHEMA,
    diagnostics_payload,
    render_diagnostic,
    render_diagnostics,
    validate_diagnostics_json,
)

__all__ = [
    "CATALOG",
    "describe",
    "is_known_code",
    "severity_of",
    "Diagnostic",
    "DiagnosticSink",
    "Span",
    "did_you_mean",
    "lint_formula",
    "lint_formula_source",
    "lint_model",
    "lint_model_source",
    "DIAGNOSTICS_SCHEMA",
    "diagnostics_payload",
    "render_diagnostic",
    "render_diagnostics",
    "validate_diagnostics_json",
]
