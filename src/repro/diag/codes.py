"""The stable error-code catalogue.

Codes are grouped by front end and phase:

* ``CSRL0xx`` — CSRL formula grammar (lexical and syntactic errors);
* ``CSRL02x`` — CSRL semantic lints (warnings on well-formed formulas);
* ``MRM1xx`` — ``.mrm`` lexer;
* ``MRM2xx`` — ``.mrm`` parser;
* ``MRM3xx`` — ``.mrm``/MRM semantic checks and lints.

Every code a parser or lint pass can emit is listed here with its
default severity and a one-line description; ``docs/diagnostics.md``
renders this table for users.  Codes are append-only: a released code
never changes meaning or is reused.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["CATALOG", "describe", "severity_of", "is_known_code"]

#: code -> (default severity, description)
CATALOG: Dict[str, Tuple[str, str]] = {
    # ------------------------------------------------------------------
    # CSRL formula grammar
    # ------------------------------------------------------------------
    "CSRL001": ("error", "unexpected character in a formula"),
    "CSRL002": ("error", "malformed number literal (e.g. '1.2.3', '5..2', '1e+')"),
    "CSRL003": ("error", "unexpected end of formula"),
    "CSRL004": ("error", "a specific token was expected but something else was found"),
    "CSRL005": ("error", "unexpected token"),
    "CSRL006": ("error", "keyword cannot start a state formula"),
    "CSRL007": ("error", "expected a comparison operator (<, <=, >, >=)"),
    "CSRL008": ("error", "expected 'U' between the operands of an until formula"),
    "CSRL009": ("error", "interval upper bound lies below its lower bound"),
    "CSRL010": ("error", "probability bound outside [0, 1]"),
    "CSRL011": ("error", "infinity (~) is only allowed as an interval upper bound"),
    "CSRL012": ("error", "expected a number in an interval bound"),
    "CSRL013": ("error", "unexpected trailing input after a complete formula"),
    "CSRL014": ("error", "empty formula"),
    # ------------------------------------------------------------------
    # CSRL lints (well-formed but suspicious formulas)
    # ------------------------------------------------------------------
    "CSRL020": ("warning", "vacuous probability bound (every state satisfies it)"),
    "CSRL021": ("warning", "explicitly written unbounded interval [0,~] (omit it)"),
    "CSRL022": ("warning", "point reward interval [r,r] with r > 0 (typically measure zero)"),
    # ------------------------------------------------------------------
    # .mrm lexer
    # ------------------------------------------------------------------
    "MRM101": ("error", "unexpected character in model source"),
    "MRM102": ("error", "unterminated string literal"),
    "MRM103": ("error", "malformed number literal"),
    # ------------------------------------------------------------------
    # .mrm parser
    # ------------------------------------------------------------------
    "MRM201": ("error", "unexpected end of model source"),
    "MRM202": ("error", "a specific token was expected but something else was found"),
    "MRM203": ("error", "chained comparison (comparisons are non-associative; parenthesize)"),
    "MRM204": ("error", "expected a declaration (const/var/label/reward/formula or '[')"),
    "MRM205": ("error", "label and formula names must be non-empty"),
    "MRM206": ("error", "unexpected token in an expression"),
    "MRM207": ("error", "empty model source"),
    "MRM208": ("error", "expected 'state' or 'impulse' after 'reward'"),
    # ------------------------------------------------------------------
    # .mrm / MRM semantic checks and lints
    # ------------------------------------------------------------------
    "MRM301": ("warning", "state unreachable from the initial state"),
    "MRM302": ("warning", "absorbing state carries a positive state reward (accumulates forever)"),
    "MRM303": ("warning", "rate row sums to zero (absorbing state)"),
    "MRM304": ("error", "impulse reward declared for an action no command carries"),
    "MRM305": ("warning", "command can never fire (guard unsatisfiable on reachable states)"),
    "MRM306": ("warning", "label holds in no reachable state"),
    "MRM307": ("error", "semantic error while compiling the model"),
    "MRM308": ("error", "declared formula is not valid CSRL"),
}


def describe(code: str) -> str:
    """One-line description of a catalogued code."""
    try:
        return CATALOG[code][1]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


def severity_of(code: str) -> str:
    """Default severity (``"error"``/``"warning"``) of a catalogued code."""
    try:
        return CATALOG[code][0]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


def is_known_code(code: str) -> bool:
    return code in CATALOG
