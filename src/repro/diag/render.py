"""Human- and machine-readable rendering of diagnostics.

:func:`render_diagnostic` produces the classic compiler format — a
``file:line:column: severity[CODE]: message`` header followed by the
offending source line and a caret run under the span::

    model.mrm:3:14: error[MRM203]: comparisons are non-associative; parenthesize
      [go] a < b < c -> 1 : x' = 1;
                 ^

:func:`diagnostics_payload` builds the ``repro.diagnostics/1`` JSON
document emitted by ``mrmc-impulse lint --format json``, and
:func:`validate_diagnostics_json` checks a parsed payload against that
schema (the round-trip contract the CLI tests pin down).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.diag.codes import is_known_code
from repro.diag.core import Diagnostic

__all__ = [
    "render_diagnostic",
    "render_diagnostics",
    "DIAGNOSTICS_SCHEMA",
    "diagnostics_payload",
    "validate_diagnostics_json",
]

#: Schema identifier of the lint JSON output.
DIAGNOSTICS_SCHEMA = "repro.diagnostics/1"


def _source_line(source: str, line: int) -> Optional[str]:
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return None


def render_diagnostic(
    diagnostic: Diagnostic,
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> str:
    """Render one diagnostic, with a caret excerpt when ``source`` is given."""
    span = diagnostic.span
    location = ""
    if filename:
        location = f"{filename}:"
    if span is not None:
        location += f"{span.line}:{span.column}:"
    if location:
        location += " "
    parts = [f"{location}{diagnostic.severity}[{diagnostic.code}]: {diagnostic.message}"]
    if source is not None and span is not None:
        excerpt = _source_line(source, span.line)
        if excerpt is not None:
            width = span.length
            if span.line == span.end_line:
                width = min(width, max(1, len(excerpt) - span.column + 2))
            parts.append(f"  {excerpt}")
            parts.append("  " + " " * (span.column - 1) + "^" * max(1, width))
    if diagnostic.suggestion:
        parts.append(f"  = help: did you mean {diagnostic.suggestion!r}?")
    return "\n".join(parts)


def render_diagnostics(
    diagnostics: Iterable[Diagnostic],
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> str:
    """Render a batch, one blank line between entries."""
    return "\n".join(
        render_diagnostic(d, source=source, filename=filename) for d in diagnostics
    )


# ----------------------------------------------------------------------
# JSON document (the `mrmc-impulse lint --format json` contract)
# ----------------------------------------------------------------------
def diagnostics_payload(
    per_file: Sequence[Tuple[str, Sequence[Diagnostic]]],
) -> Dict[str, Any]:
    """The ``repro.diagnostics/1`` document for a batch lint run."""
    files: List[Dict[str, Any]] = []
    total_errors = 0
    total_warnings = 0
    for path, diagnostics in per_file:
        errors = sum(1 for d in diagnostics if d.is_error)
        warnings = len(list(diagnostics)) - errors
        total_errors += errors
        total_warnings += warnings
        files.append(
            {
                "path": path,
                "errors": errors,
                "warnings": warnings,
                "diagnostics": [d.to_dict() for d in diagnostics],
            }
        )
    return {
        "schema": DIAGNOSTICS_SCHEMA,
        "files": files,
        "summary": {
            "files": len(files),
            "errors": total_errors,
            "warnings": total_warnings,
        },
    }


def validate_diagnostics_json(payload: Dict[str, Any]) -> List[Diagnostic]:
    """Validate a parsed ``repro.diagnostics/1`` document.

    Returns the flat list of :class:`Diagnostic` records on success;
    raises :class:`ValueError` naming the first violation otherwise.
    Used by the CLI tests to prove the JSON output round-trips through
    the documented schema.
    """
    if not isinstance(payload, dict):
        raise ValueError("diagnostics payload must be a JSON object")
    if payload.get("schema") != DIAGNOSTICS_SCHEMA:
        raise ValueError(
            f"unknown schema {payload.get('schema')!r}; expected {DIAGNOSTICS_SCHEMA!r}"
        )
    files = payload.get("files")
    summary = payload.get("summary")
    if not isinstance(files, list):
        raise ValueError("'files' must be a list")
    if not isinstance(summary, dict):
        raise ValueError("'summary' must be an object")
    collected: List[Diagnostic] = []
    errors = 0
    warnings = 0
    for entry in files:
        if not isinstance(entry, dict) or "path" not in entry:
            raise ValueError("each file entry needs a 'path'")
        diagnostics = entry.get("diagnostics")
        if not isinstance(diagnostics, list):
            raise ValueError(f"{entry['path']}: 'diagnostics' must be a list")
        file_errors = 0
        file_warnings = 0
        for item in diagnostics:
            if not isinstance(item, dict):
                raise ValueError(f"{entry['path']}: diagnostic items must be objects")
            for key in ("code", "severity", "message"):
                if not isinstance(item.get(key), str):
                    raise ValueError(
                        f"{entry['path']}: diagnostic missing string field {key!r}"
                    )
            if item["severity"] not in ("error", "warning"):
                raise ValueError(
                    f"{entry['path']}: bad severity {item['severity']!r}"
                )
            if not is_known_code(item["code"]):
                raise ValueError(
                    f"{entry['path']}: unknown diagnostic code {item['code']!r}"
                )
            for key in ("line", "column", "end_line", "end_column"):
                value = item.get(key)
                if value is not None and (not isinstance(value, int) or value < 1):
                    raise ValueError(
                        f"{entry['path']}: field {key!r} must be a positive "
                        f"integer or null, got {value!r}"
                    )
            if item["severity"] == "error":
                file_errors += 1
            else:
                file_warnings += 1
            collected.append(Diagnostic.from_dict(item))
        if entry.get("errors") != file_errors or entry.get("warnings") != file_warnings:
            raise ValueError(
                f"{entry['path']}: per-file error/warning counts disagree with "
                "the diagnostics list"
            )
        errors += file_errors
        warnings += file_warnings
    if summary.get("errors") != errors or summary.get("warnings") != warnings:
        raise ValueError("summary error/warning counts disagree with the files")
    if summary.get("files") != len(files):
        raise ValueError("summary file count disagrees with the files list")
    return collected
