"""Discrete-time Markov chain substrate."""

from repro.dtmc.chain import DTMC

__all__ = ["DTMC"]
