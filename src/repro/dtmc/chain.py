"""Discrete-time Markov chains (Section 2.3 of the paper).

A DTMC is specified by a row-stochastic one-step probability matrix ``P``
over a finite state space.  This substrate supports the two analyses the
paper develops (transient ``p(n) = p(0) P^n`` and steady-state
``v = v P``) plus absorption probabilities, which the model checker uses
for unbounded until (eq. 3.8) over embedded/uniformized chains.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError, NumericalError
from repro.graphs.scc import bottom_strongly_connected_components
from repro.numerics.linsolve import solve_linear_system

__all__ = ["DTMC"]

_ROW_SUM_TOLERANCE = 1e-9


class DTMC:
    """A finite discrete-time Markov chain.

    Parameters
    ----------
    probabilities:
        Square row-stochastic matrix (dense array-like or scipy sparse);
        each row must sum to 1 within a small tolerance.
    state_names:
        Optional human-readable names, one per state.

    Examples
    --------
    The three-state chain of Figure 2.1:

    >>> chain = DTMC([[0.5, 0.5, 0.0], [0.25, 0.0, 0.75], [0.2, 0.6, 0.2]])
    >>> chain.transient([1.0, 0.0, 0.0], 3).round(4).tolist()
    [0.325, 0.4125, 0.2625]
    """

    def __init__(
        self,
        probabilities,
        state_names: Optional[Sequence[str]] = None,
    ) -> None:
        matrix = sp.csr_matrix(probabilities, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ModelError(f"probability matrix must be square, got {matrix.shape}")
        if matrix.nnz and not np.all(np.isfinite(matrix.data)):
            raise ModelError("transition probabilities must be finite")
        if matrix.nnz and matrix.data.min() < 0.0:
            raise ModelError("transition probabilities must be non-negative")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        bad = np.where(np.abs(row_sums - 1.0) > _ROW_SUM_TOLERANCE)[0]
        if bad.size:
            raise ModelError(
                f"rows {bad[:5].tolist()} of the probability matrix do not sum "
                f"to 1 (sums {row_sums[bad[:5]].tolist()})"
            )
        self._matrix = matrix
        self._n = matrix.shape[0]
        if state_names is not None:
            names = [str(name) for name in state_names]
            if len(names) != self._n:
                raise ModelError(
                    f"{len(names)} state names given for {self._n} states"
                )
            self._names = names
        else:
            self._names = [str(i) for i in range(self._n)]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return self._n

    @property
    def matrix(self) -> sp.csr_matrix:
        """The one-step probability matrix ``P`` (CSR, do not mutate)."""
        return self._matrix

    @property
    def state_names(self) -> List[str]:
        """State names (copied)."""
        return list(self._names)

    def probability(self, source: int, target: int) -> float:
        """One-step probability ``P[source, target]``."""
        return float(self._matrix[source, target])

    def successors(self, state: int) -> List[int]:
        """States reachable in one step with positive probability."""
        start, stop = self._matrix.indptr[state], self._matrix.indptr[state + 1]
        return [
            int(self._matrix.indices[pos])
            for pos in range(start, stop)
            if self._matrix.data[pos] > 0.0
        ]

    def is_absorbing(self, state: int) -> bool:
        """Whether the state only loops onto itself."""
        return self.successors(state) in ([], [state])

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def _check_distribution(self, initial: Iterable[float]) -> np.ndarray:
        vector = np.asarray(list(initial), dtype=float).ravel()
        if vector.shape[0] != self._n:
            raise ModelError(
                f"initial distribution has length {vector.shape[0]}, "
                f"expected {self._n}"
            )
        if vector.min() < -_ROW_SUM_TOLERANCE:
            raise ModelError("initial distribution has negative entries")
        if abs(vector.sum() - 1.0) > 1e-6:
            raise ModelError(
                f"initial distribution sums to {vector.sum()!r}, expected 1"
            )
        return vector

    def transient(self, initial: Iterable[float], steps: int) -> np.ndarray:
        """State occupation probabilities ``p(n) = p(0) P^n``."""
        if steps < 0:
            raise ModelError("number of steps must be non-negative")
        distribution = self._check_distribution(initial)
        for _ in range(steps):
            distribution = self._matrix.T.dot(distribution)
        return distribution

    def steady_state(
        self,
        initial: Optional[Iterable[float]] = None,
        tolerance: float = 1e-12,
    ) -> np.ndarray:
        """Long-run distribution ``v`` with ``v = v P`` and ``sum v = 1``.

        For an irreducible (single-BSCC, whole-space) chain the initial
        distribution is irrelevant.  Otherwise the limit depends on where
        the chain starts, so ``initial`` is required: the result combines
        per-BSCC stationary distributions with the absorption
        probabilities into each BSCC.

        Note: for periodic chains this returns the Cesaro limit (the
        stationary distribution), which is the standard object for
        long-run measures.
        """
        bsccs = bottom_strongly_connected_components(self._matrix)
        if len(bsccs) == 1 and len(bsccs[0]) == self._n:
            return self._stationary_of(np.arange(self._n))
        if initial is None:
            raise NumericalError(
                "chain is not irreducible: steady state depends on the "
                "initial distribution, pass one explicitly"
            )
        start = self._check_distribution(initial)
        result = np.zeros(self._n, dtype=float)
        for bscc in bsccs:
            members = np.asarray(sorted(bscc), dtype=np.int64)
            reach = self.absorption_probabilities(members)
            weight = float(start.dot(reach))
            if weight == 0.0:
                continue
            local = self._stationary_of(members)
            result += weight * local
        return result

    def _stationary_of(self, members: np.ndarray) -> np.ndarray:
        """Stationary distribution supported on the given closed subset."""
        sub = self._matrix[members][:, members].toarray()
        k = len(members)
        if k == 1:
            result = np.zeros(self._n, dtype=float)
            result[members[0]] = 1.0
            return result
        # Solve v (P - I) = 0 with the normalization replacing one equation.
        system = (sub.T - np.eye(k))
        system[-1, :] = 1.0
        rhs = np.zeros(k, dtype=float)
        rhs[-1] = 1.0
        local = np.linalg.solve(system, rhs)
        local = np.clip(local, 0.0, None)
        local /= local.sum()
        result = np.zeros(self._n, dtype=float)
        result[members] = local
        return result

    def absorption_probabilities(
        self,
        targets: Iterable[int],
        method: str = "direct",
    ) -> np.ndarray:
        """Probability of ever reaching ``targets``, per start state.

        This is the least solution of the linear system of eq. (3.8) with
        ``Phi = tt``: ``x[s] = 1`` on targets, ``x[s] = sum P[s, s'] x[s']``
        elsewhere, and ``x[s] = 0`` for states that cannot reach the
        targets at all.
        """
        target_set = {int(t) for t in targets}
        for t in target_set:
            if not 0 <= t < self._n:
                raise ModelError(f"target state {t} out of range")
        from repro.graphs.reachability import backward_reachable

        can_reach = backward_reachable(self._matrix, target_set)
        unknown = sorted(can_reach - target_set)
        result = np.zeros(self._n, dtype=float)
        for t in target_set:
            result[t] = 1.0
        if not unknown:
            return result
        index = {state: pos for pos, state in enumerate(unknown)}
        k = len(unknown)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        rhs = np.zeros(k, dtype=float)
        matrix = self._matrix
        for state in unknown:
            row = index[state]
            rows.append(row)
            cols.append(row)
            vals.append(1.0)
            start, stop = matrix.indptr[state], matrix.indptr[state + 1]
            for pos in range(start, stop):
                successor = int(matrix.indices[pos])
                probability = float(matrix.data[pos])
                if probability == 0.0:
                    continue
                if successor in target_set:
                    rhs[row] += probability
                elif successor in index:
                    rows.append(row)
                    cols.append(index[successor])
                    vals.append(-probability)
                # successors that cannot reach the target contribute 0
        system = sp.csr_matrix((vals, (rows, cols)), shape=(k, k))
        solution = solve_linear_system(system, rhs, method=method)
        for state, row in index.items():
            result[state] = min(max(float(solution[row]), 0.0), 1.0)
        return result

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTMC(num_states={self._n})"
