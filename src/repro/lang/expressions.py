"""Expression AST and evaluator for the modeling language.

Expressions are arithmetic (`+ - * /`, unary minus), comparisons
(`= != < <= > >=`) and boolean connectives (`& | !`) over numeric
literals, named constants and state variables.  Evaluation happens
against an *environment* (a mapping from names to numbers); booleans
are represented as Python ``bool``, numbers as ``float`` (with integer
values kept exact where possible).

The AST is deliberately tiny — evaluation is the only operation the
compiler needs, plus free-variable collection for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Union

from repro.exceptions import FormulaError

__all__ = [
    "Expression",
    "Number",
    "Boolean",
    "Name",
    "Unary",
    "Binary",
    "evaluate",
    "evaluate_number",
    "evaluate_boolean",
    "free_names",
]

Value = Union[float, bool]


@dataclass(frozen=True)
class Number:
    value: float


@dataclass(frozen=True)
class Boolean:
    value: bool


@dataclass(frozen=True)
class Name:
    name: str


@dataclass(frozen=True)
class Unary:
    operator: str  # '-' or '!'
    operand: "Expression"


@dataclass(frozen=True)
class Binary:
    operator: str  # + - * / = != < <= > >= & |
    left: "Expression"
    right: "Expression"


Expression = Union[Number, Boolean, Name, Unary, Binary]

_ARITHMETIC = {"+", "-", "*", "/"}
_COMPARISON = {"=", "!=", "<", "<=", ">", ">="}
_BOOLEAN = {"&", "|"}


def evaluate(expression: Expression, environment: Mapping[str, float]) -> Value:
    """Evaluate against the environment; raises on type confusion."""
    if isinstance(expression, Number):
        return expression.value
    if isinstance(expression, Boolean):
        return expression.value
    if isinstance(expression, Name):
        try:
            return environment[expression.name]
        except KeyError:
            raise FormulaError(f"undefined name {expression.name!r}") from None
    if isinstance(expression, Unary):
        value = evaluate(expression.operand, environment)
        if expression.operator == "-":
            return -_as_number(value, "unary minus")
        if expression.operator == "!":
            return not _as_boolean(value, "negation")
        raise FormulaError(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, Binary):
        operator = expression.operator
        if operator in _BOOLEAN:
            left = _as_boolean(evaluate(expression.left, environment), operator)
            # no short-circuit needed, expressions are pure
            right = _as_boolean(evaluate(expression.right, environment), operator)
            return (left and right) if operator == "&" else (left or right)
        left_value = evaluate(expression.left, environment)
        right_value = evaluate(expression.right, environment)
        if operator in _ARITHMETIC:
            left_number = _as_number(left_value, operator)
            right_number = _as_number(right_value, operator)
            if operator == "+":
                return left_number + right_number
            if operator == "-":
                return left_number - right_number
            if operator == "*":
                return left_number * right_number
            if right_number == 0:
                raise FormulaError("division by zero in model expression")
            return left_number / right_number
        if operator in _COMPARISON:
            left_number = _as_number(left_value, operator)
            right_number = _as_number(right_value, operator)
            if operator == "=":
                return left_number == right_number
            if operator == "!=":
                return left_number != right_number
            if operator == "<":
                return left_number < right_number
            if operator == "<=":
                return left_number <= right_number
            if operator == ">":
                return left_number > right_number
            return left_number >= right_number
        raise FormulaError(f"unknown operator {operator!r}")
    raise FormulaError(f"unknown expression node {expression!r}")


def _as_number(value: Value, context: str) -> float:
    if isinstance(value, bool):
        raise FormulaError(f"{context} expects a number, got a boolean")
    return float(value)


def _as_boolean(value: Value, context: str) -> bool:
    if not isinstance(value, bool):
        raise FormulaError(f"{context} expects a boolean, got {value!r}")
    return value


def evaluate_number(expression: Expression, environment: Mapping[str, float]) -> float:
    """Evaluate, requiring a numeric result."""
    return _as_number(evaluate(expression, environment), "expression")


def evaluate_boolean(expression: Expression, environment: Mapping[str, float]) -> bool:
    """Evaluate, requiring a boolean result."""
    return _as_boolean(evaluate(expression, environment), "expression")


def free_names(expression: Expression) -> FrozenSet[str]:
    """All names referenced anywhere in the expression."""
    if isinstance(expression, Name):
        return frozenset({expression.name})
    if isinstance(expression, Unary):
        return free_names(expression.operand)
    if isinstance(expression, Binary):
        return free_names(expression.left) | free_names(expression.right)
    return frozenset()
