"""A guarded-command modeling language for MRMs.

Hand-writing rate matrices stops scaling at a dozen states; the paper's
own case studies (TMR systems with parametric module counts) are most
naturally described by *guarded commands* over integer state variables,
in the tradition of PRISM's reactive-modules dialect.  This package
provides a small such language that compiles to :class:`repro.mrm.MRM`:

.. code-block:: text

    // tmr.mrm — the paper's triple-modular redundant system
    const N = 3;
    const lambda = 0.0004;

    var modules : [0 .. N] init N;
    var voter   : [0 .. 1] init 1;

    [fail]        modules > 0 & voter = 1
                  -> lambda : modules' = modules - 1;
    [repair]      modules < N & voter = 1
                  -> 0.05 : modules' = modules + 1;
    [voter_fail]  voter = 1 -> 0.0001 : voter' = 0;
    [voter_fix]   voter = 0 -> 0.06 : voter' = 1 & modules' = N;

    label "Sup"    = modules >= 2 & voter = 1;
    label "failed" = modules < 2 | voter = 0;
    label "allUp"  = modules = N & voter = 1;

    reward state  voter = 1 : 7 + 2 * (N - modules);
    reward state  voter = 0 : 15;
    reward impulse [fail]       : 4;
    reward impulse [voter_fail] : 8;
    reward impulse [voter_fix]  : 12;

Compile with :func:`compile_model` (text) or :func:`load_model` (file).
The reachable state space is explored breadth-first from the initial
valuation; labels and reward expressions are evaluated per state.
"""

from repro.lang.compiler import CompiledModel, compile_model, load_model

__all__ = ["compile_model", "load_model", "CompiledModel"]
