"""Compiler: guarded-command source -> reachable-state MRM.

Pipeline:

1. parse (``repro.lang.parser``);
2. resolve constants (in declaration order; constants may reference
   earlier constants) and variable ranges/initial values;
3. explore the reachable state space breadth-first from the initial
   valuation, firing every command whose guard holds; rates and update
   expressions are evaluated in the source state;
4. assemble the MRM: parallel transitions between the same pair of
   valuations merge by *summing rates*; impulse rewards attach per
   action (a merged transition whose contributing actions declare
   different impulse values is rejected — the MRM formalism stores one
   impulse per state pair);
5. evaluate labels and state-reward declarations per reachable state
   (multiple matching ``reward state`` declarations sum).

The compiled artifact keeps the mapping between valuations and state
indices so formulas/queries can be phrased over variable values.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError, ParseError
from repro.lang.expressions import (
    evaluate_boolean,
    evaluate_number,
    free_names,
)
from repro.lang.parser import ModelAst, parse_model_source
from repro.mrm.model import MRM

__all__ = ["CompiledModel", "compile_model", "load_model"]

_MAX_STATES_DEFAULT = 200_000

Valuation = Tuple[int, ...]


@dataclass(frozen=True)
class CompiledModel:
    """The result of compiling a model description.

    Attributes
    ----------
    mrm:
        The compiled Markov reward model.
    variable_names:
        Variable order used in the valuations.
    states:
        Valuation of each state index.
    constants:
        The resolved constant environment.
    initial_state:
        Index of the initial valuation.
    formulas:
        Named CSRL properties declared in the source (``formula "n" =
        "..."``), syntax-checked at compile time.
    """

    mrm: MRM
    variable_names: Tuple[str, ...]
    states: Tuple[Valuation, ...]
    constants: Mapping[str, float]
    initial_state: int
    formulas: Mapping[str, str] = None  # type: ignore[assignment]

    def state_index(self, **assignment: int) -> int:
        """Index of the state with the given variable values.

        Unmentioned variables must be uniquely determined — i.e. all
        variables must be given.
        """
        missing = set(self.variable_names) - set(assignment)
        if missing:
            raise ModelError(f"missing variable values: {sorted(missing)}")
        unknown = set(assignment) - set(self.variable_names)
        if unknown:
            raise ModelError(f"unknown variables: {sorted(unknown)}")
        valuation = tuple(int(assignment[name]) for name in self.variable_names)
        try:
            return self.states.index(valuation)
        except ValueError:
            raise ModelError(
                f"valuation {dict(assignment)} is not reachable"
            ) from None

    def valuation_of(self, state: int) -> Dict[str, int]:
        """The variable assignment of a state index."""
        return dict(zip(self.variable_names, self.states[state]))


def _resolve_constants(ast: ModelAst) -> Dict[str, float]:
    environment: Dict[str, float] = {}
    for declaration in ast.constants:
        if declaration.name in environment:
            raise ModelError(f"duplicate constant {declaration.name!r}")
        unknown = free_names(declaration.value) - set(environment)
        if unknown:
            raise ModelError(
                f"constant {declaration.name!r} references undefined names "
                f"{sorted(unknown)} (constants resolve in declaration order)"
            )
        environment[declaration.name] = evaluate_number(
            declaration.value, environment
        )
    return environment


def _as_int(value: float, what: str) -> int:
    if abs(value - round(value)) > 1e-9:
        raise ModelError(f"{what} must be an integer, got {value!r}")
    return int(round(value))


def compile_model(
    source: str,
    constants: Optional[Mapping[str, float]] = None,
    max_states: int = _MAX_STATES_DEFAULT,
) -> CompiledModel:
    """Compile model source text to an MRM.

    Parameters
    ----------
    source:
        The model description.
    constants:
        Optional overrides for ``const`` declarations (must exist in the
        source) — the idiom for parametric studies
        (``compile_model(src, {"N": 11})``).
    max_states:
        Safety bound on the reachable state-space size.
    """
    ast = parse_model_source(source)
    if not ast.variables:
        raise ModelError("a model needs at least one 'var' declaration")
    if not ast.commands:
        raise ModelError("a model needs at least one command")

    environment = _resolve_constants(ast)
    if constants:
        unknown = set(constants) - set(environment)
        if unknown:
            raise ModelError(
                f"constant overrides {sorted(unknown)} are not declared in "
                "the model"
            )
        environment.update({k: float(v) for k, v in constants.items()})

    variable_names: List[str] = []
    bounds: Dict[str, Tuple[int, int]] = {}
    initial: Dict[str, int] = {}
    for declaration in ast.variables:
        name = declaration.name
        if name in bounds or name in environment:
            raise ModelError(f"duplicate name {name!r}")
        lower = _as_int(
            evaluate_number(declaration.lower, environment), f"lower bound of {name}"
        )
        upper = _as_int(
            evaluate_number(declaration.upper, environment), f"upper bound of {name}"
        )
        if upper < lower:
            raise ModelError(f"variable {name!r} has an empty range")
        start = _as_int(
            evaluate_number(declaration.initial, environment),
            f"initial value of {name}",
        )
        if not lower <= start <= upper:
            raise ModelError(
                f"initial value {start} of {name!r} outside [{lower}, {upper}]"
            )
        variable_names.append(name)
        bounds[name] = (lower, upper)
        initial[name] = start

    # Validate that expressions reference only constants and variables.
    known = set(environment) | set(variable_names)
    for command in ast.commands:
        for expression in (command.guard, command.rate):
            unknown = free_names(expression) - known
            if unknown:
                raise ModelError(
                    f"command references undefined names {sorted(unknown)}"
                )
        for target, expression in command.updates:
            if target not in bounds:
                raise ModelError(f"update assigns unknown variable {target!r}")
            unknown = free_names(expression) - known
            if unknown:
                raise ModelError(
                    f"update references undefined names {sorted(unknown)}"
                )
    impulse_by_action: Dict[str, object] = {}
    for declaration in ast.impulse_rewards:
        if declaration.action in impulse_by_action:
            raise ModelError(
                f"duplicate impulse reward for action {declaration.action!r}"
            )
        unknown = free_names(declaration.value) - known
        if unknown:
            raise ModelError(
                f"impulse reward references undefined names {sorted(unknown)}"
            )
        impulse_by_action[declaration.action] = declaration.value
    declared_actions = {c.action for c in ast.commands if c.action}
    for action in impulse_by_action:
        if action not in declared_actions:
            raise ModelError(
                f"impulse reward for unknown action {action!r}"
            )

    # Breadth-first reachability.
    initial_valuation: Valuation = tuple(initial[name] for name in variable_names)
    index: Dict[Valuation, int] = {initial_valuation: 0}
    order: List[Valuation] = [initial_valuation]
    # (source, target) -> [rate, impulse or None, action or None]
    edges: Dict[Tuple[int, int], List[object]] = {}
    queue = deque([initial_valuation])
    while queue:
        valuation = queue.popleft()
        source = index[valuation]
        state_env = dict(environment)
        state_env.update(zip(variable_names, valuation))
        for command in ast.commands:
            if not evaluate_boolean(command.guard, state_env):
                continue
            rate = evaluate_number(command.rate, state_env)
            if rate < 0:
                raise ModelError(
                    f"command [{command.action or ''}] produced a negative "
                    f"rate {rate!r} in state {dict(zip(variable_names, valuation))}"
                )
            if rate == 0.0:
                continue
            updated = dict(zip(variable_names, valuation))
            for target_name, expression in command.updates:
                value = _as_int(
                    evaluate_number(expression, state_env),
                    f"update of {target_name}",
                )
                lower, upper = bounds[target_name]
                if not lower <= value <= upper:
                    raise ModelError(
                        f"update drives {target_name!r} to {value}, outside "
                        f"[{lower}, {upper}], in state "
                        f"{dict(zip(variable_names, valuation))}"
                    )
                updated[target_name] = value
            successor_valuation: Valuation = tuple(
                updated[name] for name in variable_names
            )
            if successor_valuation not in index:
                if len(index) >= max_states:
                    raise ModelError(
                        f"reachable state space exceeds {max_states} states"
                    )
                index[successor_valuation] = len(order)
                order.append(successor_valuation)
                queue.append(successor_valuation)
            target = index[successor_valuation]
            impulse_value: Optional[float] = None
            if command.action and command.action in impulse_by_action:
                impulse_value = evaluate_number(
                    impulse_by_action[command.action], state_env
                )
                if impulse_value < 0:
                    raise ModelError(
                        f"impulse reward of action {command.action!r} is "
                        f"negative in state "
                        f"{dict(zip(variable_names, valuation))}"
                    )
                if source == target and impulse_value > 0:
                    raise ModelError(
                        f"action {command.action!r} yields a self-loop with "
                        "a positive impulse reward (Definition 3.1 forbids "
                        "impulse rewards on self-loops)"
                    )
            key = (source, target)
            existing = edges.get(key)
            if existing is None:
                edges[key] = [rate, impulse_value, command.action]
            else:
                existing[0] += rate
                previous = existing[1] or 0.0
                current = impulse_value or 0.0
                if previous != current:
                    # An impulse-free command merging with an
                    # impulse-carrying one is equally unrepresentable:
                    # the merged transition would need to charge the
                    # impulse only part of the time.
                    raise ModelError(
                        "two commands produce the same transition "
                        f"{key} with different impulse rewards "
                        f"({previous} vs {current}); the MRM formalism "
                        "stores one impulse per state pair"
                    )

    # Assemble the MRM.
    n = len(order)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    impulses: Dict[Tuple[int, int], float] = {}
    for (source, target), (rate, impulse_value, _action) in edges.items():
        rows.append(source)
        cols.append(target)
        vals.append(float(rate))
        if impulse_value:
            impulses[(source, target)] = float(impulse_value)
    import scipy.sparse as sp

    rate_matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    labels: Dict[int, set] = {}
    rewards = [0.0] * n
    for state, valuation in enumerate(order):
        state_env = dict(environment)
        state_env.update(zip(variable_names, valuation))
        label_set = set()
        for declaration in ast.labels:
            if evaluate_boolean(declaration.condition, state_env):
                label_set.add(declaration.name)
        if label_set:
            labels[state] = label_set
        total = 0.0
        for declaration in ast.state_rewards:
            if evaluate_boolean(declaration.condition, state_env):
                value = evaluate_number(declaration.rate, state_env)
                if value < 0:
                    raise ModelError(
                        "state reward expressions must be non-negative; got "
                        f"{value!r} in state {dict(zip(variable_names, valuation))}"
                    )
                total += value
        rewards[state] = total

    names = [
        ",".join(f"{name}={value}" for name, value in zip(variable_names, valuation))
        for valuation in order
    ]
    chain = CTMC(rate_matrix, labels=labels, state_names=names)
    mrm = MRM(chain, state_rewards=rewards, impulse_rewards=impulses)

    # Named CSRL properties: syntax-check now so errors surface at
    # compile time, not first use.
    from repro.logic.parser import parse_formula as parse_csrl

    formulas: Dict[str, str] = {}
    for declaration in ast.formulas:
        if declaration.name in formulas:
            raise ModelError(f"duplicate formula {declaration.name!r}")
        try:
            parse_csrl(declaration.text)
        except ParseError as error:
            location = f" (line {declaration.span.line})" if declaration.span else ""
            raise ModelError(
                f"formula {declaration.name!r}{location} is not valid CSRL: {error}"
            ) from error
        formulas[declaration.name] = declaration.text

    return CompiledModel(
        mrm=mrm,
        variable_names=tuple(variable_names),
        states=tuple(order),
        constants=dict(environment),
        initial_state=0,
        formulas=formulas,
    )


def load_model(
    path: str,
    constants: Optional[Mapping[str, float]] = None,
    max_states: int = _MAX_STATES_DEFAULT,
) -> CompiledModel:
    """Compile a model description from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return compile_model(handle.read(), constants=constants, max_states=max_states)
