"""Lexer for the guarded-command modeling language.

Token kinds: keywords (``const var init label reward state impulse
true false``), identifiers, numbers, strings (double-quoted label
names), and punctuation/operators.  ``//`` starts a line comment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import ParseError

__all__ = ["LangToken", "tokenize_model"]

KEYWORDS = {
    "const",
    "var",
    "init",
    "label",
    "reward",
    "state",
    "impulse",
    "formula",
    "true",
    "false",
}

# Longest first so '<=' wins over '<', '..' over '.'.
SYMBOLS = (
    "->",
    "..",
    "<=",
    ">=",
    "!=",
    "&",
    "|",
    "!",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    "[",
    "]",
    ":",
    ";",
    ",",
    "'",
)


@dataclass(frozen=True)
class LangToken:
    kind: str  # 'keyword', 'ident', 'number', 'string', or the symbol
    text: str
    line: int
    column: int

    def location(self) -> str:
        return f"line {self.line}, column {self.column}"


def tokenize_model(source: str) -> List[LangToken]:
    """Tokenize model source text; raises :class:`ParseError` on junk."""
    tokens: List[LangToken] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0:
                raise ParseError(f"unterminated string at line {line}")
            text = source[i + 1 : end]
            tokens.append(LangToken("string", text, line, column))
            column += end - i + 1
            i = end + 1
            continue
        matched = None
        for symbol in SYMBOLS:
            if source.startswith(symbol, i):
                matched = symbol
                break
        if matched is not None:
            tokens.append(LangToken(matched, matched, line, column))
            i += len(matched)
            column += len(matched)
            continue
        if ch.isdigit() or ch == ".":
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                # '..' is a range operator, not part of a number.
                if source.startswith("..", i):
                    break
                i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            try:
                float(text)
            except ValueError as error:
                raise ParseError(
                    f"bad number {text!r} at line {line}"
                ) from error
            tokens.append(LangToken("number", text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(LangToken(kind, text, line, column))
            column += i - start
            continue
        raise ParseError(
            f"unexpected character {ch!r} at line {line}, column {column}"
        )
    return tokens
