"""Lexer for the guarded-command modeling language.

Token kinds: keywords (``const var init label reward state impulse
true false``), identifiers, numbers, strings (double-quoted label
names), and punctuation/operators.  ``//`` starts a line comment.

Lexical errors carry stable codes (``MRM101``-``MRM103``) and are
emitted into a :class:`~repro.diag.DiagnosticSink`; the lexer recovers
(skipping the offending character, or the rest of the line for an
unterminated string) so one pass reports every problem.  Without an
explicit sink, :func:`tokenize_model` raises
:class:`~repro.exceptions.ParseError` summarizing the collected
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.diag.core import DiagnosticSink, Span

__all__ = ["LangToken", "tokenize_model"]

KEYWORDS = {
    "const",
    "var",
    "init",
    "label",
    "reward",
    "state",
    "impulse",
    "formula",
    "true",
    "false",
}

# Longest first so '<=' wins over '<', '..' over '.'.
SYMBOLS = (
    "->",
    "..",
    "<=",
    ">=",
    "!=",
    "&",
    "|",
    "!",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    "[",
    "]",
    ":",
    ";",
    ",",
    "'",
)


@dataclass(frozen=True)
class LangToken:
    kind: str  # 'keyword', 'ident', 'number', 'string', or the symbol
    text: str
    line: int
    column: int

    def location(self) -> str:
        return f"line {self.line}, column {self.column}"

    def span(self, length: Optional[int] = None) -> Span:
        """Source span of this token (``length`` overrides ``len(text)``)."""
        return Span.at(self.line, self.column, length or max(1, len(self.text)))


def _tokenize(source: str, sink: DiagnosticSink) -> List[LangToken]:
    tokens: List[LangToken] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            newline = source.find("\n", i + 1)
            if end < 0 or (0 <= newline < end):
                sink.error(
                    "MRM102",
                    "unterminated string literal",
                    Span.at(line, column),
                )
                # recover at the end of the line
                i = newline if newline >= 0 else n
                continue
            text = source[i + 1 : end]
            tokens.append(LangToken("string", text, line, column))
            column += end - i + 1
            i = end + 1
            continue
        matched = None
        for symbol in SYMBOLS:
            if source.startswith(symbol, i):
                matched = symbol
                break
        if matched is not None:
            tokens.append(LangToken(matched, matched, line, column))
            i += len(matched)
            column += len(matched)
            continue
        if ch.isdigit() or ch == ".":
            start = i
            while i < n and (source[i].isdigit() or source[i] == "."):
                # '..' is a range operator, not part of a number.
                if source.startswith("..", i):
                    break
                i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            try:
                float(text)
            except ValueError:
                sink.error(
                    "MRM103",
                    f"malformed number literal {text!r}",
                    Span.at(line, column, len(text)),
                )
                # substitute a harmless zero so parsing can continue
                text = "0"
            tokens.append(LangToken("number", text, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(LangToken(kind, text, line, column))
            column += i - start
            continue
        sink.error(
            "MRM101",
            f"unexpected character {ch!r}",
            Span.at(line, column),
        )
        i += 1
        column += 1
    return tokens


def tokenize_model(
    source: str, sink: Optional[DiagnosticSink] = None
) -> List[LangToken]:
    """Tokenize model source text.

    With a ``sink``, lexical errors are collected there and the lexer
    recovers; without one, a :class:`~repro.exceptions.ParseError`
    summarizing every error is raised.
    """
    if sink is not None:
        return _tokenize(source, sink)
    own = DiagnosticSink()
    tokens = _tokenize(source, own)
    own.raise_if_errors()
    return tokens
