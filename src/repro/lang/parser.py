"""Parser for the guarded-command modeling language.

Grammar (``;``-terminated declarations, order-free except that names
must be declared before use at *compile* time, not parse time)::

    model        ::= declaration*
    declaration  ::= const | variable | command | label | reward
    const        ::= 'const' ident '=' expr ';'
    variable     ::= 'var' ident ':' '[' expr '..' expr ']' 'init' expr ';'
    command      ::= '[' ident? ']' expr '->' expr ':' updates ';'
    updates      ::= update ('&' update)*
    update       ::= ident "'" '=' expr
    label        ::= 'label' string '=' expr ';'
    reward       ::= 'reward' 'state' expr ':' expr ';'
                   | 'reward' 'impulse' '[' ident ']' ':' expr ';'
    formula      ::= 'formula' string '=' string ';'

``formula`` declarations carry a CSRL property (in the quoted string,
using the checker grammar of :mod:`repro.logic.parser`) alongside the
model; they are parsed for well-formedness at compile time and exposed
on the compiled artifact.

Expression precedence, loosest first: ``|``, ``&``, comparisons
(non-associative), ``+ -``, ``* /``, unary ``- !``, atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import ParseError
from repro.lang.expressions import Binary, Boolean, Expression, Name, Number, Unary
from repro.lang.lexer import LangToken, tokenize_model

__all__ = [
    "ConstDecl",
    "VarDecl",
    "Command",
    "LabelDecl",
    "StateRewardDecl",
    "ImpulseRewardDecl",
    "FormulaDecl",
    "ModelAst",
    "parse_model_source",
]


@dataclass(frozen=True)
class ConstDecl:
    name: str
    value: Expression


@dataclass(frozen=True)
class VarDecl:
    name: str
    lower: Expression
    upper: Expression
    initial: Expression


@dataclass(frozen=True)
class Command:
    action: Optional[str]
    guard: Expression
    rate: Expression
    updates: Tuple[Tuple[str, Expression], ...]


@dataclass(frozen=True)
class LabelDecl:
    name: str
    condition: Expression


@dataclass(frozen=True)
class StateRewardDecl:
    condition: Expression
    rate: Expression


@dataclass(frozen=True)
class ImpulseRewardDecl:
    action: str
    value: Expression


@dataclass(frozen=True)
class FormulaDecl:
    name: str
    text: str


@dataclass
class ModelAst:
    constants: List[ConstDecl] = field(default_factory=list)
    variables: List[VarDecl] = field(default_factory=list)
    commands: List[Command] = field(default_factory=list)
    labels: List[LabelDecl] = field(default_factory=list)
    state_rewards: List[StateRewardDecl] = field(default_factory=list)
    impulse_rewards: List[ImpulseRewardDecl] = field(default_factory=list)
    formulas: List[FormulaDecl] = field(default_factory=list)


class _ModelParser:
    def __init__(self, tokens: List[LangToken]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[LangToken]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> LangToken:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of model source")
        self._pos += 1
        return token

    def _expect(self, kind: str, what: str) -> LangToken:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {what} but found {token.text!r} at {token.location()}"
            )
        return token

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        )

    # ------------------------------------------------------------------
    def parse(self) -> ModelAst:
        ast = ModelAst()
        while self._peek() is not None:
            token = self._peek()
            if token.kind == "keyword" and token.text == "const":
                ast.constants.append(self._const())
            elif token.kind == "keyword" and token.text == "var":
                ast.variables.append(self._variable())
            elif token.kind == "keyword" and token.text == "label":
                ast.labels.append(self._label())
            elif token.kind == "keyword" and token.text == "reward":
                self._reward(ast)
            elif token.kind == "keyword" and token.text == "formula":
                ast.formulas.append(self._formula())
            elif token.kind == "[":
                ast.commands.append(self._command())
            else:
                raise ParseError(
                    f"unexpected {token.text!r} at {token.location()} "
                    "(expected const/var/label/reward or a '[' command)"
                )
        return ast

    def _const(self) -> ConstDecl:
        self._next()  # const
        name = self._expect("ident", "a constant name").text
        self._expect("=", "'='")
        value = self._expression()
        self._expect(";", "';'")
        return ConstDecl(name, value)

    def _variable(self) -> VarDecl:
        self._next()  # var
        name = self._expect("ident", "a variable name").text
        self._expect(":", "':'")
        self._expect("[", "'['")
        lower = self._expression()
        self._expect("..", "'..'")
        upper = self._expression()
        self._expect("]", "']'")
        init_kw = self._next()
        if init_kw.kind != "keyword" or init_kw.text != "init":
            raise ParseError(
                f"expected 'init' at {init_kw.location()}, found {init_kw.text!r}"
            )
        initial = self._expression()
        self._expect(";", "';'")
        return VarDecl(name, lower, upper, initial)

    def _command(self) -> Command:
        self._expect("[", "'['")
        action: Optional[str] = None
        if self._at("ident"):
            action = self._next().text
        self._expect("]", "']'")
        guard = self._expression()
        self._expect("->", "'->'")
        rate = self._expression()
        self._expect(":", "':'")
        updates = [self._update()]
        while self._at("&"):
            self._next()
            updates.append(self._update())
        self._expect(";", "';'")
        return Command(action, guard, rate, tuple(updates))

    def _update(self) -> Tuple[str, Expression]:
        name = self._expect("ident", "a variable name").text
        self._expect("'", "a prime (') after the variable")
        self._expect("=", "'='")
        # The update's right-hand side stops below '&' so that
        # ``x' = a & y' = b`` splits into two updates; parenthesize to
        # assign a boolean-valued expression.
        return name, self._comparison()

    def _label(self) -> LabelDecl:
        self._next()  # label
        name = self._expect("string", "a quoted label name").text
        if not name:
            raise ParseError("label names must be non-empty")
        self._expect("=", "'='")
        condition = self._expression()
        self._expect(";", "';'")
        return LabelDecl(name, condition)

    def _formula(self) -> FormulaDecl:
        self._next()  # formula
        name = self._expect("string", "a quoted formula name").text
        if not name:
            raise ParseError("formula names must be non-empty")
        self._expect("=", "'='")
        text = self._expect("string", "a quoted CSRL formula").text
        self._expect(";", "';'")
        return FormulaDecl(name, text)

    def _reward(self, ast: ModelAst) -> None:
        self._next()  # reward
        kind = self._next()
        if kind.kind == "keyword" and kind.text == "state":
            condition = self._expression()
            self._expect(":", "':'")
            rate = self._expression()
            self._expect(";", "';'")
            ast.state_rewards.append(StateRewardDecl(condition, rate))
            return
        if kind.kind == "keyword" and kind.text == "impulse":
            self._expect("[", "'['")
            action = self._expect("ident", "an action name").text
            self._expect("]", "']'")
            self._expect(":", "':'")
            value = self._expression()
            self._expect(";", "';'")
            ast.impulse_rewards.append(ImpulseRewardDecl(action, value))
            return
        raise ParseError(
            f"expected 'state' or 'impulse' after 'reward' at {kind.location()}"
        )

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._or()

    def _or(self) -> Expression:
        left = self._and()
        while self._at("|"):
            self._next()
            left = Binary("|", left, self._and())
        return left

    def _and(self) -> Expression:
        left = self._comparison()
        while self._at("&"):
            self._next()
            left = Binary("&", left, self._comparison())
        return left

    def _comparison(self) -> Expression:
        left = self._additive()
        for operator in ("<=", ">=", "!=", "<", ">", "="):
            if self._at(operator):
                self._next()
                return Binary(operator, left, self._additive())
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self._at("+") or self._at("-"):
            operator = self._next().kind
            left = Binary(operator, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while self._at("*") or self._at("/"):
            operator = self._next().kind
            left = Binary(operator, left, self._unary())
        return left

    def _unary(self) -> Expression:
        if self._at("-"):
            self._next()
            return Unary("-", self._unary())
        if self._at("!"):
            self._next()
            return Unary("!", self._unary())
        return self._atom()

    def _atom(self) -> Expression:
        token = self._next()
        if token.kind == "number":
            return Number(float(token.text))
        if token.kind == "keyword" and token.text == "true":
            return Boolean(True)
        if token.kind == "keyword" and token.text == "false":
            return Boolean(False)
        if token.kind == "ident":
            return Name(token.text)
        if token.kind == "(":
            inner = self._expression()
            self._expect(")", "')'")
            return inner
        raise ParseError(
            f"unexpected {token.text!r} in expression at {token.location()}"
        )


def parse_model_source(source: str) -> ModelAst:
    """Parse model source text into a :class:`ModelAst`."""
    tokens = tokenize_model(source)
    if not tokens:
        raise ParseError("empty model source")
    return _ModelParser(tokens).parse()
