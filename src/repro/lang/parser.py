"""Parser for the guarded-command modeling language.

Grammar (``;``-terminated declarations, order-free except that names
must be declared before use at *compile* time, not parse time)::

    model        ::= declaration*
    declaration  ::= const | variable | command | label | reward
    const        ::= 'const' ident '=' expr ';'
    variable     ::= 'var' ident ':' '[' expr '..' expr ']' 'init' expr ';'
    command      ::= '[' ident? ']' expr '->' expr ':' updates ';'
    updates      ::= update ('&' update)*
    update       ::= ident "'" '=' expr
    label        ::= 'label' string '=' expr ';'
    reward       ::= 'reward' 'state' expr ':' expr ';'
                   | 'reward' 'impulse' '[' ident ']' ':' expr ';'
    formula      ::= 'formula' string '=' string ';'

``formula`` declarations carry a CSRL property (in the quoted string,
using the checker grammar of :mod:`repro.logic.parser`) alongside the
model; they are parsed for well-formedness at compile time and exposed
on the compiled artifact.

Expression precedence, loosest first: ``|``, ``&``, comparisons
(non-associative: ``a < b < c`` is rejected with ``MRM203``), ``+ -``,
``* /``, unary ``- !``, atoms.

Errors are emitted into a :class:`~repro.diag.DiagnosticSink` with
stable ``MRM2xx`` codes; the parser panics to the next ``;`` or
declaration keyword and keeps going, so a single run reports every
error in the file.  :func:`parse_model_source` raises a summarizing
:class:`~repro.exceptions.ParseError`; :func:`parse_model_collect`
returns the (partial) AST and leaves the diagnostics in the sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.diag.core import DiagnosticSink, Span, did_you_mean
from repro.lang.expressions import Binary, Boolean, Expression, Name, Number, Unary
from repro.lang.lexer import LangToken, tokenize_model

__all__ = [
    "ConstDecl",
    "VarDecl",
    "Command",
    "LabelDecl",
    "StateRewardDecl",
    "ImpulseRewardDecl",
    "FormulaDecl",
    "ModelAst",
    "parse_model_source",
    "parse_model_collect",
]

_DECL_KEYWORDS = ("const", "var", "label", "reward", "formula")
_COMPARISON_OPS = ("<=", ">=", "!=", "<", ">", "=")


@dataclass(frozen=True)
class ConstDecl:
    name: str
    value: Expression
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VarDecl:
    name: str
    lower: Expression
    upper: Expression
    initial: Expression
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Command:
    action: Optional[str]
    guard: Expression
    rate: Expression
    updates: Tuple[Tuple[str, Expression], ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class LabelDecl:
    name: str
    condition: Expression
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class StateRewardDecl:
    condition: Expression
    rate: Expression
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ImpulseRewardDecl:
    action: str
    value: Expression
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class FormulaDecl:
    name: str
    text: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass
class ModelAst:
    constants: List[ConstDecl] = field(default_factory=list)
    variables: List[VarDecl] = field(default_factory=list)
    commands: List[Command] = field(default_factory=list)
    labels: List[LabelDecl] = field(default_factory=list)
    state_rewards: List[StateRewardDecl] = field(default_factory=list)
    impulse_rewards: List[ImpulseRewardDecl] = field(default_factory=list)
    formulas: List[FormulaDecl] = field(default_factory=list)


class _Recover(Exception):
    """Internal: unwind to the declaration loop after an emitted error."""


class _ModelParser:
    def __init__(self, tokens: List[LangToken], sink: DiagnosticSink) -> None:
        self._tokens = tokens
        self._sink = sink
        self._pos = 0

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[LangToken]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _error(
        self,
        code: str,
        message: str,
        token: Optional[LangToken] = None,
        suggestion: Optional[str] = None,
    ) -> None:
        span = token.span() if token is not None else self._eof_span()
        self._sink.error(code, message, span, suggestion)

    def _eof_span(self) -> Span:
        if self._tokens:
            last = self._tokens[-1]
            return Span.at(last.line, last.column + max(1, len(last.text)))
        return Span.at(1, 1)

    def _next(self) -> LangToken:
        token = self._peek()
        if token is None:
            self._error("MRM201", "unexpected end of model source")
            raise _Recover
        self._pos += 1
        return token

    def _expect(self, kind: str, what: str) -> LangToken:
        token = self._next()
        if token.kind != kind:
            self._error(
                "MRM202", f"expected {what} but found {token.text!r}", token
            )
            raise _Recover
        return token

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        )

    def _synchronize(self) -> None:
        """Panic-mode recovery: skip past the next ``;`` or stop at a
        token that can start a declaration, whichever comes first."""
        while True:
            token = self._peek()
            if token is None:
                return
            if token.kind == ";":
                self._pos += 1
                return
            if token.kind == "[":
                return
            if token.kind == "keyword" and token.text in _DECL_KEYWORDS:
                return
            self._pos += 1

    # ------------------------------------------------------------------
    def parse(self) -> ModelAst:
        ast = ModelAst()
        while self._peek() is not None:
            token = self._peek()
            try:
                if token.kind == "keyword" and token.text == "const":
                    ast.constants.append(self._const())
                elif token.kind == "keyword" and token.text == "var":
                    ast.variables.append(self._variable())
                elif token.kind == "keyword" and token.text == "label":
                    ast.labels.append(self._label())
                elif token.kind == "keyword" and token.text == "reward":
                    self._reward(ast)
                elif token.kind == "keyword" and token.text == "formula":
                    ast.formulas.append(self._formula())
                elif token.kind == "[":
                    ast.commands.append(self._command())
                else:
                    self._pos += 1
                    self._error(
                        "MRM204",
                        f"unexpected {token.text!r} "
                        "(expected const/var/label/reward/formula or a '[' command)",
                        token,
                        suggestion=did_you_mean(token.text, _DECL_KEYWORDS),
                    )
                    raise _Recover
            except _Recover:
                self._synchronize()
        return ast

    def _const(self) -> ConstDecl:
        keyword = self._next()  # const
        name_token = self._expect("ident", "a constant name")
        self._expect("=", "'='")
        value = self._expression()
        self._expect(";", "';'")
        return ConstDecl(name_token.text, value, span=keyword.span())

    def _variable(self) -> VarDecl:
        keyword = self._next()  # var
        name_token = self._expect("ident", "a variable name")
        self._expect(":", "':'")
        self._expect("[", "'['")
        lower = self._expression()
        self._expect("..", "'..'")
        upper = self._expression()
        self._expect("]", "']'")
        init_kw = self._next()
        if init_kw.kind != "keyword" or init_kw.text != "init":
            self._error(
                "MRM202",
                f"expected 'init' but found {init_kw.text!r}",
                init_kw,
                suggestion=did_you_mean(init_kw.text, ["init"]),
            )
            raise _Recover
        initial = self._expression()
        self._expect(";", "';'")
        return VarDecl(name_token.text, lower, upper, initial, span=keyword.span())

    def _command(self) -> Command:
        open_token = self._expect("[", "'['")
        action: Optional[str] = None
        if self._at("ident"):
            action = self._next().text
        close = self._expect("]", "']'")
        close_column = close.column + 1
        guard = self._expression()
        self._expect("->", "'->'")
        rate = self._expression()
        self._expect(":", "':'")
        updates = [self._update()]
        while self._at("&"):
            self._next()
            updates.append(self._update())
        self._expect(";", "';'")
        span = Span.at(
            open_token.line, open_token.column, close_column - open_token.column
        )
        return Command(action, guard, rate, tuple(updates), span=span)

    def _update(self) -> Tuple[str, Expression]:
        name = self._expect("ident", "a variable name").text
        self._expect("'", "a prime (') after the variable")
        self._expect("=", "'='")
        # The update's right-hand side stops below '&' so that
        # ``x' = a & y' = b`` splits into two updates; parenthesize to
        # assign a boolean-valued expression.
        return name, self._comparison()

    def _label(self) -> LabelDecl:
        self._next()  # label
        name_token = self._expect("string", "a quoted label name")
        if not name_token.text:
            self._error("MRM205", "label names must be non-empty", name_token)
        self._expect("=", "'='")
        condition = self._expression()
        self._expect(";", "';'")
        return LabelDecl(
            name_token.text,
            condition,
            span=name_token.span(len(name_token.text) + 2),
        )

    def _formula(self) -> FormulaDecl:
        self._next()  # formula
        name_token = self._expect("string", "a quoted formula name")
        if not name_token.text:
            self._error("MRM205", "formula names must be non-empty", name_token)
        self._expect("=", "'='")
        text_token = self._expect("string", "a quoted CSRL formula")
        self._expect(";", "';'")
        return FormulaDecl(
            name_token.text,
            text_token.text,
            span=text_token.span(len(text_token.text) + 2),
        )

    def _reward(self, ast: ModelAst) -> None:
        self._next()  # reward
        kind = self._next()
        if kind.kind == "keyword" and kind.text == "state":
            condition = self._expression()
            self._expect(":", "':'")
            rate = self._expression()
            self._expect(";", "';'")
            ast.state_rewards.append(
                StateRewardDecl(condition, rate, span=kind.span())
            )
            return
        if kind.kind == "keyword" and kind.text == "impulse":
            self._expect("[", "'['")
            action_token = self._expect("ident", "an action name")
            self._expect("]", "']'")
            self._expect(":", "':'")
            value = self._expression()
            self._expect(";", "';'")
            ast.impulse_rewards.append(
                ImpulseRewardDecl(
                    action_token.text, value, span=action_token.span()
                )
            )
            return
        self._error(
            "MRM208",
            f"expected 'state' or 'impulse' after 'reward', found {kind.text!r}",
            kind,
            suggestion=did_you_mean(kind.text, ["state", "impulse"]),
        )
        raise _Recover

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._or()

    def _or(self) -> Expression:
        left = self._and()
        while self._at("|"):
            self._next()
            left = Binary("|", left, self._and())
        return left

    def _and(self) -> Expression:
        left = self._comparison()
        while self._at("&"):
            self._next()
            left = Binary("&", left, self._comparison())
        return left

    def _comparison_operator(self) -> Optional[str]:
        for operator in _COMPARISON_OPS:
            if self._at(operator):
                return operator
        return None

    def _comparison(self) -> Expression:
        left = self._additive()
        operator = self._comparison_operator()
        if operator is None:
            return left
        self._next()
        left = Binary(operator, left, self._additive())
        # a < b < c does NOT mean (a < b) & (b < c); refuse the chain
        # instead of silently comparing a boolean to a number.
        while True:
            chained = self._comparison_operator()
            if chained is None:
                return left
            op_token = self._next()
            self._error(
                "MRM203",
                f"chained comparison: {chained!r} after a comparison is "
                "ambiguous; comparisons are non-associative — parenthesize",
                op_token,
            )
            left = Binary(chained, left, self._additive())

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self._at("+") or self._at("-"):
            operator = self._next().kind
            left = Binary(operator, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while self._at("*") or self._at("/"):
            operator = self._next().kind
            left = Binary(operator, left, self._unary())
        return left

    def _unary(self) -> Expression:
        if self._at("-"):
            self._next()
            return Unary("-", self._unary())
        if self._at("!"):
            self._next()
            return Unary("!", self._unary())
        return self._atom()

    def _atom(self) -> Expression:
        token = self._next()
        if token.kind == "number":
            return Number(float(token.text))
        if token.kind == "keyword" and token.text == "true":
            return Boolean(True)
        if token.kind == "keyword" and token.text == "false":
            return Boolean(False)
        if token.kind == "ident":
            return Name(token.text)
        if token.kind == "(":
            inner = self._expression()
            self._expect(")", "')'")
            return inner
        self._error(
            "MRM206", f"unexpected {token.text!r} in expression", token
        )
        raise _Recover


def parse_model_collect(
    source: str, sink: DiagnosticSink
) -> Optional[ModelAst]:
    """Parse model source, collecting diagnostics instead of raising.

    Returns the (possibly partial) AST; declarations the parser had to
    abandon at a synchronization point are simply absent.  Check
    ``sink.has_errors`` before trusting the result.
    """
    tokens = tokenize_model(source, sink)
    if not tokens:
        if not sink.has_errors:
            sink.error("MRM207", "empty model source")
        return None
    return _ModelParser(tokens, sink).parse()


def parse_model_source(source: str) -> ModelAst:
    """Parse model source text into a :class:`ModelAst`.

    Raises :class:`~repro.exceptions.ParseError` carrying every
    diagnostic of the run (multi-error recovery) if the source is
    malformed.
    """
    sink = DiagnosticSink()
    ast = parse_model_collect(source, sink)
    sink.raise_if_errors()
    assert ast is not None
    return ast
