"""Abstract syntax of CSRL (Definition 3.5 of the paper).

Two sorts of formulas are distinguished:

* **state formulas**: ``tt``, atomic propositions, ``!``, ``||`` (with
  ``&&`` and ``=>`` as the paper's derived operators, kept first-class
  for convenience), the steady-state operator ``S_{op p}(Phi)`` and the
  transient probability operator ``P_{op p}(phi)``;
* **path formulas**: ``X^I_J Phi`` and ``Phi U^I_J Psi`` where ``I`` is a
  time interval and ``J`` a reward interval.

Nodes are immutable dataclasses with structural equality, a canonical
CSRL rendering matching the tool grammar of the paper's appendix
(``str(formula)`` re-parses to an equal formula), and small conveniences
(``&``, ``|``, ``~`` operator overloads) for building formulas in Python.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator

from repro.exceptions import FormulaError
from repro.numerics.intervals import Interval

__all__ = [
    "Comparison",
    "Formula",
    "StateFormula",
    "PathFormula",
    "TrueFormula",
    "FalseFormula",
    "Atomic",
    "Not",
    "And",
    "Or",
    "Implies",
    "Steady",
    "Prob",
    "Next",
    "Until",
    "Eventually",
    "tt",
    "ff",
    "ap",
]


class Comparison(enum.Enum):
    """Binary comparison operators for probability bounds."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def holds(self, value: float, bound: float) -> bool:
        """Whether ``value <op> bound`` holds."""
        if self is Comparison.LT:
            return value < bound
        if self is Comparison.LE:
            return value <= bound
        if self is Comparison.GT:
            return value > bound
        return value >= bound

    @staticmethod
    def from_symbol(symbol: str) -> "Comparison":
        for member in Comparison:
            if member.value == symbol:
                return member
        raise FormulaError(f"unknown comparison operator {symbol!r}")

    def __str__(self) -> str:
        return self.value


class Formula:
    """Common base for state and path formulas."""

    def subformulas(self) -> Iterator["Formula"]:
        """Post-order traversal of the formula tree, self last.

        This is the evaluation order of the model checker (Section 4.1):
        the value of a formula depends only on earlier-yielded ones.
        """
        raise NotImplementedError

    def atomic_propositions(self) -> FrozenSet[str]:
        """All atomic propositions mentioned anywhere in the formula."""
        return frozenset(
            node.name for node in self.subformulas() if isinstance(node, Atomic)
        )


class StateFormula(Formula):
    """A formula whose validity is judged in a state."""

    # convenience operators for formula construction in Python code
    def __and__(self, other: "StateFormula") -> "And":
        return And(self, other)

    def __or__(self, other: "StateFormula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "StateFormula") -> "Implies":
        return Implies(self, other)


class PathFormula(Formula):
    """A formula whose validity is judged over a path."""


def _check_state(value, role: str) -> None:
    if not isinstance(value, StateFormula):
        raise FormulaError(f"{role} must be a state formula, got {type(value).__name__}")


def _check_probability(value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        # Same defect the parser reports as CSRL010; AST-level
        # construction shares the code so both are greppable.
        raise FormulaError(
            f"probability bound must lie in [0, 1], got {value} (CSRL010)"
        )
    return value


def _check_interval(value, role: str) -> Interval:
    if not isinstance(value, Interval):
        raise FormulaError(f"{role} must be an Interval, got {type(value).__name__}")
    if value.is_empty:
        raise FormulaError(f"{role} must be non-empty")
    return value


@dataclass(frozen=True)
class TrueFormula(StateFormula):
    """The formula ``tt``, valid in every state."""

    def subformulas(self) -> Iterator[Formula]:
        yield self

    def __str__(self) -> str:
        return "TT"


@dataclass(frozen=True)
class FalseFormula(StateFormula):
    """The formula ``ff`` (syntactic sugar for ``!tt``)."""

    def subformulas(self) -> Iterator[Formula]:
        yield self

    def __str__(self) -> str:
        return "FF"


@dataclass(frozen=True)
class Atomic(StateFormula):
    """An atomic proposition ``a in AP``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise FormulaError(f"invalid atomic proposition name {self.name!r}")

    def subformulas(self) -> Iterator[Formula]:
        yield self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(StateFormula):
    """Negation ``!Phi``."""

    child: StateFormula

    def __post_init__(self) -> None:
        _check_state(self.child, "negation operand")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.child.subformulas()
        yield self

    def __str__(self) -> str:
        return f"!{_atom_or_parens(self.child)}"


@dataclass(frozen=True)
class Or(StateFormula):
    """Disjunction ``Phi || Psi``."""

    left: StateFormula
    right: StateFormula

    def __post_init__(self) -> None:
        _check_state(self.left, "disjunction operand")
        _check_state(self.right, "disjunction operand")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class And(StateFormula):
    """Conjunction, the paper's derived ``Phi && Psi = !(!Phi || !Psi)``."""

    left: StateFormula
    right: StateFormula

    def __post_init__(self) -> None:
        _check_state(self.left, "conjunction operand")
        _check_state(self.right, "conjunction operand")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class Implies(StateFormula):
    """Implication, the paper's derived ``Phi => Psi = !Phi || Psi``."""

    left: StateFormula
    right: StateFormula

    def __post_init__(self) -> None:
        _check_state(self.left, "implication operand")
        _check_state(self.right, "implication operand")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


@dataclass(frozen=True)
class Steady(StateFormula):
    """The steady-state operator ``S_{op p}(Phi)``.

    Asserts that the long-run probability of residing in ``Phi``-states
    meets the bound.
    """

    comparison: Comparison
    bound: float
    child: StateFormula

    def __post_init__(self) -> None:
        object.__setattr__(self, "bound", _check_probability(self.bound))
        if not isinstance(self.comparison, Comparison):
            raise FormulaError("comparison must be a Comparison member")
        _check_state(self.child, "steady-state operand")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.child.subformulas()
        yield self

    def __str__(self) -> str:
        return f"S({self.comparison}{self.bound:.12g}) {_atom_or_parens(self.child)}"


@dataclass(frozen=True)
class Prob(StateFormula):
    """The transient probability operator ``P_{op p}(phi)``.

    Asserts that the probability measure of paths satisfying the path
    formula ``phi`` meets the bound.
    """

    comparison: Comparison
    bound: float
    path: PathFormula

    def __post_init__(self) -> None:
        object.__setattr__(self, "bound", _check_probability(self.bound))
        if not isinstance(self.comparison, Comparison):
            raise FormulaError("comparison must be a Comparison member")
        if not isinstance(self.path, PathFormula):
            raise FormulaError(
                f"probability operand must be a path formula, got "
                f"{type(self.path).__name__}"
            )

    def subformulas(self) -> Iterator[Formula]:
        yield from self.path.subformulas()
        yield self

    def __str__(self) -> str:
        return f"P({self.comparison}{self.bound:.12g}) [{self.path}]"


@dataclass(frozen=True)
class Next(PathFormula):
    """The next operator ``X^I_J Phi``.

    The first transition leads to a ``Phi``-state at a time in ``I`` with
    accumulated reward in ``J``.
    """

    child: StateFormula
    time_bound: Interval = field(default_factory=Interval.unbounded)
    reward_bound: Interval = field(default_factory=Interval.unbounded)

    def __post_init__(self) -> None:
        _check_state(self.child, "next operand")
        _check_interval(self.time_bound, "time bound")
        _check_interval(self.reward_bound, "reward bound")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.child.subformulas()
        yield self

    @property
    def is_unbounded(self) -> bool:
        """Whether both bounds are trivial (the plain CSL ``X``)."""
        return self.time_bound.is_unbounded and self.reward_bound.is_unbounded

    def __str__(self) -> str:
        bounds = ""
        if not self.is_unbounded:
            bounds = f"{self.time_bound}{self.reward_bound}"
        return f"X{bounds} {_atom_or_parens(self.child)}"


@dataclass(frozen=True)
class Until(PathFormula):
    """The until operator ``Phi U^I_J Psi``.

    ``Psi`` holds at some time in ``I`` with accumulated reward in ``J``,
    and ``Phi`` holds at every earlier instant.
    """

    left: StateFormula
    right: StateFormula
    time_bound: Interval = field(default_factory=Interval.unbounded)
    reward_bound: Interval = field(default_factory=Interval.unbounded)

    def __post_init__(self) -> None:
        _check_state(self.left, "until operand")
        _check_state(self.right, "until operand")
        _check_interval(self.time_bound, "time bound")
        _check_interval(self.reward_bound, "reward bound")

    def subformulas(self) -> Iterator[Formula]:
        yield from self.left.subformulas()
        yield from self.right.subformulas()
        yield self

    @property
    def is_unbounded(self) -> bool:
        """Whether both bounds are trivial (property class P0)."""
        return self.time_bound.is_unbounded and self.reward_bound.is_unbounded

    @property
    def is_time_bounded_only(self) -> bool:
        """Time-bounded, reward-unbounded (property class P1)."""
        return not self.time_bound.is_unbounded and self.reward_bound.is_unbounded

    def __str__(self) -> str:
        bounds = ""
        if not self.is_unbounded:
            bounds = f"{self.time_bound}{self.reward_bound}"
        return (
            f"{_atom_or_parens(self.left)} U{bounds} "
            f"{_atom_or_parens(self.right)}"
        )


def Eventually(
    child: StateFormula,
    time_bound: "Interval | None" = None,
    reward_bound: "Interval | None" = None,
) -> Until:
    """The derived ``<>^I_J Phi = tt U^I_J Phi`` (Section 3.6.1)."""
    return Until(
        TrueFormula(),
        child,
        time_bound=time_bound if time_bound is not None else Interval.unbounded(),
        reward_bound=reward_bound if reward_bound is not None else Interval.unbounded(),
    )


def _atom_or_parens(formula: StateFormula) -> str:
    """Render a subformula, adding parentheses unless it is atomic-like."""
    text = str(formula)
    if isinstance(formula, (TrueFormula, FalseFormula, Atomic)) or text.startswith("("):
        return text
    return f"({text})"


def tt() -> TrueFormula:
    """Shorthand constructor for ``tt``."""
    return TrueFormula()


def ff() -> FalseFormula:
    """Shorthand constructor for ``ff``."""
    return FalseFormula()


def ap(name: str) -> Atomic:
    """Shorthand constructor for an atomic proposition."""
    return Atomic(name)
