"""Parser for the CSRL input grammar of the paper's appendix.

The tool accepts formulas written as::

    TT | FF                      truth constants
    a                            atomic proposition (may contain digits, e.g. 3up)
    !f                           negation
    f && f | f || f | f => f     boolean connectives (&& binds tighter than ||)
    S(op p) f                    steady-state operator
    P(op p) [X[t1,t2][r1,r2] f]  probabilistic next
    P(op p) [f U[t1,t2][r1,r2] f]  probabilistic until
    ~                            infinity inside a bound, e.g. [0,~]

``op`` is one of ``<``, ``<=``, ``>``, ``>=``; bounds may be omitted
entirely (``X f``, ``f U f``) or given as a single time interval
(``f U[0,10] f``).  Parentheses group state formulas.

The grammar is LL(1) apart from the ``[ X ... ]`` / ``[ f U ... ]``
distinction inside ``P(...)``, which a single token of lookahead after
``[`` resolves (an ``X`` keyword starts a next formula).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ParseError
from repro.logic.ast import (
    And,
    Atomic,
    Comparison,
    FalseFormula,
    Implies,
    Next,
    Not,
    Or,
    Prob,
    StateFormula,
    Steady,
    TrueFormula,
    Until,
)
from repro.numerics.intervals import Interval

__all__ = ["tokenize", "parse_formula"]

_SYMBOLS = ("&&", "||", "=>", "<=", ">=", "(", ")", "[", "]", ",", "!", "~", "<", ">")
_KEYWORDS = {"TT", "FF", "U", "X", "S", "P"}


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (for error messages)."""

    kind: str  # 'number', 'ident', 'keyword', or the symbol itself
    text: str
    position: int


def _is_word_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str) -> List[Token]:
    """Split a CSRL formula string into tokens.

    Atomic propositions are maximal runs of word characters that are not
    pure numbers (so ``3up`` is an identifier while ``3`` and ``0.5`` are
    numbers).  Keywords (``TT FF U X S P``) are case-sensitive.
    """
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        matched_symbol = None
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                matched_symbol = symbol
                break
        if matched_symbol is not None:
            tokens.append(Token(matched_symbol, matched_symbol, i))
            i += len(matched_symbol)
            continue
        if _is_word_char(ch) or ch == ".":
            start = i
            while i < n and (_is_word_char(text[i]) or text[i] == "."):
                i += 1
            # allow scientific notation: 1e-5, 2.5E+3
            if (
                i < n
                and text[i] in "+-"
                and text[i - 1] in "eE"
                and _looks_numeric(text[start : i - 1])
            ):
                sign_pos = i
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
                if i == sign_pos + 1:  # no digits followed the sign
                    i = sign_pos
            word = text[start:i]
            if _looks_numeric_full(word):
                tokens.append(Token("number", word, start))
            elif word in _KEYWORDS:
                tokens.append(Token("keyword", word, start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i)
    return tokens


def _looks_numeric(word: str) -> bool:
    """Whether the word is a plain decimal mantissa (digits with one dot)."""
    if not word:
        return False
    stripped = word.replace(".", "", 1)
    return stripped.isdigit()


def _looks_numeric_full(word: str) -> bool:
    """Whether the whole word parses as a float literal."""
    if not word:
        return False
    if not (word[0].isdigit() or word[0] == "."):
        return False
    try:
        float(word)
    except ValueError:
        return False
    return True


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of formula", position=len(self._source))
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r}", position=token.position
            )
        return token

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None:
            return False
        if token.kind != kind:
            return False
        return text is None or token.text == text

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> StateFormula:
        formula = self._state_formula()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}",
                position=trailing.position,
            )
        return formula

    def _state_formula(self) -> StateFormula:
        return self._implication()

    def _implication(self) -> StateFormula:
        left = self._disjunction()
        if self._at("=>"):
            self._next()
            right = self._implication()  # right-associative
            return Implies(left, right)
        return left

    def _disjunction(self) -> StateFormula:
        left = self._conjunction()
        while self._at("||"):
            self._next()
            right = self._conjunction()
            left = Or(left, right)
        return left

    def _conjunction(self) -> StateFormula:
        left = self._unary()
        while self._at("&&"):
            self._next()
            right = self._unary()
            left = And(left, right)
        return left

    def _unary(self) -> StateFormula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of formula", position=len(self._source))
        if token.kind == "!":
            self._next()
            return Not(self._unary())
        if token.kind == "(":
            self._next()
            inner = self._state_formula()
            self._expect(")")
            return inner
        if token.kind == "keyword":
            if token.text == "TT":
                self._next()
                return TrueFormula()
            if token.text == "FF":
                self._next()
                return FalseFormula()
            if token.text == "S":
                return self._steady()
            if token.text == "P":
                return self._probability()
            raise ParseError(
                f"keyword {token.text!r} cannot start a state formula",
                position=token.position,
            )
        if token.kind == "ident":
            self._next()
            return Atomic(token.text)
        raise ParseError(
            f"unexpected token {token.text!r}", position=token.position
        )

    def _comparison_and_bound(self) -> "tuple[Comparison, float]":
        self._expect("(")
        op_token = self._next()
        if op_token.kind not in ("<", "<=", ">", ">="):
            raise ParseError(
                f"expected a comparison operator, found {op_token.text!r}",
                position=op_token.position,
            )
        comparison = Comparison.from_symbol(op_token.kind)
        number = self._expect("number")
        bound = float(number.text)
        self._expect(")")
        return comparison, bound

    def _steady(self) -> Steady:
        self._next()  # consume S
        comparison, bound = self._comparison_and_bound()
        child = self._unary()
        return Steady(comparison, bound, child)

    def _probability(self) -> Prob:
        self._next()  # consume P
        comparison, bound = self._comparison_and_bound()
        self._expect("[")
        if self._at("keyword", "X"):
            path = self._next_path()
        else:
            path = self._until_path()
        self._expect("]")
        return Prob(comparison, bound, path)

    def _next_path(self) -> Next:
        self._next()  # consume X
        time_bound, reward_bound = self._optional_bounds()
        child = self._unary()
        return Next(child, time_bound=time_bound, reward_bound=reward_bound)

    def _until_path(self) -> Until:
        left = self._state_formula()
        keyword = self._next()
        if keyword.kind != "keyword" or keyword.text != "U":
            raise ParseError(
                f"expected 'U' in until formula, found {keyword.text!r}",
                position=keyword.position,
            )
        time_bound, reward_bound = self._optional_bounds()
        right = self._state_formula()
        return Until(left, right, time_bound=time_bound, reward_bound=reward_bound)

    def _optional_bounds(self) -> "tuple[Interval, Interval]":
        time_bound = Interval.unbounded()
        reward_bound = Interval.unbounded()
        if self._at("["):
            time_bound = self._interval()
            if self._at("["):
                reward_bound = self._interval()
        return time_bound, reward_bound

    def _interval(self) -> Interval:
        self._expect("[")
        lower = self._bound_value(allow_infinity=False)
        self._expect(",")
        upper = self._bound_value(allow_infinity=True)
        close = self._expect("]")
        if upper < lower:
            raise ParseError(
                f"interval upper bound {upper:g} below lower bound {lower:g}",
                position=close.position,
            )
        return Interval(lower, upper)

    def _bound_value(self, allow_infinity: bool) -> float:
        token = self._next()
        if token.kind == "~":
            if not allow_infinity:
                raise ParseError(
                    "infinity is only allowed as an upper bound",
                    position=token.position,
                )
            return math.inf
        if token.kind != "number":
            raise ParseError(
                f"expected a number in interval bound, found {token.text!r}",
                position=token.position,
            )
        return float(token.text)


def parse_formula(text: str) -> StateFormula:
    """Parse a CSRL state formula from the appendix grammar.

    Examples
    --------
    >>> parse_formula("P(>=0.3) [a U[0,3][0,23] b]")
    ... # doctest: +ELLIPSIS
    Prob(...)
    >>> str(parse_formula("S(>0.5) (busy || idle)"))
    'S(>0.5) (busy || idle)'
    """
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty formula")
    return _Parser(tokens, text).parse()
