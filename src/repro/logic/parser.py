"""Parser for the CSRL input grammar of the paper's appendix.

The tool accepts formulas written as::

    TT | FF                      truth constants
    a                            atomic proposition (may contain digits, e.g. 3up)
    !f                           negation
    f && f | f || f | f => f     boolean connectives (&& binds tighter than ||)
    S(op p) f                    steady-state operator
    P(op p) [X[t1,t2][r1,r2] f]  probabilistic next
    P(op p) [f U[t1,t2][r1,r2] f]  probabilistic until
    ~                            infinity inside a bound, e.g. [0,~]

``op`` is one of ``<``, ``<=``, ``>``, ``>=``; bounds may be omitted
entirely (``X f``, ``f U f``) or given as a single time interval
(``f U[0,10] f``).  Parentheses group state formulas.

The grammar is LL(1) apart from the ``[ X ... ]`` / ``[ f U ... ]``
distinction inside ``P(...)``, which a single token of lookahead after
``[`` resolves (an ``X`` keyword starts a next formula).

Errors are reported through the shared diagnostics engine
(:mod:`repro.diag`): the parser emits coded diagnostics
(``CSRL001``-``CSRL014``, plus ``CSRL02x`` lint warnings) into a
:class:`~repro.diag.DiagnosticSink` and *recovers* — synchronizing at
``]``/``)``/connectives — so one run reports every error in the input.
:func:`parse_formula` raises a single
:class:`~repro.exceptions.ParseError` that summarizes the first error
and carries the complete list as ``error.diagnostics``; pass an
explicit ``sink`` to collect diagnostics (including warnings) without
raising.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.diag.core import DiagnosticSink, Span, did_you_mean
from repro.exceptions import ParseError
from repro.logic.ast import (
    And,
    Atomic,
    Comparison,
    FalseFormula,
    Implies,
    Next,
    Not,
    Or,
    Prob,
    StateFormula,
    Steady,
    TrueFormula,
    Until,
)
from repro.numerics.intervals import Interval

__all__ = ["tokenize", "parse_formula"]

_SYMBOLS = ("&&", "||", "=>", "<=", ">=", "(", ")", "[", "]", ",", "!", "~", "<", ">", "-")
_KEYWORDS = {"TT", "FF", "U", "X", "S", "P"}
_COMPARISON_KINDS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (for error messages)."""

    kind: str  # 'number', 'ident', 'keyword', or the symbol itself
    text: str
    position: int


def _is_word_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def _tokenize(text: str, sink: DiagnosticSink) -> List[Token]:
    """Tokenize, emitting diagnostics into ``sink`` and recovering."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        matched_symbol = None
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                matched_symbol = symbol
                break
        if matched_symbol is not None:
            tokens.append(Token(matched_symbol, matched_symbol, i))
            i += len(matched_symbol)
            continue
        if _is_word_char(ch) or ch == ".":
            start = i
            while i < n and (_is_word_char(text[i]) or text[i] == "."):
                i += 1
            # allow scientific notation: 1e-5, 2.5E+3
            if (
                i < n
                and text[i] in "+-"
                and text[i - 1] in "eE"
                and _looks_numeric(text[start : i - 1])
            ):
                sign_pos = i
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
                if i == sign_pos + 1:  # no digits followed the sign
                    i = sign_pos
            word = text[start:i]
            if _looks_numeric_full(word):
                tokens.append(Token("number", word, start))
                continue
            if word in _KEYWORDS:
                tokens.append(Token("keyword", word, start))
                continue
            # Malformed numerics must not silently become atomic
            # propositions: a digit- or dot-leading word containing a
            # dot that fails to parse as a float (1.2.3, 5..2), or a
            # dangling exponent sign (1e+), is a number gone wrong.
            if (word[0].isdigit() or word[0] == ".") and "." in word:
                sink.error(
                    "CSRL002",
                    f"malformed number literal {word!r}",
                    Span.from_offsets(text, start, i),
                )
            elif (
                word[0].isdigit()
                and word[-1] in "eE"
                and i < n
                and text[i] in "+-"
                and _looks_numeric(word[:-1])
            ):
                # the rolled-back sign of a digit-less exponent: fold it
                # into one diagnostic instead of a CSRL001 cascade
                word += text[i]
                i += 1
                sink.error(
                    "CSRL002",
                    f"malformed number literal {word!r}",
                    Span.from_offsets(text, start, i),
                )
            tokens.append(Token("ident", word, start))
            continue
        sink.error(
            "CSRL001",
            f"unexpected character {ch!r}",
            Span.from_offsets(text, i, i + 1),
        )
        i += 1
    return tokens


def tokenize(text: str, sink: Optional[DiagnosticSink] = None) -> List[Token]:
    """Split a CSRL formula string into tokens.

    Atomic propositions are maximal runs of word characters that are not
    pure numbers (so ``3up`` is an identifier while ``3`` and ``0.5`` are
    numbers).  Keywords (``TT FF U X S P``) are case-sensitive.

    Without an explicit ``sink``, lexical errors raise
    :class:`~repro.exceptions.ParseError` (after scanning the whole
    input, so the exception carries every error).
    """
    if sink is not None:
        return _tokenize(text, sink)
    own = DiagnosticSink()
    tokens = _tokenize(text, own)
    own.raise_if_errors()
    return tokens


def _looks_numeric(word: str) -> bool:
    """Whether the word is a plain decimal mantissa (digits with one dot)."""
    if not word:
        return False
    stripped = word.replace(".", "", 1)
    return stripped.isdigit()


def _looks_numeric_full(word: str) -> bool:
    """Whether the whole word parses as a float literal."""
    if not word:
        return False
    if not (word[0].isdigit() or word[0] == "."):
        return False
    try:
        float(word)
    except ValueError:
        return False
    return True


class _Recover(Exception):
    """Internal: unwind to the nearest synchronization point.

    Raised after the diagnostic has already been emitted; never escapes
    :meth:`_Parser.parse`.
    """


class _Parser:
    """Recursive-descent parser with multi-error recovery.

    Hard errors emit a diagnostic and raise :class:`_Recover`; the
    nearest enclosing construct synchronizes (``P(...)`` blocks to their
    closing ``]``, bounds to ``)``, intervals to ``]``) and parsing
    continues, substituting placeholder nodes.  Soft errors (an
    out-of-range bound, a bad interval endpoint) emit and continue in
    place.  The resulting tree is only used when the sink stayed free of
    errors.
    """

    def __init__(self, tokens: List[Token], source: str, sink: DiagnosticSink) -> None:
        self._tokens = tokens
        self._source = source
        self._sink = sink
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _span(self, token: Optional[Token]) -> Span:
        if token is None:
            return Span.from_offsets(self._source, len(self._source))
        return Span.from_offsets(
            self._source, token.position, token.position + len(token.text)
        )

    def _error(
        self,
        code: str,
        message: str,
        token: Optional[Token] = None,
        suggestion: Optional[str] = None,
    ) -> None:
        self._sink.error(code, message, self._span(token), suggestion)

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            self._error("CSRL003", "unexpected end of formula")
            raise _Recover
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            self._error(
                "CSRL004", f"expected {kind!r} but found {token.text!r}", token
            )
            raise _Recover
        return token

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None:
            return False
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _sync(self, stops: Tuple[str, ...]) -> None:
        """Skip tokens until one of ``stops`` at the current bracket depth."""
        depth = 0
        while True:
            token = self._peek()
            if token is None:
                return
            if depth == 0 and token.kind in stops:
                return
            if token.kind in ("(", "["):
                depth += 1
            elif token.kind in (")", "]"):
                depth = max(0, depth - 1)
            self._pos += 1

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> Optional[StateFormula]:
        formula: Optional[StateFormula] = None
        try:
            formula = self._state_formula()
        except _Recover:
            self._sync(())  # drain; every error is already recorded
        trailing = self._peek()
        if trailing is not None:
            self._error(
                "CSRL013",
                f"unexpected trailing input {trailing.text!r}",
                trailing,
            )
        return formula

    def _state_formula(self) -> StateFormula:
        return self._implication()

    def _implication(self) -> StateFormula:
        left = self._disjunction()
        if self._at("=>"):
            self._next()
            right = self._implication()  # right-associative
            return Implies(left, right)
        return left

    def _disjunction(self) -> StateFormula:
        left = self._conjunction()
        while self._at("||"):
            self._next()
            right = self._conjunction()
            left = Or(left, right)
        return left

    def _conjunction(self) -> StateFormula:
        left = self._unary()
        while self._at("&&"):
            self._next()
            try:
                right = self._unary()
            except _Recover:
                # Recover at the next connective so errors on both sides
                # of a '&&' chain are reported in one run.
                self._sync(("&&", "||", "=>", "]", ")"))
                if self._at("&&"):
                    continue
                return left
            left = And(left, right)
        return left

    def _unary(self) -> StateFormula:
        token = self._peek()
        if token is None:
            self._error("CSRL003", "unexpected end of formula")
            raise _Recover
        if token.kind == "!":
            self._next()
            return Not(self._unary())
        if token.kind == "(":
            self._next()
            inner = self._state_formula()
            self._expect(")")
            return inner
        if token.kind == "keyword":
            if token.text == "TT":
                self._next()
                return TrueFormula()
            if token.text == "FF":
                self._next()
                return FalseFormula()
            if token.text == "S":
                return self._steady()
            if token.text == "P":
                return self._probability()
            self._error(
                "CSRL006",
                f"keyword {token.text!r} cannot start a state formula",
                token,
            )
            raise _Recover
        if token.kind == "ident":
            self._next()
            return Atomic(token.text)
        self._error("CSRL005", f"unexpected token {token.text!r}", token)
        raise _Recover

    def _comparison_and_bound(self, operator: str) -> "Tuple[Comparison, float]":
        """``(op p)`` after a ``P``/``S``; recovers to the closing ``)``."""
        try:
            self._expect("(")
            op_token = self._next()
            if op_token.kind not in _COMPARISON_KINDS:
                self._error(
                    "CSRL007",
                    f"expected a comparison operator, found {op_token.text!r}",
                    op_token,
                )
                raise _Recover
            comparison = Comparison.from_symbol(op_token.kind)
            negative = False
            if self._at("-"):
                self._next()
                negative = True
            number = self._expect("number")
            bound = float(number.text)
            if negative:
                bound = -bound
            if not 0.0 <= bound <= 1.0:
                rendered = f"-{number.text}" if negative else number.text
                self._error(
                    "CSRL010",
                    f"{operator} bound must lie in [0, 1], got {rendered}",
                    number,
                )
                bound = min(max(bound, 0.0), 1.0)
            self._expect(")")
            return comparison, bound
        except _Recover:
            self._sync((")",))
            if self._at(")"):
                self._next()
            return Comparison.GE, 0.0

    def _steady(self) -> Steady:
        self._next()  # consume S
        comparison, bound = self._comparison_and_bound("S")
        child = self._unary()
        return Steady(comparison, bound, child)

    def _probability(self) -> Prob:
        self._next()  # consume P
        comparison, bound = self._comparison_and_bound("P")
        self._expect("[")
        try:
            if self._at("keyword", "X"):
                path = self._next_path()
            else:
                path = self._until_path()
        except _Recover:
            # Report what went wrong inside this block, then continue
            # after its closing bracket so later formulas are checked.
            self._sync(("]",))
            path = Next(TrueFormula())
        self._expect("]")
        return Prob(comparison, bound, path)

    def _next_path(self) -> Next:
        self._next()  # consume X
        time_bound, reward_bound = self._optional_bounds()
        child = self._unary()
        return Next(child, time_bound=time_bound, reward_bound=reward_bound)

    def _until_path(self) -> Until:
        left = self._state_formula()
        keyword = self._next()
        if keyword.kind != "keyword" or keyword.text != "U":
            suggestion = None
            if keyword.kind == "ident":
                suggestion = did_you_mean(keyword.text, ["U"])
            self._error(
                "CSRL008",
                f"expected 'U' in until formula, found {keyword.text!r}",
                keyword,
                suggestion,
            )
            raise _Recover
        time_bound, reward_bound = self._optional_bounds()
        right = self._state_formula()
        return Until(left, right, time_bound=time_bound, reward_bound=reward_bound)

    def _optional_bounds(self) -> "Tuple[Interval, Interval]":
        time_bound = Interval.unbounded()
        reward_bound = Interval.unbounded()
        if self._at("["):
            time_bound = self._interval("time")
            if self._at("["):
                reward_bound = self._interval("reward")
        return time_bound, reward_bound

    def _interval(self, role: str) -> Interval:
        open_token = self._expect("[")
        try:
            lower = self._bound_value(allow_infinity=False)
            self._expect(",")
            upper = self._bound_value(allow_infinity=True)
            close = self._expect("]")
        except _Recover:
            self._sync(("]",))
            if self._at("]"):
                self._next()
            return Interval.unbounded()
        if upper < lower:
            self._sink.error(
                "CSRL009",
                f"interval upper bound {upper:g} below lower bound {lower:g}",
                self._span(close),
            )
            return Interval(lower, lower)
        if lower == 0.0 and math.isinf(upper):
            self._sink.warning(
                "CSRL021",
                f"{role} interval [0,~] is vacuous; omit the bound",
                Span.from_offsets(
                    self._source,
                    open_token.position,
                    close.position + len(close.text),
                ),
            )
        return Interval(lower, upper)

    def _bound_value(self, allow_infinity: bool) -> float:
        token = self._next()
        if token.kind == "~":
            if not allow_infinity:
                self._error(
                    "CSRL011",
                    "infinity is only allowed as an upper bound",
                    token,
                )
                return 0.0
            return math.inf
        if token.kind == "-":
            number = self._peek()
            text = "-" + number.text if number is not None else "-"
            self._error(
                "CSRL012",
                f"expected a non-negative number in interval bound, found {text!r}",
                token,
            )
            if number is not None and number.kind == "number":
                self._next()
            return 0.0
        if token.kind != "number":
            self._error(
                "CSRL012",
                f"expected a number in interval bound, found {token.text!r}",
                token,
            )
            raise _Recover
        return float(token.text)


def parse_formula(
    text: str, sink: Optional[DiagnosticSink] = None
) -> Optional[StateFormula]:
    """Parse a CSRL state formula from the appendix grammar.

    Without an explicit ``sink`` (the common case), syntax errors raise
    :class:`~repro.exceptions.ParseError`; thanks to multi-error
    recovery the exception's ``diagnostics`` attribute lists *every*
    error (and warning) found in the input, not just the first.  With a
    ``sink``, diagnostics are collected there instead and the function
    returns ``None`` when the input was unrecoverable (check
    ``sink.has_errors`` before using the returned tree).

    Examples
    --------
    >>> parse_formula("P(>=0.3) [a U[0,3][0,23] b]")
    ... # doctest: +ELLIPSIS
    Prob(...)
    >>> str(parse_formula("S(>0.5) (busy || idle)"))
    'S(>0.5) (busy || idle)'
    """
    own = sink if sink is not None else DiagnosticSink()
    tokens = _tokenize(text, own)
    if not tokens and not own.has_errors:
        own.error("CSRL014", "empty formula")
    formula = _Parser(tokens, text, own).parse() if tokens else None
    if sink is None:
        own.raise_if_errors()
    return formula
