"""Programmatic regeneration of the paper's experiments.

The benchmark suite prints the tables; this package exposes the same
sweeps as plain functions returning structured rows, so downstream code
(notebooks, CI dashboards, plotting scripts) can regenerate any table
or figure of Chapter 5 — at the paper's parameters or scaled-down ones.
"""

from repro.experiments.tables import (
    Table51Row,
    Table53Row,
    Table55Row,
    table_5_1,
    table_5_3,
    table_5_4,
    table_5_5,
    table_5_7,
    table_5_8,
)

__all__ = [
    "table_5_1",
    "table_5_3",
    "table_5_4",
    "table_5_5",
    "table_5_7",
    "table_5_8",
    "Table51Row",
    "Table53Row",
    "Table55Row",
]
