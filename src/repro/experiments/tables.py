"""The Chapter 5 sweeps as reusable functions.

Each ``table_5_x`` function runs the corresponding experiment and
returns a list of typed rows (probability, error bound, wall-clock
seconds, engine statistics).  Parameters default to the paper's values
but every sweep is overridable, so tests can run scaled-down variants
and users can extend the sweeps.

These functions re-measure — nothing is cached or hard-coded; the
hard-coded paper values live only in ``benchmarks/`` for side-by-side
printing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.check.until import until_probability
from repro.models import TMRParameters, build_phone_model, build_tmr
from repro.models.tmr import TMR11_REWARDS
from repro.numerics.intervals import Interval

__all__ = [
    "Table51Row",
    "Table53Row",
    "Table55Row",
    "table_5_1",
    "table_5_3",
    "table_5_4",
    "table_5_5",
    "table_5_7",
    "table_5_8",
]


@dataclass(frozen=True)
class Table51Row:
    step: float
    probability: float
    seconds: float


@dataclass(frozen=True)
class Table53Row:
    time_bound: float
    truncation_probability: float
    probability: float
    error_bound: float
    seconds: float
    paths_generated: int


@dataclass(frozen=True)
class Table55Row:
    working_modules: int
    probability: float
    error_bound: float
    seconds: float


def _phone_sets(model):
    phi = model.states_with_label("Call_Idle") | model.states_with_label("Doze")
    psi = model.states_with_label("Call_Initiated")
    return phi, psi


def table_5_1(steps: Sequence[float] = (1 / 16, 1 / 32, 1 / 64)) -> List[Table51Row]:
    """Discretization sweep on the Table 5.1 workload."""
    model = build_phone_model()
    phi, psi = _phone_sets(model)
    rows: List[Table51Row] = []
    for step in steps:
        start = time.perf_counter()
        result = until_probability(
            model, 0, phi, psi, Interval.upto(24), Interval.upto(600),
            engine="discretization", discretization_step=step,
        )
        rows.append(
            Table51Row(step=step, probability=result.probability,
                       seconds=time.perf_counter() - start)
        )
    return rows


def _tmr_failure_sweep(
    times: Iterable[float],
    truncation_schedule,
    truncation: str,
) -> List[Table53Row]:
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    rows: List[Table53Row] = []
    for t in times:
        w = truncation_schedule(t)
        start = time.perf_counter()
        result = until_probability(
            model, 3, sup, failed, Interval.upto(t), Interval.upto(3000),
            truncation_probability=w, truncation=truncation,
        )
        rows.append(
            Table53Row(
                time_bound=t,
                truncation_probability=w,
                probability=result.probability,
                error_bound=result.error_bound,
                seconds=time.perf_counter() - start,
                paths_generated=result.paths_generated,
            )
        )
    return rows


def table_5_3(
    times: Sequence[float] = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500),
    truncation_probability: float = 1e-11,
    truncation: str = "paper",
) -> List[Table53Row]:
    """Constant-w sweep (Table 5.3 / Figure 5.3)."""
    return _tmr_failure_sweep(
        times, lambda _t: truncation_probability, truncation
    )


#: The paper's per-t truncation schedule of Table 5.4.
TABLE_5_4_SCHEDULE = {
    50: 1e-6, 100: 1e-7, 150: 1e-7, 200: 1e-8, 250: 1e-8,
    300: 1e-9, 350: 1e-10, 400: 1e-11, 450: 1e-12, 500: 1e-13,
}


def table_5_4(
    times: Optional[Sequence[float]] = None,
    truncation: str = "paper",
) -> List[Table53Row]:
    """Maintained-error-bound sweep (Table 5.4)."""
    chosen = list(TABLE_5_4_SCHEDULE) if times is None else list(times)

    def schedule(t: float) -> float:
        if t in TABLE_5_4_SCHEDULE:
            return TABLE_5_4_SCHEDULE[t]
        # Interpolate: one decade per ~50 h beyond 300.
        return 10.0 ** -(6 + max(0.0, (t - 50.0) / 64.0))

    return _tmr_failure_sweep(chosen, schedule, truncation)


def _allup_sweep(
    starts: Iterable[int],
    variable_rates: bool,
    truncation_probability: float,
) -> List[Table55Row]:
    parameters = TMRParameters(variable_failure_rates=variable_rates)
    model = build_tmr(11, parameters, rewards=TMR11_REWARDS)
    allup = model.states_with_label("allUp")
    everything = set(range(model.num_states))
    rows: List[Table55Row] = []
    for n in starts:
        start = time.perf_counter()
        result = until_probability(
            model, n, everything, allup,
            Interval.upto(100), Interval.upto(2000),
            truncation_probability=truncation_probability, truncation="paper",
        )
        rows.append(
            Table55Row(
                working_modules=n,
                probability=result.probability,
                error_bound=result.error_bound,
                seconds=time.perf_counter() - start,
            )
        )
    return rows


def table_5_5(
    starts: Sequence[int] = tuple(range(11)),
    truncation_probability: float = 1e-8,
) -> List[Table55Row]:
    """Constant-rate repair sweep (Table 5.5 / Figure 5.4)."""
    return _allup_sweep(starts, variable_rates=False,
                        truncation_probability=truncation_probability)


def table_5_7(
    starts: Sequence[int] = tuple(range(11)),
    truncation_probability: float = 1e-8,
) -> List[Table55Row]:
    """Variable-rate repair sweep (Table 5.7 / Figure 5.5)."""
    return _allup_sweep(starts, variable_rates=True,
                        truncation_probability=truncation_probability)


def table_5_8(
    times: Sequence[float] = (50, 100, 150, 200),
    step: float = 0.25,
) -> List[Tuple[float, float, float]]:
    """Discretization sweep (Table 5.8): (t, probability, seconds) rows."""
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    rows: List[Tuple[float, float, float]] = []
    for t in times:
        start = time.perf_counter()
        result = until_probability(
            model, 3, sup, failed, Interval.upto(t), Interval.upto(3000),
            engine="discretization", discretization_step=step,
        )
        rows.append((t, result.probability, time.perf_counter() - start))
    return rows
