"""Execution guards: deadlines, memory budgets, cooperative checkpoints.

A :class:`Guard` bounds one model-checking run.  The engines cannot be
preempted safely mid-sweep (their invariants span whole frontier
merges), so the guard is *cooperative*: hot loops call
:meth:`Guard.checkpoint` at natural boundaries — one Poisson epoch, one
frontier merge, one discretization column, one solver sweep — and the
checkpoint raises a typed :class:`~repro.exceptions.GuardExceeded`
subclass the moment a budget is exhausted.  Because the raise happens at
a loop boundary, the degradation cascade
(:mod:`repro.guard.cascade`) can abandon exactly the failed sub-problem
and re-run it with a cheaper engine tier.

Three budgets are supported:

* ``deadline_s`` — wall-clock seconds from guard construction.  Checked
  against ``time.monotonic()`` on every checkpoint.
* ``mem_budget_bytes`` — a bound on memory use.  Engines that know their
  working set (the columnar sweep's frontier arrays, the discretization
  mass array) pass an explicit ``mem_bytes`` estimate; as a backstop the
  guard also samples the process RSS from ``/proc/self/statm`` every
  ``rss_check_interval`` checkpoints (where available), so runaway
  allocations outside the estimates still trip.
* ``error_tolerance`` — not enforced at checkpoints; the checker
  compares the finished run's error budget against it and downgrades the
  result's ``trust`` when exceeded.

Like the :mod:`repro.obs` collector, the *ambient* guard is thread-local
(:func:`get_guard` / :func:`use_guard`) so deep call chains need no
extra parameter.  Fan-out worker processes do *not* rely on fork
inheritance (the persistent pool's workers outlive any single guard):
each shard task carries the parent guard's absolute monotonic deadline
and memory budget, and the worker installs a fresh guard built from
them — ``CLOCK_MONOTONIC`` is shared across fork, so parent and workers
agree on the instant.  The default :class:`NullGuard` is a no-op whose
``enabled`` is ``False``, letting hot loops skip even the argument
construction.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.exceptions import (
    CheckError,
    DeadlineExceeded,
    MemoryBudgetExceeded,
)

__all__ = [
    "Guard",
    "NullGuard",
    "get_guard",
    "use_guard",
    "current_rss_bytes",
]

try:  # one syscall at import; 4096 is the near-universal fallback
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def current_rss_bytes() -> Optional[int]:
    """The process's resident set size, or ``None`` off procfs platforms."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return None


class NullGuard:
    """The do-nothing guard installed by default.

    ``enabled`` is ``False`` so checkpoint sites can skip estimate
    construction::

        guard = get_guard()
        ...
        if guard.enabled:
            guard.checkpoint("until.columnar", mem_bytes=frontier_bytes)
    """

    enabled = False
    deadline_s: Optional[float] = None
    mem_budget_bytes: Optional[int] = None
    error_tolerance: Optional[float] = None

    def checkpoint(
        self, phase: Optional[str] = None, mem_bytes: Optional[int] = None
    ) -> None:
        pass

    def reserve(self, mem_bytes: int, phase: Optional[str] = None) -> None:
        pass

    def elapsed(self) -> float:
        return 0.0

    def remaining_time(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded)."""
        return None

    def time_exhausted(self) -> bool:
        """Whether the deadline has already passed."""
        return False


class Guard(NullGuard):
    """Budgets for one run, enforced at cooperative checkpoints.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget in seconds, measured from construction;
        ``None`` leaves time unbounded.
    mem_budget_bytes:
        Memory budget in bytes; ``None`` leaves memory unbounded.
    error_tolerance:
        Acceptable total error budget for the final answer; consumed by
        the checker's trust qualification, not by checkpoints.
    rss_check_interval:
        Sample the process RSS every this many checkpoints when a memory
        budget is set (the backstop for allocations the engines do not
        estimate).  ``0`` disables RSS sampling.
    """

    enabled = True

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
        error_tolerance: Optional[float] = None,
        rss_check_interval: int = 64,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise CheckError("guard deadline must be positive (or None)")
        if mem_budget_bytes is not None and mem_budget_bytes < 1:
            raise CheckError("guard memory budget must be at least 1 byte (or None)")
        if error_tolerance is not None and error_tolerance < 0:
            raise CheckError("guard error tolerance must be non-negative (or None)")
        if rss_check_interval < 0:
            raise CheckError("rss_check_interval must be non-negative")
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.mem_budget_bytes = (
            None if mem_budget_bytes is None else int(mem_budget_bytes)
        )
        self.error_tolerance = (
            None if error_tolerance is None else float(error_tolerance)
        )
        self._start = time.monotonic()
        self._deadline = (
            None if self.deadline_s is None else self._start + self.deadline_s
        )
        self._rss_interval = int(rss_check_interval)
        self._checkpoints = 0
        self._reserved = 0

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the guard was constructed."""
        return time.monotonic() - self._start

    def remaining_time(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def time_exhausted(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    # ------------------------------------------------------------------
    def checkpoint(
        self, phase: Optional[str] = None, mem_bytes: Optional[int] = None
    ) -> None:
        """Raise when a budget is exhausted; otherwise return fast.

        Parameters
        ----------
        phase:
            Checkpoint label (carried by the raised exception so the
            degradation record names where the budget tripped).
        mem_bytes:
            The caller's working-set estimate, when it has one.  Passing
            it makes memory trips deterministic; without it the throttled
            RSS sample is the only memory check.
        """
        self._checkpoints += 1
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise DeadlineExceeded(
                f"deadline of {self.deadline_s:g}s exhausted"
                + (f" during {phase}" if phase else ""),
                phase=phase,
            )
        budget = self.mem_budget_bytes
        if budget is None:
            return
        if mem_bytes is not None and mem_bytes + self._reserved > budget:
            raise MemoryBudgetExceeded(
                f"working set estimate {int(mem_bytes)} bytes"
                + (
                    f" (plus {self._reserved} reserved)" if self._reserved else ""
                )
                + f" exceeds the memory budget of {budget} bytes"
                + (f" during {phase}" if phase else ""),
                phase=phase,
            )
        if self._rss_interval and self._checkpoints % self._rss_interval == 0:
            rss = current_rss_bytes()
            if rss is not None and rss > budget:
                raise MemoryBudgetExceeded(
                    f"process RSS {rss} bytes exceeds the memory budget of "
                    f"{budget} bytes" + (f" during {phase}" if phase else ""),
                    phase=phase,
                )

    def reserve(self, mem_bytes: int, phase: Optional[str] = None) -> None:
        """Account a long-lived allocation against the memory budget.

        For buffers that persist across checkpoints (the obs layer's
        series channels, pre-allocated tables): the reservation is added
        to every subsequent checkpoint's working-set estimate, and the
        reservation itself trips the budget if it alone exceeds it.
        Reservations are never released — the buffers they describe live
        for the run.
        """
        self._reserved += max(0, int(mem_bytes))
        budget = self.mem_budget_bytes
        if budget is not None and self._reserved > budget:
            raise MemoryBudgetExceeded(
                f"reserved instrumentation/table memory {self._reserved} bytes "
                f"exceeds the memory budget of {budget} bytes"
                + (f" during {phase}" if phase else ""),
                phase=phase,
            )


_NULL = NullGuard()
_state = threading.local()


def get_guard() -> NullGuard:
    """The ambient guard of the current thread (no-op by default)."""
    return getattr(_state, "current", _NULL)


@contextmanager
def use_guard(guard: Optional[NullGuard]) -> Iterator[NullGuard]:
    """Install ``guard`` as the ambient guard for the ``with`` body.

    ``None`` installs the shared no-op guard (useful to *suspend*
    guarding inside an outer guarded scope).  The previous guard is
    restored on exit, so scopes nest naturally.
    """
    installed = _NULL if guard is None else guard
    previous = getattr(_state, "current", _NULL)
    _state.current = installed
    try:
        yield installed
    finally:
        _state.current = previous
