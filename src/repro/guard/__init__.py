"""Guarded execution: deadlines, memory budgets, degradation cascade.

See :mod:`repro.guard.guard` for the cooperative :class:`Guard` and the
ambient-guard plumbing, and :mod:`repro.guard.cascade` for the engine
degradation tiers the checker steps through when a budget trips.  The
typed exceptions live in :mod:`repro.exceptions` with the rest of the
hierarchy and are re-exported here for convenience.
"""

from repro.exceptions import (
    DeadlineExceeded,
    GuardExceeded,
    MemoryBudgetExceeded,
    WorkerError,
)
from repro.guard.cascade import EngineTier, degradation_record, until_tiers
from repro.guard.guard import (
    Guard,
    NullGuard,
    current_rss_bytes,
    get_guard,
    use_guard,
)

__all__ = [
    "Guard",
    "NullGuard",
    "get_guard",
    "use_guard",
    "current_rss_bytes",
    "EngineTier",
    "until_tiers",
    "degradation_record",
    "GuardExceeded",
    "DeadlineExceeded",
    "MemoryBudgetExceeded",
    "WorkerError",
]
