"""The engine-degradation cascade: which tier to try after a failure.

When a quantitative engine trips a guard budget, runs out of memory, or
fails to converge, crashing the whole ``check()`` call wastes everything
already computed and tells the caller nothing.  Instead the checker
steps down through *engine tiers* — from the fastest, most
memory-hungry configuration toward the slowest, leanest one — re-running
only the failed sub-problem:

* within the uniformization path engine the strategies degrade
  ``merged`` (columnar, large frontiers in RAM) → ``merged-legacy``
  (dict DP, smaller constants) → ``paths`` (per-path DFS, near-constant
  memory);
* across engines, uniformization and discretization fall back to each
  other (a tier whose preconditions the model violates — e.g.
  non-integral rewards for discretization — is skipped);
* iterative linear solvers already degrade to the direct sparse solve
  inside :func:`repro.numerics.linsolve.solve_linear_system`.

This module is pure configuration logic: it computes the tier sequence
for a starting configuration and formats degradation records.  The
cascade itself is driven by :class:`repro.check.ModelChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["EngineTier", "until_tiers", "degradation_record"]

#: Path-strategy ladder within the uniformization engine, fastest (and
#: hungriest) first.
_STRATEGY_LADDER = ("merged", "merged-legacy", "paths")


@dataclass(frozen=True)
class EngineTier:
    """One until-engine configuration the cascade may run.

    Attributes
    ----------
    engine:
        ``"uniformization"`` or ``"discretization"``.
    strategy:
        The path strategy (meaningful for uniformization only; carried
        unchanged for discretization tiers).
    label:
        Human-readable tier name used in degradation records, e.g.
        ``"uniformization/merged"`` or ``"discretization"``.
    """

    engine: str
    strategy: str
    label: str


def _uniformization_tier(strategy: str) -> EngineTier:
    return EngineTier(
        engine="uniformization",
        strategy=strategy,
        label=f"uniformization/{strategy}",
    )


def until_tiers(engine: str, strategy: str) -> List[EngineTier]:
    """The degradation sequence starting from a configuration.

    The first entry is always the configured ``(engine, strategy)``
    itself; later entries are strictly cheaper-in-memory fallbacks.
    Unknown names yield a single tier (validation happens in
    :class:`repro.check.CheckOptions`, not here).
    """
    tiers: List[EngineTier] = []
    if engine == "uniformization":
        start = (
            _STRATEGY_LADDER.index(strategy)
            if strategy in _STRATEGY_LADDER
            else len(_STRATEGY_LADDER) - 1
        )
        for name in _STRATEGY_LADDER[start:]:
            tiers.append(_uniformization_tier(name))
        tiers.append(EngineTier("discretization", strategy, "discretization"))
    elif engine == "discretization":
        tiers.append(EngineTier("discretization", strategy, "discretization"))
        # The per-path DFS is the leanest uniformization configuration.
        tiers.append(_uniformization_tier("paths"))
    else:
        tiers.append(EngineTier(engine, strategy, engine))
    return tiers


def degradation_record(
    operator: str,
    from_tier: str,
    to_tier: Optional[str],
    reason: BaseException,
    kind: str = "engine",
    elapsed_s: Optional[float] = None,
) -> Dict[str, Any]:
    """A JSON-ready record of one degradation step.

    ``to_tier`` is ``None`` when there was nothing left to fall back to
    (the result for the failed sub-problem is *partial*).
    """
    record: Dict[str, Any] = {
        "kind": kind,
        "operator": operator,
        "from": from_tier,
        "to": to_tier,
        "reason": f"{type(reason).__name__}: {reason}",
    }
    phase = getattr(reason, "phase", None)
    if phase is not None:
        record["phase"] = phase
    if elapsed_s is not None:
        record["elapsed_s"] = float(elapsed_s)
    return record
