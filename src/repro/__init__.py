"""Model checking Markov reward models with impulse rewards.

A from-scratch reproduction of *Model Checking Markov Reward Models with
Impulse Rewards* (Khattri & Pulungan, University of Twente, 2004; the
thesis behind the DSN 2005 paper by Cloth, Katoen, Khattri & Pulungan).

Public surface
--------------
Models
    :class:`CTMC`, :class:`DTMC`, :class:`MRM`, :class:`TimedPath`
Logic
    :func:`parse_formula` and the AST constructors in :mod:`repro.logic`
Checking
    :class:`ModelChecker` (everything), plus the per-operator functions
    in :mod:`repro.check`
Performability
    :func:`accumulated_reward_distribution`
I/O
    :func:`load_mrm` / :func:`save_mrm` for the ``.tra/.lab/.rewr/.rewi``
    bundle; the ``mrmc-impulse`` CLI (``python -m repro.cli.main``)
Examples
    Ready-made models in :mod:`repro.models`

Quickstart
----------
>>> from repro import ModelChecker
>>> from repro.models import build_wavelan_modem
>>> checker = ModelChecker(build_wavelan_modem())
>>> result = checker.check("P(>0.5) [TT U[0,600][0,50000] busy]")
>>> sorted(result.states)  # doctest: +SKIP
[0, 1, 2, 3, 4]
"""

from repro.check.checker import CheckOptions, ModelChecker
from repro.check.results import SatResult, UntilResult
from repro.ctmc.chain import CTMC
from repro.dtmc.chain import DTMC
from repro.exceptions import (
    CheckError,
    ConvergenceError,
    FileFormatError,
    FormulaError,
    LabelingError,
    ModelError,
    NumericalError,
    ParseError,
    ReproError,
    RewardError,
)
from repro.io.bundle import load_mrm, save_mrm
from repro.lang.compiler import CompiledModel, compile_model, load_model
from repro.logic.parser import parse_formula
from repro.mrm.builder import MRMBuilder
from repro.mrm.lumping import LumpingResult, lump
from repro.mrm.model import MRM, UniformizedMRM
from repro.mrm.paths import TimedPath, UniformizedPath
from repro.numerics.intervals import Interval
from repro.performability.distribution import (
    accumulated_reward_cdf,
    accumulated_reward_distribution,
)
from repro.performability.expected import (
    expected_accumulated_reward,
    expected_reward_rate,
    long_run_reward_rate,
)
from repro.simulation.simulator import MRMSimulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # models
    "CTMC",
    "DTMC",
    "MRM",
    "MRMBuilder",
    "lump",
    "LumpingResult",
    "UniformizedMRM",
    "TimedPath",
    "UniformizedPath",
    "Interval",
    # logic
    "parse_formula",
    # checking
    "ModelChecker",
    "CheckOptions",
    "SatResult",
    "UntilResult",
    # performability
    "accumulated_reward_distribution",
    "accumulated_reward_cdf",
    "expected_accumulated_reward",
    "expected_reward_rate",
    "long_run_reward_rate",
    "MRMSimulator",
    # I/O
    "load_mrm",
    "save_mrm",
    # modeling language
    "compile_model",
    "load_model",
    "CompiledModel",
    # errors
    "ReproError",
    "ModelError",
    "LabelingError",
    "RewardError",
    "FormulaError",
    "ParseError",
    "CheckError",
    "NumericalError",
    "ConvergenceError",
    "FileFormatError",
]
