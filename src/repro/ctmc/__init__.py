"""Labeled continuous-time Markov chain substrate."""

from repro.ctmc.chain import CTMC
from repro.ctmc.transient import transient_distribution
from repro.ctmc.steady import steady_state_distribution, steady_state_matrix

__all__ = [
    "CTMC",
    "transient_distribution",
    "steady_state_distribution",
    "steady_state_matrix",
]
