"""Labeled continuous-time Markov chains (Definition 2.1 of the paper).

A CTMC is a triple ``(S, R, Label)``: a finite state space, a rate matrix
``R: S x S -> R>=0`` (self-loops allowed, per the paper's convention), and
a labeling assigning a set of atomic propositions to each state.

This class is the substrate under :class:`repro.mrm.MRM`; it owns the
structural notions (exit rates ``E(s)``, generator ``Q``, embedded DTMC,
uniformized DTMC) while transient/steady analyses live in sibling
modules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np
import scipy.sparse as sp

from repro.dtmc.chain import DTMC
from repro.exceptions import LabelingError, ModelError

__all__ = ["CTMC"]

Labeling = Mapping[int, Iterable[str]]


class CTMC:
    """A finite labeled CTMC ``(S, R, Label)``.

    Parameters
    ----------
    rates:
        Square matrix of transition rates (dense array-like or scipy
        sparse).  ``rates[s, s'] > 0`` means there is a transition from
        ``s`` to ``s'``.  Self-loop rates are allowed (Definition 2.1).
    labels:
        Mapping from state index to an iterable of atomic propositions
        valid in that state.  States may be omitted (empty label set).
    state_names:
        Optional human-readable names, one per state.
    atomic_propositions:
        Optional explicit universe ``AP``; when given, every used label
        must belong to it.  When omitted, ``AP`` is the set of used
        labels.

    Examples
    --------
    >>> wavelan_rates = [[0.0, 0.1], [0.05, 0.0]]
    >>> chain = CTMC(wavelan_rates, labels={0: {"off"}, 1: {"sleep"}})
    >>> chain.exit_rate(1)
    0.05
    """

    def __init__(
        self,
        rates,
        labels: Optional[Labeling] = None,
        state_names: Optional[Sequence[str]] = None,
        atomic_propositions: Optional[Iterable[str]] = None,
    ) -> None:
        matrix = sp.csr_matrix(rates, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ModelError(f"rate matrix must be square, got {matrix.shape}")
        if matrix.nnz and not np.all(np.isfinite(matrix.data)):
            raise ModelError("transition rates must be finite")
        if matrix.nnz and matrix.data.min() < 0.0:
            raise ModelError("transition rates must be non-negative")
        matrix.eliminate_zeros()
        self._rates = matrix
        self._n = matrix.shape[0]
        self._exit_rates = np.asarray(matrix.sum(axis=1)).ravel()

        if state_names is not None:
            names = [str(name) for name in state_names]
            if len(names) != self._n:
                raise ModelError(f"{len(names)} state names given for {self._n} states")
            self._names = names
        else:
            self._names = [str(i) for i in range(self._n)]

        label_map: Dict[int, FrozenSet[str]] = {}
        used: Set[str] = set()
        if labels:
            for state, props in labels.items():
                state = int(state)
                if not 0 <= state < self._n:
                    raise LabelingError(
                        f"label for state {state} out of range for {self._n} states"
                    )
                prop_set = frozenset(str(p) for p in props)
                for prop in prop_set:
                    if not prop or any(ch.isspace() for ch in prop):
                        raise LabelingError(
                            f"invalid atomic proposition {prop!r} on state {state}"
                        )
                label_map[state] = prop_set
                used |= prop_set
        if atomic_propositions is not None:
            universe = {str(p) for p in atomic_propositions}
            unknown = used - universe
            if unknown:
                raise LabelingError(
                    f"labels {sorted(unknown)} are not declared atomic propositions"
                )
        else:
            universe = used
        self._labels = label_map
        self._ap = frozenset(universe)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states ``|S|``."""
        return self._n

    @property
    def rates(self) -> sp.csr_matrix:
        """The rate matrix ``R`` (CSR, do not mutate)."""
        return self._rates

    @property
    def state_names(self) -> List[str]:
        """State names (copied)."""
        return list(self._names)

    @property
    def atomic_propositions(self) -> FrozenSet[str]:
        """The universe ``AP`` of atomic propositions."""
        return self._ap

    def rate(self, source: int, target: int) -> float:
        """Transition rate ``R[source, target]``."""
        return float(self._rates[source, target])

    def exit_rate(self, state: int) -> float:
        """Total outgoing rate ``E(s) = sum_s' R[s, s']``."""
        return float(self._exit_rates[state])

    @property
    def exit_rates(self) -> np.ndarray:
        """Vector of ``E(s)`` for all states (copied)."""
        return self._exit_rates.copy()

    def labels_of(self, state: int) -> FrozenSet[str]:
        """``Label(state)``."""
        if not 0 <= state < self._n:
            raise LabelingError(f"state {state} out of range")
        return self._labels.get(state, frozenset())

    def states_with_label(self, proposition: str) -> Set[int]:
        """All ``p``-states: ``{s | p in Label(s)}``."""
        return {
            state
            for state, props in self._labels.items()
            if proposition in props
        }

    def labeling(self) -> Dict[int, FrozenSet[str]]:
        """The full labeling function (copied)."""
        return dict(self._labels)

    def successors(self, state: int) -> List[int]:
        """States with a direct transition from ``state``."""
        start, stop = self._rates.indptr[state], self._rates.indptr[state + 1]
        return [int(self._rates.indices[pos]) for pos in range(start, stop)]

    def is_absorbing(self, state: int) -> bool:
        """Whether ``R[state, s'] = 0`` for all ``s'`` (Definition 3.2)."""
        return self.exit_rate(state) == 0.0

    def transition_probability(self, source: int, target: int) -> float:
        """Embedded jump probability ``P(s, s') = R[s, s'] / E(s)``."""
        exit_rate = self.exit_rate(source)
        if exit_rate == 0.0:
            return 1.0 if source == target else 0.0
        return self.rate(source, target) / exit_rate

    # ------------------------------------------------------------------
    # derived processes
    # ------------------------------------------------------------------
    def generator(self) -> sp.csr_matrix:
        """Infinitesimal generator ``Q = R - diag(E)``."""
        return (self._rates - sp.diags(self._exit_rates)).tocsr()

    def embedded_dtmc(self) -> DTMC:
        """The jump chain: ``P(s, s') = R[s, s'] / E(s)``; absorbing
        states get a self-loop of probability 1."""
        matrix = sp.lil_matrix((self._n, self._n), dtype=float)
        csr = self._rates
        for state in range(self._n):
            exit_rate = self._exit_rates[state]
            if exit_rate == 0.0:
                matrix[state, state] = 1.0
                continue
            for pos in range(csr.indptr[state], csr.indptr[state + 1]):
                matrix[state, csr.indices[pos]] = csr.data[pos] / exit_rate
        return DTMC(matrix.tocsr(), state_names=self._names)

    def default_uniformization_rate(self) -> float:
        """The smallest admissible ``Lambda = max_s E(s)`` (Section 2.4.1).

        For a chain with no transitions at all, 1.0 is returned so the
        uniformized DTMC is well defined (identity).
        """
        maximum = float(self._exit_rates.max()) if self._n else 0.0
        return maximum if maximum > 0.0 else 1.0

    def uniformized_dtmc(self, rate: Optional[float] = None) -> DTMC:
        """The uniformized chain ``P = I + Q / Lambda`` (Section 2.4.1).

        Parameters
        ----------
        rate:
            Uniformization rate ``Lambda``; must satisfy
            ``Lambda >= max_s E(s)``.  Defaults to that maximum.
        """
        lam = self.default_uniformization_rate() if rate is None else float(rate)
        if lam <= 0.0:
            raise ModelError("uniformization rate must be positive")
        max_exit = float(self._exit_rates.max()) if self._n else 0.0
        if lam + 1e-12 < max_exit:
            raise ModelError(
                f"uniformization rate {lam} is below the maximal exit rate "
                f"{max_exit}"
            )
        probabilities = (self._rates / lam + sp.diags(1.0 - self._exit_rates / lam)).tocsr()
        return DTMC(probabilities, state_names=self._names)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CTMC(num_states={self._n}, transitions={self._rates.nnz}, "
            f"ap={sorted(self._ap)})"
        )
