"""Steady-state analysis of CTMCs (Sections 2.4.2, 3.7 of the paper).

For a strongly connected CTMC the steady-state distribution ``pi`` solves
``pi Q = 0`` with ``sum pi = 1`` (eq. 2.3).  For a general chain the limit
depends on the initial state: the chain is decomposed into bottom
strongly connected components (BSCCs), each BSCC gets its conditional
stationary distribution, and the contributions are weighted with the
probability of reaching the BSCC (eq. 3.2).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError
from repro.graphs.scc import bottom_strongly_connected_components
from repro.obs import get_collector

__all__ = [
    "bscc_steady_structure",
    "steady_state_distribution",
    "steady_state_matrix",
]


def _bscc_stationary(chain: CTMC, members: np.ndarray) -> np.ndarray:
    """Stationary distribution ``pi^B`` of one BSCC, embedded in ``|S|``."""
    n = chain.num_states
    result = np.zeros(n, dtype=float)
    if len(members) == 1:
        result[members[0]] = 1.0
        return result
    generator = chain.generator()
    sub = generator[members][:, members].toarray()
    k = len(members)
    # pi Q = 0 with one equation replaced by the normalization sum pi = 1.
    system = sub.T.copy()
    system[-1, :] = 1.0
    rhs = np.zeros(k, dtype=float)
    rhs[-1] = 1.0
    local = np.linalg.solve(system, rhs)
    obs = get_collector()
    if obs.enabled:
        residual = float(np.abs(system.dot(local) - rhs).max())
        obs.event(
            "linsolve",
            method="dense-direct",
            iterations=0,
            residual=residual,
            converged=True,
            size=k,
        )
    local = np.clip(local, 0.0, None)
    total = local.sum()
    if total <= 0.0:
        raise ModelError("BSCC stationary distribution degenerated")
    local /= total
    result[members] = local
    return result


def bscc_steady_structure(
    chain: CTMC,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-BSCC steady-state data: ``(members, reach, stationary)``.

    For every bottom strongly connected component ``B`` of the chain this
    returns the sorted member states, the reachability probabilities
    ``P(s, eventually B)`` for every start state ``s`` (length ``n``),
    and the conditional stationary distribution ``pi^B`` restricted to
    the members (length ``|B|``).  These are exactly the factors of
    eq. (3.2) — computing them once lets callers evaluate
    ``pi(s, Sat(Phi))`` for any ``Phi`` in ``O(n * #BSCC)`` without ever
    materializing the dense ``n x n`` matrix of
    :func:`steady_state_matrix`.
    """
    embedded = chain.embedded_dtmc()
    structure: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for bscc in bottom_strongly_connected_components(chain.rates):
        members = np.asarray(sorted(bscc), dtype=np.int64)
        reach = embedded.absorption_probabilities(members)
        stationary = _bscc_stationary(chain, members)[members]
        structure.append((members, reach, stationary))
    return structure


def steady_state_matrix(chain: CTMC) -> np.ndarray:
    """Matrix ``pi(s, s')`` of steady-state probabilities for all starts.

    Row ``s`` is the limiting distribution when starting in state ``s``
    (eq. 3.2): the per-BSCC stationary distributions weighted with the
    reachability probabilities ``P(s, eventually B)``.  Prefer
    :func:`bscc_steady_structure` when the full dense matrix is not
    needed.
    """
    n = chain.num_states
    result = np.zeros((n, n), dtype=float)
    for members, reach, stationary in bscc_steady_structure(chain):
        embedded_stationary = np.zeros(n, dtype=float)
        embedded_stationary[members] = stationary
        result += np.outer(reach, embedded_stationary)
    return result


def steady_state_distribution(
    chain: CTMC,
    initial: Optional[Iterable[float]] = None,
) -> np.ndarray:
    """Limiting distribution ``pi`` for a given initial distribution.

    When the chain is strongly connected, the initial distribution is
    irrelevant and may be omitted.  Otherwise it is required.
    """
    n = chain.num_states
    bsccs = bottom_strongly_connected_components(chain.rates)
    if len(bsccs) == 1 and len(bsccs[0]) == n:
        return _bscc_stationary(chain, np.arange(n, dtype=np.int64))
    if initial is None:
        raise ModelError(
            "CTMC is not strongly connected: the steady-state distribution "
            "depends on the initial distribution, pass one explicitly"
        )
    start = np.asarray(list(initial), dtype=float).ravel()
    if start.shape[0] != n:
        raise ModelError(
            f"initial distribution has length {start.shape[0]}, expected {n}"
        )
    if abs(start.sum() - 1.0) > 1e-6:
        raise ModelError("initial distribution must sum to 1")
    return start.dot(steady_state_matrix(chain))
