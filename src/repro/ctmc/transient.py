"""Transient analysis of CTMCs by uniformization (eq. 2.2 of the paper).

``p(t) = sum_i Poisson(i; Lambda t) * p(0) P^i`` where ``P`` is the
uniformized DTMC.  The Poisson window comes from Fox–Glynn so the method
is stable for large ``Lambda * t``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError
from repro.numerics.poisson import fox_glynn

__all__ = ["transient_distribution"]


def transient_distribution(
    chain: CTMC,
    initial: Iterable[float],
    time: float,
    epsilon: float = 1e-12,
    uniformization_rate: Optional[float] = None,
) -> np.ndarray:
    """State occupation probabilities ``p(t)`` of the CTMC.

    Parameters
    ----------
    chain:
        The labeled CTMC.
    initial:
        Initial distribution ``p(0)`` (length ``num_states``, sums to 1).
    time:
        The elapsed time ``t >= 0``.
    epsilon:
        Poisson truncation mass (total probability outside the Fox–Glynn
        window).
    uniformization_rate:
        Optional explicit ``Lambda``; defaults to ``max_s E(s)``.

    Returns
    -------
    numpy.ndarray
        ``p(t)`` as a vector over states; entries sum to 1 up to
        ``epsilon``.
    """
    if time < 0:
        raise ModelError("time must be non-negative")
    distribution = np.asarray(list(initial), dtype=float).ravel()
    if distribution.shape[0] != chain.num_states:
        raise ModelError(
            f"initial distribution has length {distribution.shape[0]}, "
            f"expected {chain.num_states}"
        )
    if abs(distribution.sum() - 1.0) > 1e-6:
        raise ModelError("initial distribution must sum to 1")
    if time == 0.0:
        return distribution.copy()

    lam = (
        chain.default_uniformization_rate()
        if uniformization_rate is None
        else float(uniformization_rate)
    )
    uniformized = chain.uniformized_dtmc(lam)
    weights = fox_glynn(lam * time, epsilon)

    transition_t = uniformized.matrix.T.tocsr()
    current = distribution.copy()
    result = np.zeros_like(current)
    for step in range(weights.right + 1):
        if step >= weights.left:
            result += weights.weight(step) * current
        if step < weights.right:
            current = transition_t.dot(current)
    return result
