"""Readers and writers for the tool's file formats (paper appendix).

A model is specified by four files:

* ``.tra`` — transitions: ``STATES n`` / ``TRANSITIONS m`` header, then
  ``state1 state2 rate`` lines;
* ``.lab`` — labels: ``#DECLARATION`` block listing the atomic
  propositions, ``#END``, then ``state ap[,ap]*`` lines;
* ``.rewr`` — state rewards: ``state reward`` lines;
* ``.rewi`` — impulse rewards: ``TRANSITIONS n`` header, then
  ``state1 state2 reward`` lines.

State indices in files are 1-based (MRMC convention); in-memory state
indices are 0-based.
"""

from repro.io.tra import read_tra, write_tra
from repro.io.lab import read_lab, write_lab
from repro.io.rew import read_rewi, read_rewr, write_rewi, write_rewr
from repro.io.bundle import load_mrm, save_mrm

__all__ = [
    "read_tra",
    "write_tra",
    "read_lab",
    "write_lab",
    "read_rewr",
    "write_rewr",
    "read_rewi",
    "write_rewi",
    "load_mrm",
    "save_mrm",
]
