"""The ``.rewr`` (state reward) and ``.rewi`` (impulse reward) formats.

::

    # .rewr: one 'state reward' line per state with non-zero reward
    1 7.0
    2 9.0

    # .rewi
    TRANSITIONS 2
    2 1 4.0
    3 2 4.0

States are 1-based in the files.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.exceptions import FileFormatError
from repro.io.tra import _tokenize_lines

__all__ = ["read_rewr", "write_rewr", "read_rewi", "write_rewi"]


def read_rewr(path: str, num_states: int) -> np.ndarray:
    """Read state rewards into a dense vector of length ``num_states``."""
    rewards = np.zeros(num_states, dtype=float)
    for line, fields in _tokenize_lines(path):
        if len(fields) != 2:
            raise FileFormatError(
                f"expected 'state reward', got {' '.join(fields)!r}",
                path=path,
                line=line,
            )
        try:
            state = int(fields[0])
            value = float(fields[1])
        except ValueError as error:
            raise FileFormatError(str(error), path=path, line=line) from error
        if not 1 <= state <= num_states:
            raise FileFormatError(
                f"state {state} out of range (1..{num_states})", path=path, line=line
            )
        if value < 0:
            raise FileFormatError("rewards must be non-negative", path=path, line=line)
        rewards[state - 1] = value
    return rewards


def write_rewr(path: str, rewards: Iterable[float]) -> None:
    """Write state rewards (only non-zero entries are emitted)."""
    vector = np.asarray(list(rewards), dtype=float)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for state, value in enumerate(vector, start=1):
            if value != 0.0:
                handle.write(f"{state} {value:.17g}\n")


def read_rewi(path: str, num_states: int) -> Dict[Tuple[int, int], float]:
    """Read impulse rewards as a 0-based ``{(source, target): reward}`` map."""
    entries = _tokenize_lines(path)
    if not entries:
        return {}
    line, header = entries[0]
    if len(header) != 2 or header[0].upper() != "TRANSITIONS":
        raise FileFormatError("expected 'TRANSITIONS n' header", path=path, line=line)
    try:
        count = int(header[1])
    except ValueError as error:
        raise FileFormatError(str(error), path=path, line=line) from error
    impulses: Dict[Tuple[int, int], float] = {}
    for line, fields in entries[1:]:
        if len(fields) != 3:
            raise FileFormatError(
                f"expected 'state1 state2 reward', got {' '.join(fields)!r}",
                path=path,
                line=line,
            )
        try:
            source = int(fields[0])
            target = int(fields[1])
            value = float(fields[2])
        except ValueError as error:
            raise FileFormatError(str(error), path=path, line=line) from error
        if not (1 <= source <= num_states and 1 <= target <= num_states):
            raise FileFormatError(
                f"state out of range in impulse {source} -> {target}",
                path=path,
                line=line,
            )
        if value < 0:
            raise FileFormatError("rewards must be non-negative", path=path, line=line)
        impulses[(source - 1, target - 1)] = value
    if len(impulses) != count:
        raise FileFormatError(
            f"header declares {count} impulse entries but {len(impulses)} "
            "distinct ones were given",
            path=path,
        )
    return impulses


def write_rewi(path: str, impulses: Mapping[Tuple[int, int], float]) -> None:
    """Write impulse rewards (1-based states; zero entries skipped)."""
    entries = sorted(
        (int(s) + 1, int(t) + 1, float(v))
        for (s, t), v in impulses.items()
        if v != 0.0
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"TRANSITIONS {len(entries)}\n")
        for source, target, value in entries:
            handle.write(f"{source} {target} {value:.17g}\n")
