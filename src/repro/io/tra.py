"""The ``.tra`` transition file format.

::

    STATES 5
    TRANSITIONS 8
    1 2 0.1
    2 1 0.05
    ...

States are 1-based in the file, 0-based in memory.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import scipy.sparse as sp

from repro.exceptions import FileFormatError

__all__ = ["read_tra", "write_tra"]


def _tokenize_lines(path: str) -> List[Tuple[int, List[str]]]:
    """Non-empty, non-comment lines as (line number, fields)."""
    entries: List[Tuple[int, List[str]]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("%") or line.startswith("//"):
                continue
            entries.append((number, line.split()))
    return entries


def read_tra(path: str) -> sp.csr_matrix:
    """Read a rate matrix from a ``.tra`` file."""
    entries = _tokenize_lines(path)
    if len(entries) < 2:
        raise FileFormatError("missing STATES/TRANSITIONS header", path=path)
    (line_a, header_a), (line_b, header_b) = entries[0], entries[1]
    if len(header_a) != 2 or header_a[0].upper() != "STATES":
        raise FileFormatError("expected 'STATES n'", path=path, line=line_a)
    if len(header_b) != 2 or header_b[0].upper() != "TRANSITIONS":
        raise FileFormatError("expected 'TRANSITIONS m'", path=path, line=line_b)
    try:
        num_states = int(header_a[1])
        num_transitions = int(header_b[1])
    except ValueError as error:
        raise FileFormatError(f"bad header count: {error}", path=path) from error
    if num_states < 1:
        raise FileFormatError("STATES must be at least 1", path=path, line=line_a)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for line, fields in entries[2:]:
        if len(fields) != 3:
            raise FileFormatError(
                f"expected 'state1 state2 rate', got {' '.join(fields)!r}",
                path=path,
                line=line,
            )
        try:
            source = int(fields[0])
            target = int(fields[1])
            rate = float(fields[2])
        except ValueError as error:
            raise FileFormatError(str(error), path=path, line=line) from error
        if not (1 <= source <= num_states and 1 <= target <= num_states):
            raise FileFormatError(
                f"state out of range in transition {source} -> {target}",
                path=path,
                line=line,
            )
        if rate < 0:
            raise FileFormatError("rates must be non-negative", path=path, line=line)
        rows.append(source - 1)
        cols.append(target - 1)
        vals.append(rate)
    if len(vals) != num_transitions:
        raise FileFormatError(
            f"header declares {num_transitions} transitions but "
            f"{len(vals)} were given",
            path=path,
        )
    return sp.csr_matrix((vals, (rows, cols)), shape=(num_states, num_states))


def write_tra(path: str, rates: sp.spmatrix) -> None:
    """Write a rate matrix to a ``.tra`` file (1-based states)."""
    matrix = sp.coo_matrix(rates)
    if matrix.shape[0] != matrix.shape[1]:
        raise FileFormatError(f"rate matrix must be square, got {matrix.shape}")
    entries = [
        (int(r) + 1, int(c) + 1, float(v))
        for r, c, v in zip(matrix.row, matrix.col, matrix.data)
        if v != 0.0
    ]
    entries.sort()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"STATES {matrix.shape[0]}\n")
        handle.write(f"TRANSITIONS {len(entries)}\n")
        for source, target, rate in entries:
            handle.write(f"{source} {target} {rate:.17g}\n")
