"""Load/save complete MRMs from the four-file bundle of the appendix."""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.ctmc.chain import CTMC
from repro.io.lab import read_lab, write_lab
from repro.io.rew import read_rewi, read_rewr, write_rewi, write_rewr
from repro.io.tra import read_tra, write_tra
from repro.mrm.model import MRM

__all__ = ["load_mrm", "save_mrm"]


def load_mrm(
    tra_path: str,
    lab_path: str,
    rewr_path: Optional[str] = None,
    rewi_path: Optional[str] = None,
) -> MRM:
    """Build an MRM from ``.tra``/``.lab``/``.rewr``/``.rewi`` files.

    The reward files are optional; a missing file means all-zero rewards
    of that kind.
    """
    rates = read_tra(tra_path)
    declared, labels = read_lab(lab_path)
    chain = CTMC(
        rates,
        labels=labels,
        atomic_propositions=declared if declared else None,
    )
    num_states = chain.num_states
    state_rewards = read_rewr(rewr_path, num_states) if rewr_path else None
    impulse_rewards = read_rewi(rewi_path, num_states) if rewi_path else None
    return MRM(chain, state_rewards=state_rewards, impulse_rewards=impulse_rewards)


def save_mrm(model: MRM, directory: str, basename: str) -> Dict[str, str]:
    """Write an MRM as a four-file bundle; returns the written paths.

    Files are ``<directory>/<basename>.tra|.lab|.rewr|.rewi``.
    """
    os.makedirs(directory, exist_ok=True)
    paths = {
        "tra": os.path.join(directory, f"{basename}.tra"),
        "lab": os.path.join(directory, f"{basename}.lab"),
        "rewr": os.path.join(directory, f"{basename}.rewr"),
        "rewi": os.path.join(directory, f"{basename}.rewi"),
    }
    write_tra(paths["tra"], model.rates)
    write_lab(
        paths["lab"],
        model.ctmc.labeling(),
        declared=sorted(model.atomic_propositions),
    )
    write_rewr(paths["rewr"], model.state_rewards)
    impulses: Dict[Tuple[int, int], float] = {}
    coo = model.impulse_rewards.tocoo()
    for source, target, value in zip(coo.row, coo.col, coo.data):
        if value != 0.0:
            impulses[(int(source), int(target))] = float(value)
    write_rewi(paths["rewi"], impulses)
    return paths
