"""The ``.lab`` labeling file format.

::

    #DECLARATION
    off sleep idle busy
    #END
    1 off
    4 receive,busy

States are 1-based in the file.  Multiple propositions per state are
comma-separated (whitespace around commas is tolerated).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Set, Tuple

from repro.exceptions import FileFormatError

__all__ = ["read_lab", "write_lab"]


def read_lab(path: str) -> Tuple[List[str], Dict[int, Set[str]]]:
    """Read a labeling file.

    Returns
    -------
    (declared, labels):
        The declared atomic propositions in order, and the 0-based state
        labeling.
    """
    declared: List[str] = []
    labels: Dict[int, Set[str]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()

    in_declaration = False
    declaration_seen = False
    declaration_closed = False
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("%") or line.startswith("//"):
            continue
        if line.upper() == "#DECLARATION":
            if declaration_seen:
                raise FileFormatError("duplicate #DECLARATION", path=path, line=number)
            in_declaration = True
            declaration_seen = True
            continue
        if line.upper() == "#END":
            if not in_declaration:
                raise FileFormatError("#END without #DECLARATION", path=path, line=number)
            in_declaration = False
            declaration_closed = True
            continue
        if in_declaration:
            for proposition in line.split():
                if proposition in declared:
                    raise FileFormatError(
                        f"duplicate declaration of {proposition!r}",
                        path=path,
                        line=number,
                    )
                declared.append(proposition)
            continue
        fields = line.split(None, 1)
        if len(fields) != 2:
            raise FileFormatError(
                f"expected 'state ap[,ap]*', got {line!r}", path=path, line=number
            )
        try:
            state = int(fields[0])
        except ValueError as error:
            raise FileFormatError(str(error), path=path, line=number) from error
        if state < 1:
            raise FileFormatError("states are 1-based", path=path, line=number)
        props = {p.strip() for p in fields[1].split(",") if p.strip()}
        unknown = props - set(declared)
        if declared and unknown:
            raise FileFormatError(
                f"labels {sorted(unknown)} not declared", path=path, line=number
            )
        labels.setdefault(state - 1, set()).update(props)
    if declaration_seen and not declaration_closed:
        raise FileFormatError("#DECLARATION never closed with #END", path=path)
    return declared, labels


def write_lab(
    path: str,
    labels: Mapping[int, Iterable[str]],
    declared: "Iterable[str] | None" = None,
) -> None:
    """Write a labeling file (1-based states).

    Parameters
    ----------
    labels:
        0-based state labeling.
    declared:
        Optional explicit declaration order; defaults to the sorted union
        of the used propositions.
    """
    used: Set[str] = set()
    for props in labels.values():
        used |= {str(p) for p in props}
    if declared is None:
        declaration = sorted(used)
    else:
        declaration = [str(p) for p in declared]
        missing = used - set(declaration)
        if missing:
            raise FileFormatError(
                f"labels {sorted(missing)} missing from the declaration"
            )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("#DECLARATION\n")
        if declaration:
            handle.write(" ".join(declaration) + "\n")
        handle.write("#END\n")
        for state in sorted(labels):
            props = sorted(str(p) for p in labels[state])
            if props:
                handle.write(f"{int(state) + 1} {','.join(props)}\n")
