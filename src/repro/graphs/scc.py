"""Strongly connected components and BSCC detection (Algorithm 4.2).

The steady-state operator needs the *bottom* strongly connected components
(BSCCs) of the CTMC's transition graph: SCCs with no outgoing edge.  The
paper augments Tarjan's algorithm with a ``reachSCC`` flag so BSCCs are
recognized during the same pass; we implement the same idea with an
explicit stack (no Python recursion limit) over a CSR adjacency
structure.

Both functions accept either a ``scipy.sparse`` matrix (an edge exists
where the entry is ``> 0``) or an adjacency list (a sequence of integer
successor sequences).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError

__all__ = [
    "strongly_connected_components",
    "bottom_strongly_connected_components",
]

AdjacencyInput = Union[sp.spmatrix, Sequence[Sequence[int]]]


def _to_adjacency(graph: AdjacencyInput) -> List[List[int]]:
    """Normalize the input into an adjacency list of successor indices."""
    if sp.issparse(graph):
        csr = sp.csr_matrix(graph)
        if csr.shape[0] != csr.shape[1]:
            raise ModelError(f"adjacency matrix must be square, got {csr.shape}")
        adjacency: List[List[int]] = []
        for row in range(csr.shape[0]):
            start, stop = csr.indptr[row], csr.indptr[row + 1]
            successors = [
                int(csr.indices[pos])
                for pos in range(start, stop)
                if csr.data[pos] > 0.0
            ]
            adjacency.append(successors)
        return adjacency
    adjacency = [[int(s) for s in successors] for successors in graph]
    n = len(adjacency)
    for successors in adjacency:
        for s in successors:
            if not 0 <= s < n:
                raise ModelError(f"successor index {s} out of range for {n} states")
    return adjacency


def strongly_connected_components(graph: AdjacencyInput) -> List[List[int]]:
    """All maximal SCCs by an iterative Tarjan traversal.

    Returns the components as lists of state indices; within each
    component the order is the reverse of the pop order (deterministic),
    and components appear in the order Tarjan completes them.
    """
    adjacency = _to_adjacency(graph)
    n = len(adjacency)

    index_counter = 0
    indices = [-1] * n  # discovery order; -1 means unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    tarjan_stack: List[int] = []
    components: List[List[int]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work-stack frame is (state, iterator position into successors).
        work: List[List[int]] = [[root, 0]]
        while work:
            state, pointer = work[-1]
            if pointer == 0:
                indices[state] = index_counter
                lowlink[state] = index_counter
                index_counter += 1
                tarjan_stack.append(state)
                on_stack[state] = True
            advanced = False
            successors = adjacency[state]
            while work[-1][1] < len(successors):
                successor = successors[work[-1][1]]
                work[-1][1] += 1
                if indices[successor] == -1:
                    work.append([successor, 0])
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlink[state] = min(lowlink[state], indices[successor])
            if advanced:
                continue
            # All successors done: close the frame.
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
            if lowlink[state] == indices[state]:
                component: List[int] = []
                while True:
                    member = tarjan_stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == state:
                        break
                components.append(component)
    return components


def bottom_strongly_connected_components(graph: AdjacencyInput) -> List[List[int]]:
    """The BSCCs: SCCs with no edge leaving the component (Alg. 4.2).

    A component ``B`` is bottom iff every successor of every member lies
    in ``B``.  The check mirrors the ``reachSCC`` augmentation of the
    paper's modified Tarjan; here it runs as a linear post-pass over the
    component assignment, which has the same ``O(M + N)`` cost.
    """
    adjacency = _to_adjacency(graph)
    components = strongly_connected_components(adjacency)
    assignment = np.empty(len(adjacency), dtype=np.int64)
    for component_id, component in enumerate(components):
        for state in component:
            assignment[state] = component_id

    is_bottom = [True] * len(components)
    for state, successors in enumerate(adjacency):
        home = assignment[state]
        for successor in successors:
            if assignment[successor] != home:
                is_bottom[home] = False
                break
    return [
        component
        for component_id, component in enumerate(components)
        if is_bottom[component_id]
    ]
