"""Graph substrate: strongly connected components and reachability."""

from repro.graphs.scc import bottom_strongly_connected_components, strongly_connected_components
from repro.graphs.reachability import backward_reachable, forward_reachable

__all__ = [
    "strongly_connected_components",
    "bottom_strongly_connected_components",
    "forward_reachable",
    "backward_reachable",
]
