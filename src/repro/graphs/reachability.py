"""Forward and backward reachability over transition graphs.

Qualitative precomputations used by the model checker: before solving the
linear system for ``P(s, Phi U Psi)`` (eq. 3.8) it pays to identify the
states that cannot reach a target at all (probability exactly 0) and, for
the complementary system, the states from which the target is reached
almost surely.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Sequence, Set, Union

import scipy.sparse as sp

from repro.graphs.scc import _to_adjacency

__all__ = ["forward_reachable", "backward_reachable"]

AdjacencyInput = Union[sp.spmatrix, Sequence[Sequence[int]]]


def forward_reachable(
    graph: AdjacencyInput,
    sources: Iterable[int],
    allowed: "Set[int] | None" = None,
) -> Set[int]:
    """States reachable from ``sources`` by directed edges.

    Parameters
    ----------
    allowed:
        If given, the walk may only pass *through* states in this set;
        sources are always included, and successors outside ``allowed``
        are recorded as reached but not expanded.  This matches the
        until-semantics where intermediate states must satisfy ``Phi``.
    """
    adjacency = _to_adjacency(graph)
    seen: Set[int] = set()
    frontier = deque()
    for source in sources:
        source = int(source)
        if source not in seen:
            seen.add(source)
            frontier.append(source)
    while frontier:
        state = frontier.popleft()
        if allowed is not None and state not in allowed:
            # Reached but not expandable: recorded in ``seen`` already.
            continue
        for successor in adjacency[state]:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


def backward_reachable(
    graph: AdjacencyInput,
    targets: Iterable[int],
    allowed: "Set[int] | None" = None,
) -> Set[int]:
    """States from which some state in ``targets`` is reachable.

    Parameters
    ----------
    allowed:
        If given, only states in ``allowed`` may appear *strictly before*
        the target on the witnessing path (the targets themselves need not
        be in ``allowed``).  This computes
        ``Sat(exists(Phi U Psi))`` with ``allowed = Sat(Phi)`` and
        ``targets = Sat(Psi)``.
    """
    adjacency = _to_adjacency(graph)
    n = len(adjacency)
    predecessors: List[List[int]] = [[] for _ in range(n)]
    for state, successors in enumerate(adjacency):
        for successor in successors:
            predecessors[successor].append(state)

    seen: Set[int] = set()
    frontier = deque()
    for target in targets:
        target = int(target)
        if target not in seen:
            seen.add(target)
            frontier.append(target)
    while frontier:
        state = frontier.popleft()
        for predecessor in predecessors[state]:
            if predecessor in seen:
                continue
            if allowed is not None and predecessor not in allowed:
                continue
            seen.add(predecessor)
            frontier.append(predecessor)
    return seen
