"""Closed intervals of non-negative reals, as used for CSRL time/reward bounds.

CSRL path operators carry two intervals: a timing constraint ``I`` and a
bound ``J`` on the accumulated reward (Definition 3.5 of the paper).  This
module provides an immutable :class:`Interval` with the operations the
model-checking algorithms need:

* the shift operation ``L (-) y = {l - y | l in L, l >= y}`` used in the
  fixed-point characterization of until (eq. 3.6);
* the derived time windows ``K(s)`` and ``K(s, s')`` of Section 3.8, which
  translate a reward bound into a residence-time window given a state
  reward rate and an impulse reward.

Intervals are closed on both ends; the upper bound may be ``math.inf``.
The empty interval is represented by :data:`Interval.EMPTY`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

from repro.exceptions import FormulaError

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lower, upper]`` of non-negative reals.

    Parameters
    ----------
    lower:
        Lower endpoint, finite and ``>= 0``.
    upper:
        Upper endpoint, ``>= lower``; may be ``math.inf``.

    Examples
    --------
    >>> Interval(0, 10).contains(3.5)
    True
    >>> Interval.unbounded().is_unbounded
    True
    >>> Interval(2, 8).shift_down(3)
    Interval(0, 5)
    """

    lower: float
    upper: float

    #: Sentinel for the empty interval (lower > upper by construction).
    EMPTY: ClassVar["Interval"]

    def __post_init__(self) -> None:
        lower = float(self.lower)
        upper = float(self.upper)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        if math.isnan(lower) or math.isnan(upper):
            raise FormulaError("interval endpoints must not be NaN")
        if math.isinf(lower):
            raise FormulaError("interval lower bound must be finite")
        if upper < lower:
            raise FormulaError(
                f"interval upper bound below lower bound: [{lower}, {upper}] "
                "(use Interval.EMPTY for the empty interval)"
            )
        if lower < 0:
            raise FormulaError(
                f"interval bounds must be non-negative, got [{lower}, {upper}]"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def unbounded() -> "Interval":
        """Return ``[0, inf)``, the trivial (absent) bound."""
        return Interval(0.0, math.inf)

    @staticmethod
    def upto(bound: float) -> "Interval":
        """Return ``[0, bound]``."""
        return Interval(0.0, bound)

    @staticmethod
    def point(value: float) -> "Interval":
        """Return the degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def empty() -> "Interval":
        """Return the canonical empty interval."""
        return Interval.EMPTY

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the interval contains no points."""
        return self.lower > self.upper

    @property
    def is_unbounded(self) -> bool:
        """Whether the interval is exactly ``[0, inf)``."""
        return self.lower == 0.0 and math.isinf(self.upper)

    @property
    def is_point(self) -> bool:
        """Whether the interval is a single point ``[x, x]``."""
        return self.lower == self.upper

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies in the closed interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        """Length of the interval (``inf`` for unbounded ones, 0 if empty)."""
        if self.is_empty:
            return 0.0
        return self.upper - self.lower

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """Intersection of two intervals (possibly empty)."""
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if lower > upper:
            return Interval.EMPTY
        return Interval(lower, upper)

    def shift_down(self, amount: float) -> "Interval":
        """The paper's ``L (-) y`` operation: ``{l - y | l in L, l >= y}``.

        Shifting the interval down by ``amount`` and clipping at zero from
        below.  Used when time/reward is consumed along a path prefix.
        """
        if amount < 0:
            raise FormulaError("shift amount must be non-negative")
        if self.is_empty:
            return Interval.EMPTY
        upper = self.upper - amount
        if upper < 0:
            return Interval.EMPTY
        lower = max(self.lower - amount, 0.0)
        return Interval(lower, upper)

    def scale(self, factor: float) -> "Interval":
        """Multiply both endpoints by a positive factor.

        Used when reward structures are rescaled to integers for the
        discretization engine; the reward bound in the formula must be
        scaled identically (Section 4.4.1).
        """
        if factor <= 0:
            raise FormulaError("scale factor must be positive")
        if self.is_empty:
            return Interval.EMPTY
        return Interval(self.lower * factor, self.upper * factor)

    # ------------------------------------------------------------------
    # K(s) and K(s, s') of Section 3.8
    # ------------------------------------------------------------------
    def reward_window(self, rate: float) -> "Interval":
        """``K(s) = {x in I | rate * x in J}`` with ``self`` playing ``I``.

        Given the reward bound ``J`` (the argument convention below) the
        result is the subset of residence times in this *time* interval for
        which the reward accumulated at ``rate`` stays in ``J``.  This
        method implements the pure ``J``-side: it returns
        ``{x >= 0 | rate * x in self}``; callers intersect with ``I``.

        A zero rate accumulates no reward, so the result is ``[0, inf)``
        when ``0 in self`` and empty otherwise.  Reward rates are
        non-negative by Definition 3.1; a negative ``rate`` is rejected
        (dividing by it would silently invert the interval).
        """
        if rate < 0.0:
            raise FormulaError(
                f"reward rate must be non-negative, got {rate}"
            )
        if self.is_empty:
            return Interval.EMPTY
        if rate == 0.0:
            return Interval.unbounded() if self.contains(0.0) else Interval.EMPTY
        lower = self.lower / rate
        upper = self.upper / rate
        if math.isinf(lower):
            # A subnormal rate can overflow lower/rate to infinity: no
            # finite residence time accumulates that much reward.
            return Interval.EMPTY
        return Interval(lower, upper)

    @staticmethod
    def k_state(time_bound: "Interval", reward_bound: "Interval", rate: float) -> "Interval":
        """``K(s)`` of Section 3.8 for a state with reward rate ``rate``.

        The set of residence times ``x in I`` such that ``rate * x in J``.
        """
        return time_bound.intersect(reward_bound.reward_window(rate))

    @staticmethod
    def k_transition(
        time_bound: "Interval",
        reward_bound: "Interval",
        rate: float,
        impulse: float,
    ) -> "Interval":
        """``K(s, s')`` of Section 3.8.

        The set of residence times ``x in I`` such that
        ``rate * x + impulse in J`` — the reward earned by residing in
        ``s`` for ``x`` time units and then taking the transition with
        impulse reward ``impulse``.
        """
        if impulse < 0:
            raise FormulaError("impulse rewards must be non-negative")
        shifted = reward_bound.shift_down(impulse)
        return time_bound.intersect(shifted.reward_window(rate))

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, value: float) -> bool:
        return self.contains(float(value))

    def __bool__(self) -> bool:
        return not self.is_empty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "Interval.EMPTY"
        lower = int(self.lower) if self.lower == int(self.lower) else self.lower
        if math.isinf(self.upper):
            return f"Interval({lower}, inf)"
        upper = int(self.upper) if self.upper == int(self.upper) else self.upper
        return f"Interval({lower}, {upper})"

    def __str__(self) -> str:
        if self.is_empty:
            return "[empty]"
        upper = "~" if math.isinf(self.upper) else f"{self.upper:.12g}"
        return f"[{self.lower:.12g},{upper}]"


# The canonical empty interval: the ONLY inverted instance.  Built by
# bypassing ``__post_init__`` (which rejects ``upper < lower`` for every
# other construction), so all operations can canonicalize empty results
# to this sentinel.
_empty = object.__new__(Interval)
object.__setattr__(_empty, "lower", 1.0)
object.__setattr__(_empty, "upper", 0.0)
Interval.EMPTY = _empty
del _empty
