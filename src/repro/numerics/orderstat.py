"""Distribution of linear combinations of uniform order statistics.

This implements Algorithm 4.8 of the paper — the numerically stable Omega
recursion of Diniz, de Souza e Silva & Gail (INFORMS JoC 2002) — which the
uniformization engine uses to evaluate the conditional probability

    Pr{Y(t) <= r | n, k, j}

of eq. (4.9): given ``n`` Poisson transitions, sojourn-count vector ``k``
over the distinct state rewards and impulse-count vector ``j`` over the
distinct impulse rewards, the accumulated reward is a linear combination
of uniform order statistics plus a constant impulse contribution.

The recursion is

    Omega(r, k) = ((c_i - r) / (c_i - c_j)) * Omega(r, k - 1_j)
                + ((r - c_j) / (c_i - c_j)) * Omega(r, k - 1_i)

for any ``i`` with ``c_i > r`` and ``j`` with ``c_j <= r`` (both with
positive count), with base cases Omega = 1 when no coefficient exceeds
``r`` and Omega = 0 when all coefficients exceed ``r``.  All multipliers
lie in ``[0, 1]``, which is the source of the method's stability.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import NumericalError

__all__ = ["OmegaCalculator", "omega", "conditional_reward_probability"]


class OmegaCalculator:
    """Evaluator for ``Omega(r, k)`` with memoization across calls.

    Parameters
    ----------
    coefficients:
        The distinct coefficients ``c_1 .. c_S`` of the sojourn groups
        (``d``-values in the paper's notation).  They need not be sorted
        but must be pairwise distinct.
    threshold:
        The level ``r`` at which the distribution is evaluated.  The
        partition into ``G = {l | c_l > r}`` and ``L = {l | c_l <= r}`` is
        fixed per calculator, hence one calculator per threshold.

    Notes
    -----
    The memo table is keyed by the count vector ``k`` only (the threshold
    is fixed), so repeated queries from many generated paths share work.
    """

    def __init__(self, coefficients: Sequence[float], threshold: float) -> None:
        coeffs = [float(c) for c in coefficients]
        if len(set(coeffs)) != len(coeffs):
            raise NumericalError("Omega coefficients must be pairwise distinct")
        self._coefficients = coeffs
        self._threshold = float(threshold)
        self._greater = [l for l, c in enumerate(coeffs) if c > threshold]
        self._lesser = [l for l, c in enumerate(coeffs) if c <= threshold]
        self._memo: Dict[Tuple[int, ...], float] = {}
        # Per-backend compiled-kernel state: (greater, lesser, weight
        # tables, packed-key memo), built lazily on first kernel use.
        # The packed memos are independent of the tuple-keyed _memo;
        # both paths compute bitwise-identical values, so mixing
        # backends on one calculator at most repeats work, never
        # changes a result.
        self._kernel_state: Dict[str, tuple] = {}
        self.evaluations = 0

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def coefficients(self) -> Tuple[float, ...]:
        return tuple(self._coefficients)

    def value(self, counts: Sequence[int]) -> float:
        """``Omega(threshold, counts)`` = Pr{sum over groups <= threshold}.

        ``counts[l]`` is the number of sojourn intervals carrying
        coefficient ``coefficients[l]``.
        """
        key = tuple(int(c) for c in counts)
        if len(key) != len(self._coefficients):
            raise NumericalError(
                f"count vector has length {len(key)}, expected "
                f"{len(self._coefficients)}"
            )
        if any(c < 0 for c in key):
            raise NumericalError("counts must be non-negative")
        return self._value(key)

    def value_many(self, counts, backend: str = "numpy") -> np.ndarray:
        """Batch ``Omega(threshold, k)`` for every row of ``counts``.

        ``counts`` is a 2-D array-like of non-negative integers, one
        count vector per row.  All rows are evaluated through a *single*
        traversal of the shared memo table: every distinct unmemoized key
        is pushed onto one work stack, so common sub-problems between the
        rows (which dominate — the recursion only ever decrements
        entries) are expanded exactly once.  This is what turns the
        per-class Omega combination of the path engine into one batched
        lookup per depth instead of one memoized recursion per class.

        ``backend`` selects a compiled kernel (see :mod:`repro.kernels`)
        for the recursion when one is available and the counts fit the
        packed-key layout; results are bitwise identical to the default
        ``"numpy"`` path, which this method silently falls back to
        otherwise.

        Returns the values as a float array aligned with the input rows.
        """
        matrix = np.asarray(counts, dtype=np.int64)
        if matrix.ndim != 2:
            raise NumericalError(
                "value_many expects a 2-D array of counts, got shape "
                f"{matrix.shape}"
            )
        if matrix.shape[1] != len(self._coefficients):
            raise NumericalError(
                f"count vectors have length {matrix.shape[1]}, expected "
                f"{len(self._coefficients)}"
            )
        if matrix.size and int(matrix.min()) < 0:
            raise NumericalError("counts must be non-negative")
        if backend != "numpy" and matrix.size:
            values = self._value_many_kernel(matrix, backend)
            if values is not None:
                return values
        memo = self._memo
        keys = list(map(tuple, matrix.tolist()))
        missing = [key for key in dict.fromkeys(keys) if key not in memo]
        if missing:
            self._evaluate_batch(missing)
        return np.array([memo[key] for key in keys], dtype=float)

    def _value_many_kernel(self, matrix: np.ndarray, backend: str):
        """Kernel-backed :meth:`value_many`, or ``None`` to fall back.

        Falls back (returning ``None``) when the backend has no kernel
        set, the group count exceeds the packed-key layout, or any
        count overflows a packed field — the NumPy path handles every
        such case.
        """
        # Local import: keeps repro.numerics importable without pulling
        # in the obs layer at module-import time.
        from repro import kernels as kernels_mod

        if len(self._coefficients) > kernels_mod.OMEGA_MAX_GROUPS:
            return None
        if int(matrix.max()) > kernels_mod.OMEGA_MAX_COUNT:
            return None
        kernel_set = kernels_mod.active_kernels(backend)
        if kernel_set is None:
            return None
        matrix = np.ascontiguousarray(matrix)
        state = self._kernel_state.get(kernel_set.backend)
        if state is None:
            num_groups = len(self._coefficients)
            # Per-(i, j) recursion weights with the exact scalar
            # arithmetic of _split, as in _evaluate_batch.
            weight_j = np.zeros((num_groups, num_groups), dtype=np.float64)
            weight_i = np.zeros((num_groups, num_groups), dtype=np.float64)
            for i in self._greater:
                for j in self._lesser:
                    c_i = self._coefficients[i]
                    c_j = self._coefficients[j]
                    weight_j[i, j] = (c_i - self._threshold) / (c_i - c_j)
                    weight_i[i, j] = (self._threshold - c_j) / (c_i - c_j)
            state = (
                np.asarray(self._greater, dtype=np.int64),
                np.asarray(self._lesser, dtype=np.int64),
                weight_j,
                weight_i,
                kernel_set.make_omega_memo(),
            )
            self._kernel_state[kernel_set.backend] = state
        greater, lesser, weight_j, weight_i, memo = state
        values = np.empty(matrix.shape[0], dtype=np.float64)
        self.evaluations += int(
            kernel_set.omega_eval(
                matrix, greater, lesser, weight_j, weight_i, memo, values
            )
        )
        return values

    def _split(self, key: Tuple[int, ...]):
        """Base-case value, or the two child keys with their weights.

        Returns either ``(value, None)`` for a base case or
        ``(None, (child_j, weight_j, child_i, weight_i))`` for a
        recursion step.
        """
        mass_greater = sum(key[l] for l in self._greater)
        if mass_greater == 0:
            # Every interval's coefficient is <= r, so the combination is
            # certainly bounded by r.
            return 1.0, None
        mass_lesser = sum(key[l] for l in self._lesser)
        if mass_lesser == 0:
            return 0.0, None
        i = next(l for l in self._greater if key[l] > 0)
        j = next(l for l in self._lesser if key[l] > 0)
        c_i = self._coefficients[i]
        c_j = self._coefficients[j]
        r = self._threshold
        without_j = list(key)
        without_j[j] -= 1
        without_i = list(key)
        without_i[i] -= 1
        weight_j = (c_i - r) / (c_i - c_j)
        weight_i = (r - c_j) / (c_i - c_j)
        return None, (tuple(without_j), weight_j, tuple(without_i), weight_i)

    def _evaluate_batch(self, roots) -> None:
        """Evaluate all ``roots`` through one generation-synchronous sweep.

        The recursion of :meth:`_split` always decrements exactly one
        entry, so every child of a count vector with sum ``n`` has sum
        ``n - 1``: the dependency DAG is layered by row sum.  This walks
        the layers top-down, resolving each layer's base cases, child
        selections and recursion weights with vectorized array
        operations, then propagates values bottom-up.  Each distinct
        sub-problem is expanded exactly once and the arithmetic per node
        (two multiplies and an add on the same operands, in the same
        order) is bitwise identical to the scalar stack of
        :meth:`_evaluate`, so the memo contents agree between the two
        paths.
        """
        memo = self._memo
        coeffs = self._coefficients
        num_groups = len(coeffs)
        greater = self._greater
        lesser = self._lesser
        threshold = self._threshold

        # Per-(i, j) recursion weights, built with the exact scalar
        # arithmetic of _split so both evaluation paths agree bitwise.
        if greater and lesser:
            greater_idx = np.array(greater, dtype=np.int64)
            lesser_idx = np.array(lesser, dtype=np.int64)
            weight_j_table = np.zeros((num_groups, num_groups), dtype=float)
            weight_i_table = np.zeros((num_groups, num_groups), dtype=float)
            for i in greater:
                for j in lesser:
                    c_i = coeffs[i]
                    c_j = coeffs[j]
                    weight_j_table[i, j] = (c_i - threshold) / (c_i - c_j)
                    weight_i_table[i, j] = (threshold - c_j) / (c_i - c_j)

        # Bucket the roots by layer (row sum); positions within a layer
        # follow insertion order, which the value arrays mirror.
        pending_layers: Dict[int, Dict[Tuple[int, ...], int]] = {}
        for key in roots:
            index = pending_layers.setdefault(sum(key), {})
            if key not in index:
                index[key] = len(index)

        layers = []
        layer_sum = max(pending_layers)
        index = pending_layers.pop(layer_sum)
        while True:
            keys = list(index)
            rows = np.array(keys, dtype=np.int64).reshape(len(keys), num_groups)
            self.evaluations += len(keys)
            mass_greater = rows[:, greater].sum(axis=1)
            mass_lesser = rows[:, lesser].sum(axis=1)
            # Base cases exactly as _split orders them: certainly bounded
            # when no above-threshold coefficient has mass, certainly
            # unbounded when only above-threshold coefficients have mass.
            values = np.where(mass_greater == 0, 1.0, 0.0)
            recursing = np.flatnonzero((mass_greater > 0) & (mass_lesser > 0))
            record = (keys, values, recursing, None)
            next_index: Dict[Tuple[int, ...], int] = {}
            if recursing.size:
                sub = rows[recursing]
                # First positive-count group above/below the threshold —
                # the same (i, j) choice the scalar _split makes.
                i_sel = greater_idx[np.argmax(sub[:, greater_idx] > 0, axis=1)]
                j_sel = lesser_idx[np.argmax(sub[:, lesser_idx] > 0, axis=1)]
                arange = np.arange(recursing.size)
                child_j = sub.copy()
                child_j[arange, j_sel] -= 1
                child_i = sub.copy()
                child_i[arange, i_sel] -= 1

                def resolve(children: np.ndarray):
                    """Split children into memo hits and next-layer slots."""
                    position = np.empty(children.shape[0], dtype=np.int64)
                    known = np.zeros(children.shape[0], dtype=float)
                    for row, child in enumerate(map(tuple, children.tolist())):
                        value = memo.get(child)
                        if value is not None:
                            position[row] = -1
                            known[row] = value
                        else:
                            position[row] = next_index.setdefault(
                                child, len(next_index)
                            )
                    return position, known

                pos_j, val_j = resolve(child_j)
                pos_i, val_i = resolve(child_i)
                record = (
                    keys,
                    values,
                    recursing,
                    (
                        weight_j_table[i_sel, j_sel],
                        weight_i_table[i_sel, j_sel],
                        pos_j,
                        val_j,
                        pos_i,
                        val_i,
                    ),
                )
            layers.append(record)
            # Merge roots that start at the next layer down.
            layer_sum -= 1
            for key in pending_layers.pop(layer_sum, {}):
                next_index.setdefault(key, len(next_index))
            if next_index:
                index = next_index
            elif pending_layers:
                layer_sum = max(pending_layers)
                index = pending_layers.pop(layer_sum)
            else:
                break

        # Bottom-up value propagation: children live one layer below, so
        # the previous iteration's value array resolves every reference.
        child_values = np.zeros(1)
        for keys, values, recursing, recursion in reversed(layers):
            if recursion is not None:
                weight_j, weight_i, pos_j, val_j, pos_i, val_i = recursion
                resolved_j = np.where(
                    pos_j >= 0, child_values[np.maximum(pos_j, 0)], val_j
                )
                resolved_i = np.where(
                    pos_i >= 0, child_values[np.maximum(pos_i, 0)], val_i
                )
                values[recursing] = weight_j * resolved_j + weight_i * resolved_i
            for key, value in zip(keys, values.tolist()):
                memo[key] = value
            child_values = values if values.size else np.zeros(1)

    def _value(self, key: Tuple[int, ...]) -> float:
        """Memoized evaluation with an explicit stack (no recursion limit)."""
        memo = self._memo
        if key not in memo:
            self._evaluate([key])
        return memo[key]

    def _evaluate(self, roots) -> None:
        """Evaluate all ``roots`` through one shared stack traversal."""
        memo = self._memo
        stack = list(roots)
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            self.evaluations += 1
            base, children = self._split(current)
            if children is None:
                memo[current] = base
                stack.pop()
                continue
            child_j, weight_j, child_i, weight_i = children
            missing = [child for child in (child_j, child_i) if child not in memo]
            if missing:
                # Re-visit once the children are available; do not count
                # the revisit as a fresh evaluation.
                self.evaluations -= 1
                stack.extend(missing)
                continue
            memo[current] = weight_j * memo[child_j] + weight_i * memo[child_i]
            stack.pop()


def omega(coefficients: Sequence[float], counts: Sequence[int], threshold: float) -> float:
    """One-shot ``Omega(threshold, counts)`` (see :class:`OmegaCalculator`)."""
    return OmegaCalculator(coefficients, threshold).value(counts)


def conditional_reward_probability(
    state_rewards: Sequence[float],
    sojourn_counts: Sequence[int],
    impulse_rewards: Sequence[float],
    impulse_counts: Sequence[int],
    time_bound: float,
    reward_bound: float,
) -> float:
    """``Pr{Y(t) <= r | n, k, j}`` per eqs. (4.7)–(4.10) of the paper.

    Parameters
    ----------
    state_rewards:
        The distinct state rewards ``r_1 > r_2 > ... > r_{K+1} >= 0``.
    sojourn_counts:
        ``k``-vector: ``k_l`` sojourn intervals in states of reward
        ``state_rewards[l]``; must sum to ``n + 1``.
    impulse_rewards:
        The distinct impulse rewards ``i_1 > ... > i_J >= 0``.
    impulse_counts:
        ``j``-vector: occurrences of transitions carrying each impulse
        reward; must sum to ``n``.
    time_bound:
        ``t > 0``.
    reward_bound:
        ``r >= 0``.

    Notes
    -----
    With ``c_l = r_l - r_{K+1}`` (group coefficients, strictly decreasing
    to 0) and impulse contribution ``imp = sum_i i_i * j_i``, eq. (4.9)
    reduces the conditional probability to

        Omega(r/t - r_{K+1} - imp/t, k).
    """
    rewards = [float(r) for r in state_rewards]
    if any(rewards[i] <= rewards[i + 1] for i in range(len(rewards) - 1)):
        raise NumericalError("state rewards must be strictly decreasing")
    if rewards and rewards[-1] < 0:
        raise NumericalError("state rewards must be non-negative")
    if time_bound <= 0:
        raise NumericalError("time bound must be positive")
    counts = [int(c) for c in sojourn_counts]
    if len(counts) != len(rewards):
        raise NumericalError("sojourn count vector does not match reward levels")
    imp_levels = [float(i) for i in impulse_rewards]
    imp_counts = [int(c) for c in impulse_counts]
    if len(imp_levels) != len(imp_counts):
        raise NumericalError("impulse count vector does not match impulse levels")

    impulse_total = sum(level * count for level, count in zip(imp_levels, imp_counts))
    smallest = rewards[-1] if rewards else 0.0
    threshold = reward_bound / time_bound - smallest - impulse_total / time_bound
    if threshold < 0:
        return 0.0
    coefficients = [r - smallest for r in rewards]
    return omega(coefficients, counts, threshold)
