"""Distribution of linear combinations of uniform order statistics.

This implements Algorithm 4.8 of the paper — the numerically stable Omega
recursion of Diniz, de Souza e Silva & Gail (INFORMS JoC 2002) — which the
uniformization engine uses to evaluate the conditional probability

    Pr{Y(t) <= r | n, k, j}

of eq. (4.9): given ``n`` Poisson transitions, sojourn-count vector ``k``
over the distinct state rewards and impulse-count vector ``j`` over the
distinct impulse rewards, the accumulated reward is a linear combination
of uniform order statistics plus a constant impulse contribution.

The recursion is

    Omega(r, k) = ((c_i - r) / (c_i - c_j)) * Omega(r, k - 1_j)
                + ((r - c_j) / (c_i - c_j)) * Omega(r, k - 1_i)

for any ``i`` with ``c_i > r`` and ``j`` with ``c_j <= r`` (both with
positive count), with base cases Omega = 1 when no coefficient exceeds
``r`` and Omega = 0 when all coefficients exceed ``r``.  All multipliers
lie in ``[0, 1]``, which is the source of the method's stability.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.exceptions import NumericalError

__all__ = ["OmegaCalculator", "omega", "conditional_reward_probability"]


class OmegaCalculator:
    """Evaluator for ``Omega(r, k)`` with memoization across calls.

    Parameters
    ----------
    coefficients:
        The distinct coefficients ``c_1 .. c_S`` of the sojourn groups
        (``d``-values in the paper's notation).  They need not be sorted
        but must be pairwise distinct.
    threshold:
        The level ``r`` at which the distribution is evaluated.  The
        partition into ``G = {l | c_l > r}`` and ``L = {l | c_l <= r}`` is
        fixed per calculator, hence one calculator per threshold.

    Notes
    -----
    The memo table is keyed by the count vector ``k`` only (the threshold
    is fixed), so repeated queries from many generated paths share work.
    """

    def __init__(self, coefficients: Sequence[float], threshold: float) -> None:
        coeffs = [float(c) for c in coefficients]
        if len(set(coeffs)) != len(coeffs):
            raise NumericalError("Omega coefficients must be pairwise distinct")
        self._coefficients = coeffs
        self._threshold = float(threshold)
        self._greater = [l for l, c in enumerate(coeffs) if c > threshold]
        self._lesser = [l for l, c in enumerate(coeffs) if c <= threshold]
        self._memo: Dict[Tuple[int, ...], float] = {}
        self.evaluations = 0

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def coefficients(self) -> Tuple[float, ...]:
        return tuple(self._coefficients)

    def value(self, counts: Sequence[int]) -> float:
        """``Omega(threshold, counts)`` = Pr{sum over groups <= threshold}.

        ``counts[l]`` is the number of sojourn intervals carrying
        coefficient ``coefficients[l]``.
        """
        key = tuple(int(c) for c in counts)
        if len(key) != len(self._coefficients):
            raise NumericalError(
                f"count vector has length {len(key)}, expected "
                f"{len(self._coefficients)}"
            )
        if any(c < 0 for c in key):
            raise NumericalError("counts must be non-negative")
        return self._value(key)

    def _split(self, key: Tuple[int, ...]):
        """Base-case value, or the two child keys with their weights.

        Returns either ``(value, None)`` for a base case or
        ``(None, (child_j, weight_j, child_i, weight_i))`` for a
        recursion step.
        """
        mass_greater = sum(key[l] for l in self._greater)
        if mass_greater == 0:
            # Every interval's coefficient is <= r, so the combination is
            # certainly bounded by r.
            return 1.0, None
        mass_lesser = sum(key[l] for l in self._lesser)
        if mass_lesser == 0:
            return 0.0, None
        i = next(l for l in self._greater if key[l] > 0)
        j = next(l for l in self._lesser if key[l] > 0)
        c_i = self._coefficients[i]
        c_j = self._coefficients[j]
        r = self._threshold
        without_j = list(key)
        without_j[j] -= 1
        without_i = list(key)
        without_i[i] -= 1
        weight_j = (c_i - r) / (c_i - c_j)
        weight_i = (r - c_j) / (c_i - c_j)
        return None, (tuple(without_j), weight_j, tuple(without_i), weight_i)

    def _value(self, key: Tuple[int, ...]) -> float:
        """Memoized evaluation with an explicit stack (no recursion limit)."""
        memo = self._memo
        if key in memo:
            return memo[key]
        stack = [key]
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            self.evaluations += 1
            base, children = self._split(current)
            if children is None:
                memo[current] = base
                stack.pop()
                continue
            child_j, weight_j, child_i, weight_i = children
            missing = [child for child in (child_j, child_i) if child not in memo]
            if missing:
                # Re-visit once the children are available; do not count
                # the revisit as a fresh evaluation.
                self.evaluations -= 1
                stack.extend(missing)
                continue
            memo[current] = weight_j * memo[child_j] + weight_i * memo[child_i]
            stack.pop()
        return memo[key]


def omega(coefficients: Sequence[float], counts: Sequence[int], threshold: float) -> float:
    """One-shot ``Omega(threshold, counts)`` (see :class:`OmegaCalculator`)."""
    return OmegaCalculator(coefficients, threshold).value(counts)


def conditional_reward_probability(
    state_rewards: Sequence[float],
    sojourn_counts: Sequence[int],
    impulse_rewards: Sequence[float],
    impulse_counts: Sequence[int],
    time_bound: float,
    reward_bound: float,
) -> float:
    """``Pr{Y(t) <= r | n, k, j}`` per eqs. (4.7)–(4.10) of the paper.

    Parameters
    ----------
    state_rewards:
        The distinct state rewards ``r_1 > r_2 > ... > r_{K+1} >= 0``.
    sojourn_counts:
        ``k``-vector: ``k_l`` sojourn intervals in states of reward
        ``state_rewards[l]``; must sum to ``n + 1``.
    impulse_rewards:
        The distinct impulse rewards ``i_1 > ... > i_J >= 0``.
    impulse_counts:
        ``j``-vector: occurrences of transitions carrying each impulse
        reward; must sum to ``n``.
    time_bound:
        ``t > 0``.
    reward_bound:
        ``r >= 0``.

    Notes
    -----
    With ``c_l = r_l - r_{K+1}`` (group coefficients, strictly decreasing
    to 0) and impulse contribution ``imp = sum_i i_i * j_i``, eq. (4.9)
    reduces the conditional probability to

        Omega(r/t - r_{K+1} - imp/t, k).
    """
    rewards = [float(r) for r in state_rewards]
    if any(rewards[i] <= rewards[i + 1] for i in range(len(rewards) - 1)):
        raise NumericalError("state rewards must be strictly decreasing")
    if rewards and rewards[-1] < 0:
        raise NumericalError("state rewards must be non-negative")
    if time_bound <= 0:
        raise NumericalError("time bound must be positive")
    counts = [int(c) for c in sojourn_counts]
    if len(counts) != len(rewards):
        raise NumericalError("sojourn count vector does not match reward levels")
    imp_levels = [float(i) for i in impulse_rewards]
    imp_counts = [int(c) for c in impulse_counts]
    if len(imp_levels) != len(imp_counts):
        raise NumericalError("impulse count vector does not match impulse levels")

    impulse_total = sum(level * count for level, count in zip(imp_levels, imp_counts))
    smallest = rewards[-1] if rewards else 0.0
    threshold = reward_bound / time_bound - smallest - impulse_total / time_bound
    if threshold < 0:
        return 0.0
    coefficients = [r - smallest for r in rewards]
    return omega(coefficients, counts, threshold)
