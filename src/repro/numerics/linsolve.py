"""Sparse linear-system solvers used by the model checker.

The steady-state operator and the unbounded-until operator both reduce to
sparse linear systems (Sections 4.2 and 3.8.2 of the paper).  The paper's
implementation uses the Gauss–Seidel method; this module provides that
solver plus Jacobi, SOR and a direct sparse solve so the ablation
benchmarks can compare them.

All iterative solvers work on ``scipy.sparse`` matrices in CSR format and
report iteration counts/residuals via :class:`SolverStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConvergenceError, NumericalError

__all__ = [
    "SolverStats",
    "gauss_seidel",
    "jacobi",
    "sor",
    "solve_direct",
    "solve_linear_system",
]

DEFAULT_TOLERANCE = 1e-12
DEFAULT_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class SolverStats:
    """Diagnostics for an iterative solve."""

    method: str
    iterations: int
    residual: float
    converged: bool


def _as_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    csr = sp.csr_matrix(matrix)
    if csr.shape[0] != csr.shape[1]:
        raise NumericalError(f"matrix must be square, got shape {csr.shape}")
    return csr


def _check_rhs(matrix: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
    vector = np.asarray(rhs, dtype=float).ravel()
    if vector.shape[0] != matrix.shape[0]:
        raise NumericalError(
            f"rhs length {vector.shape[0]} does not match matrix order {matrix.shape[0]}"
        )
    return vector


def _extract_diagonal(matrix: sp.csr_matrix) -> np.ndarray:
    diagonal = matrix.diagonal()
    if np.any(diagonal == 0.0):
        raise NumericalError(
            "matrix has a zero diagonal entry; relaxation methods need a "
            "non-singular diagonal"
        )
    return diagonal


def jacobi(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by Jacobi iteration.

    ``x_{k+1} = D^{-1} (b - (A - D) x_k)``.  Converges for strictly
    diagonally dominant systems, which covers the absorbing-chain systems
    produced by the model checker.
    """
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    diagonal = _extract_diagonal(csr)
    off = csr - sp.diags(diagonal)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        x_next = (b - off.dot(x)) / diagonal
        residual = float(np.max(np.abs(x_next - x)))
        x = x_next
        if residual <= tolerance:
            return x, SolverStats("jacobi", iteration, residual, True)
    raise ConvergenceError("jacobi", max_iterations, residual)


def sor(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    omega_factor: float = 1.0,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by successive over-relaxation.

    With ``omega_factor = 1`` this is exactly the Gauss–Seidel method the
    paper's implementation uses.  The sweep walks CSR rows in place so no
    dense matrix is formed.
    """
    if not (0.0 < omega_factor < 2.0):
        raise NumericalError("SOR relaxation factor must lie in (0, 2)")
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    _extract_diagonal(csr)  # validates
    n = csr.shape[0]
    x = np.zeros(n, dtype=float) if x0 is None else np.asarray(x0, dtype=float).copy()

    indptr, indices, data = csr.indptr, csr.indices, csr.data
    diagonal = np.zeros(n, dtype=float)
    for row in range(n):
        for pos in range(indptr[row], indptr[row + 1]):
            if indices[pos] == row:
                diagonal[row] = data[pos]

    method = "gauss-seidel" if omega_factor == 1.0 else f"sor({omega_factor:g})"
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        residual = 0.0
        for row in range(n):
            acc = 0.0
            for pos in range(indptr[row], indptr[row + 1]):
                col = indices[pos]
                if col != row:
                    acc += data[pos] * x[col]
            new_value = (b[row] - acc) / diagonal[row]
            new_value = x[row] + omega_factor * (new_value - x[row])
            delta = abs(new_value - x[row])
            if delta > residual:
                residual = delta
            x[row] = new_value
        if residual <= tolerance:
            return x, SolverStats(method, iteration, residual, True)
    raise ConvergenceError(method, max_iterations, residual)


def gauss_seidel(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by the Gauss–Seidel method (SOR with factor 1)."""
    return sor(
        matrix,
        rhs,
        omega_factor=1.0,
        x0=x0,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


def solve_direct(matrix: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` with scipy's sparse LU factorization."""
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    solution = spla.spsolve(sp.csc_matrix(csr), b)
    return np.atleast_1d(np.asarray(solution, dtype=float))


def solve_linear_system(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    method: str = "gauss-seidel",
    **kwargs,
) -> np.ndarray:
    """Solve ``A x = b`` with a named method.

    Parameters
    ----------
    method:
        One of ``"gauss-seidel"``, ``"jacobi"``, ``"sor"``, ``"direct"``.
    kwargs:
        Forwarded to the chosen solver (``tolerance``, ``max_iterations``,
        ``omega_factor`` for SOR).
    """
    if method == "direct":
        return solve_direct(matrix, rhs)
    if method == "gauss-seidel":
        solution, _ = gauss_seidel(matrix, rhs, **kwargs)
        return solution
    if method == "jacobi":
        solution, _ = jacobi(matrix, rhs, **kwargs)
        return solution
    if method == "sor":
        solution, _ = sor(matrix, rhs, **kwargs)
        return solution
    raise NumericalError(f"unknown linear solver {method!r}")
