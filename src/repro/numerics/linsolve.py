"""Sparse linear-system solvers used by the model checker.

The steady-state operator and the unbounded-until operator both reduce to
sparse linear systems (Sections 4.2 and 3.8.2 of the paper).  The paper's
implementation uses the Gauss–Seidel method; this module provides that
solver plus Jacobi, SOR and a direct sparse solve so the ablation
benchmarks can compare them.

All iterative solvers work on ``scipy.sparse`` matrices in CSR format and
report diagnostics via :class:`SolverStats`.  Convergence is gated on the
**true residual** ``‖b − A x‖∞``: the successive-iterate delta
``‖x_{k+1} − x_k‖∞`` is only a cheap *progress* indicator and can be
arbitrarily smaller than the residual (for Jacobi it equals
``‖D⁻¹ r‖∞``, so a large diagonal — or a slowly contracting iteration on
a near-singular BSCC system — shrinks the delta long before the system
is actually solved).  The delta is still reported separately as
:attr:`SolverStats.delta`, and the residual check only runs once the
delta falls below the tolerance, so well-conditioned solves pay a single
extra sparse matrix–vector product.  When a recording
:mod:`repro.obs` collector is ambient, the true residual is additionally
sampled every few sweeps (every :data:`_SERIES_SWEEP_STRIDE`-th, plus
every convergence-candidate sweep) to feed the ``linsolve.residual``
time-series channel — the convergence gate itself is unchanged, so
iterates (and iteration counts) are bitwise-identical with or without
observation.

:func:`solve_linear_system` additionally degrades gracefully: when the
chosen iterative method raises :class:`~repro.exceptions.ConvergenceError`,
it falls back to the direct sparse LU solve instead of aborting the whole
``Sat()`` recursion, and records the fallback through the ambient
:mod:`repro.obs` collector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ConvergenceError, NumericalError
from repro.guard import get_guard
from repro.obs import get_collector

__all__ = [
    "SolverStats",
    "gauss_seidel",
    "jacobi",
    "sor",
    "solve_direct",
    "solve_linear_system",
]

DEFAULT_TOLERANCE = 1e-12
DEFAULT_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class SolverStats:
    """Diagnostics for one linear solve.

    Attributes
    ----------
    method:
        Solver name (``"jacobi"``, ``"gauss-seidel"``, ``"sor(w)"``,
        ``"direct"``).
    iterations:
        Iterations performed (0 for the direct solver).
    residual:
        The **true residual** ``‖b − A x‖∞`` of the returned solution.
    converged:
        Whether the residual met the tolerance (always ``True`` for
        results returned normally; kept for fallback reporting).
    delta:
        The last successive-iterate change ``‖x_{k+1} − x_k‖∞`` — a
        progress indicator, *not* the convergence criterion (0.0 for the
        direct solver).
    """

    method: str
    iterations: int
    residual: float
    converged: bool
    delta: float = 0.0


def _as_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    csr = sp.csr_matrix(matrix)
    if csr.shape[0] != csr.shape[1]:
        raise NumericalError(f"matrix must be square, got shape {csr.shape}")
    return csr


def _check_rhs(matrix: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
    vector = np.asarray(rhs, dtype=float).ravel()
    if vector.shape[0] != matrix.shape[0]:
        raise NumericalError(
            f"rhs length {vector.shape[0]} does not match matrix order {matrix.shape[0]}"
        )
    return vector


def _extract_diagonal(matrix: sp.csr_matrix) -> np.ndarray:
    diagonal = matrix.diagonal()
    if np.any(diagonal == 0.0):
        raise NumericalError(
            "matrix has a zero diagonal entry; relaxation methods need a "
            "non-singular diagonal"
        )
    return diagonal


def _true_residual(csr: sp.csr_matrix, x: np.ndarray, b: np.ndarray) -> float:
    """``‖b − A x‖∞`` — the honest convergence measure."""
    return float(np.max(np.abs(b - csr.dot(x)))) if b.size else 0.0


#: Sweeps between ``linsolve.residual`` trajectory samples.  Sampling
#: every sweep would double the per-sweep matvec count for Jacobi; every
#: 8th sweep (plus every convergence-candidate sweep, which computes the
#: residual anyway) keeps the trajectory dense enough to read while
#: staying inside the instrumentation overhead budget.
_SERIES_SWEEP_STRIDE = 8


def jacobi(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by Jacobi iteration.

    ``x_{k+1} = D^{-1} (b - (A - D) x_k)``.  Converges for strictly
    diagonally dominant systems, which covers the absorbing-chain systems
    produced by the model checker.  Convergence is declared only when the
    true residual ``‖b − A x‖∞`` meets the tolerance; the iterate delta
    alone is not trusted (it is ``‖D⁻¹ r‖∞``, which understates the
    residual whenever the diagonal is large).
    """
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    diagonal = _extract_diagonal(csr)
    off = csr - sp.diags(diagonal)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    delta = float("inf")
    residual = float("inf")
    guard = get_guard()
    mem_estimate = (
        int(csr.data.nbytes + off.data.nbytes + 4 * b.nbytes)
        if guard.enabled
        else None
    )
    obs = get_collector()
    series = obs.series("linsolve.residual") if obs.enabled else None
    for iteration in range(1, max_iterations + 1):
        if guard.enabled:
            guard.checkpoint("linsolve.jacobi", mem_bytes=mem_estimate)
        x_next = (b - off.dot(x)) / diagonal
        delta = float(np.max(np.abs(x_next - x))) if b.size else 0.0
        stalled = delta == 0.0
        x = x_next
        record = series is not None and (
            delta <= tolerance or iteration % _SERIES_SWEEP_STRIDE == 0
        )
        if delta <= tolerance or record:
            # Recording the residual trajectory never changes the
            # convergence decision: the gate below is identical with or
            # without an observer, so iterates stay bitwise-equal.
            residual = _true_residual(csr, x, b)
            if record:
                series.append(float(iteration), residual)
            if delta <= tolerance:
                if residual <= tolerance:
                    return x, SolverStats("jacobi", iteration, residual, True, delta)
                if stalled:
                    # The iteration is a fixed point that does not solve
                    # the system to tolerance; more sweeps cannot help.
                    break
    if not np.isfinite(residual) or residual == float("inf"):
        residual = _true_residual(csr, x, b)
    raise ConvergenceError("jacobi", max_iterations, residual)


def sor(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    omega_factor: float = 1.0,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by successive over-relaxation.

    With ``omega_factor = 1`` this is exactly the Gauss–Seidel method the
    paper's implementation uses.  The sweep walks CSR rows in place so no
    dense matrix is formed.  As with :func:`jacobi`, the per-sweep iterate
    delta only *triggers* the convergence test; the decision is made on
    the true residual ``‖b − A x‖∞``.
    """
    if not (0.0 < omega_factor < 2.0):
        raise NumericalError("SOR relaxation factor must lie in (0, 2)")
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    _extract_diagonal(csr)  # validates
    n = csr.shape[0]
    x = np.zeros(n, dtype=float) if x0 is None else np.asarray(x0, dtype=float).copy()

    indptr, indices, data = csr.indptr, csr.indices, csr.data
    diagonal = np.zeros(n, dtype=float)
    for row in range(n):
        for pos in range(indptr[row], indptr[row + 1]):
            if indices[pos] == row:
                diagonal[row] = data[pos]

    method = "gauss-seidel" if omega_factor == 1.0 else f"sor({omega_factor:g})"
    delta = float("inf")
    residual = float("inf")
    guard = get_guard()
    mem_estimate = (
        int(csr.data.nbytes + 3 * x.nbytes) if guard.enabled else None
    )
    obs = get_collector()
    series = obs.series("linsolve.residual") if obs.enabled else None
    for iteration in range(1, max_iterations + 1):
        if guard.enabled:
            guard.checkpoint("linsolve.sweep", mem_bytes=mem_estimate)
        delta = 0.0
        for row in range(n):
            acc = 0.0
            for pos in range(indptr[row], indptr[row + 1]):
                col = indices[pos]
                if col != row:
                    acc += data[pos] * x[col]
            new_value = (b[row] - acc) / diagonal[row]
            new_value = x[row] + omega_factor * (new_value - x[row])
            change = abs(new_value - x[row])
            if change > delta:
                delta = change
            x[row] = new_value
        record = series is not None and (
            delta <= tolerance or iteration % _SERIES_SWEEP_STRIDE == 0
        )
        if delta <= tolerance or record:
            # Trajectory recording must not perturb convergence: the
            # decision below is gated exactly as without an observer.
            residual = _true_residual(csr, x, b)
            if record:
                series.append(float(iteration), residual)
            if delta <= tolerance:
                if residual <= tolerance:
                    return x, SolverStats(method, iteration, residual, True, delta)
                if delta == 0.0:
                    break  # stalled at a fixed point short of the tolerance
    if not np.isfinite(residual) or residual == float("inf"):
        residual = _true_residual(csr, x, b)
    raise ConvergenceError(method, max_iterations, residual)


def gauss_seidel(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[np.ndarray, SolverStats]:
    """Solve ``A x = b`` by the Gauss–Seidel method (SOR with factor 1)."""
    return sor(
        matrix,
        rhs,
        omega_factor=1.0,
        x0=x0,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


def solve_direct(matrix: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` with scipy's sparse LU factorization."""
    csr = _as_csr(matrix)
    b = _check_rhs(csr, rhs)
    solution = spla.spsolve(sp.csc_matrix(csr), b)
    return np.atleast_1d(np.asarray(solution, dtype=float))


def solve_linear_system(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    method: str = "gauss-seidel",
    fallback: bool = True,
    **kwargs,
) -> np.ndarray:
    """Solve ``A x = b`` with a named method.

    Parameters
    ----------
    method:
        One of ``"gauss-seidel"``, ``"jacobi"``, ``"sor"``, ``"direct"``.
    fallback:
        When an iterative method raises
        :class:`~repro.exceptions.ConvergenceError`, retry with the
        direct sparse solve instead of propagating the error (default).
        The fallback is recorded as a ``linsolve.fallback`` event on the
        ambient :mod:`repro.obs` collector, and the direct solve's true
        residual still feeds the run's error budget.
    kwargs:
        Forwarded to the chosen solver (``tolerance``, ``max_iterations``,
        ``omega_factor`` for SOR).
    """
    obs = get_collector()
    if method == "direct":
        solution = solve_direct(matrix, rhs)
        if obs.enabled:
            csr = _as_csr(matrix)
            residual = _true_residual(csr, solution, _check_rhs(csr, rhs))
            obs.event(
                "linsolve",
                method="direct",
                iterations=0,
                residual=float(residual),
                converged=True,
            )
        return solution
    if method == "gauss-seidel":
        solver = gauss_seidel
    elif method == "jacobi":
        solver = jacobi
    elif method == "sor":
        solver = sor
    else:
        raise NumericalError(f"unknown linear solver {method!r}")
    try:
        solution, stats = solver(matrix, rhs, **kwargs)
    except ConvergenceError as error:
        if not fallback:
            raise
        if obs.enabled:
            obs.event(
                "linsolve.fallback",
                method=error.method,
                iterations=int(error.iterations),
                residual=float(error.residual),
            )
        obs.counter_add("linsolve.fallbacks")
        solution = solve_direct(matrix, rhs)
        if obs.enabled:
            csr = _as_csr(matrix)
            residual = _true_residual(csr, solution, _check_rhs(csr, rhs))
            obs.event(
                "linsolve",
                method="direct",
                iterations=0,
                residual=float(residual),
                converged=True,
            )
        return solution
    if obs.enabled:
        obs.event(
            "linsolve",
            method=stats.method,
            iterations=int(stats.iterations),
            residual=float(stats.residual),
            converged=bool(stats.converged),
            delta=float(stats.delta),
        )
    return solution
