"""Numerical substrate: intervals, Poisson weights, linear solvers, order statistics."""

from repro.numerics.intervals import Interval
from repro.numerics.poisson import (
    FoxGlynnWeights,
    fox_glynn,
    poisson_pmf,
    poisson_weights,
    poisson_tail_from,
)
from repro.numerics.linsolve import (
    SolverStats,
    gauss_seidel,
    jacobi,
    solve_direct,
    solve_linear_system,
    sor,
)
from repro.numerics.orderstat import OmegaCalculator, omega

__all__ = [
    "Interval",
    "FoxGlynnWeights",
    "fox_glynn",
    "poisson_pmf",
    "poisson_weights",
    "poisson_tail_from",
    "SolverStats",
    "gauss_seidel",
    "jacobi",
    "sor",
    "solve_direct",
    "solve_linear_system",
    "OmegaCalculator",
    "omega",
]
