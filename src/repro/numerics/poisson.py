"""Poisson probabilities for uniformization.

Uniformization expresses CTMC transient probabilities as a Poisson mixture
of DTMC step distributions (eq. 2.2 of the paper).  Two computations are
provided:

* :func:`poisson_pmf` / :func:`poisson_weights` — the straightforward
  recursive scheme used by Algorithm 4.7 of the paper
  (``P_0 = exp(-L t)``, ``P_i = (L t / i) * P_{i-1}``), adequate for the
  moderate ``Lambda * t`` regime in which path-based uniformization is
  applicable at all;
* :func:`poisson_pmf_table` — the same probabilities evaluated entry-wise
  in log space (vectorized), which stays exact-to-rounding for large
  ``Lambda * t`` where the recursive scheme's seed ``exp(-L t)``
  underflows to zero and silently destroys the whole table (used by the
  path engine's truncation tables);
* :func:`fox_glynn` — the Fox–Glynn algorithm, which computes a window
  ``[left, right]`` of numerically significant weights without underflow,
  for large ``Lambda * t`` (used by the CSL-style time-bounded until
  engine and by the ablation benchmarks).

All functions operate on ``lam_t = Lambda * t >= 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.special

from repro.exceptions import NumericalError

__all__ = [
    "poisson_pmf",
    "poisson_pmf_table",
    "poisson_weights",
    "poisson_tail_from",
    "FoxGlynnWeights",
    "fox_glynn",
]


def poisson_pmf(lam_t: float, n: int) -> float:
    """Probability of exactly ``n`` Poisson events, ``e^{-lt} (lt)^n / n!``.

    Computed in log space so large ``n`` does not overflow.
    """
    if lam_t < 0:
        raise NumericalError("Poisson parameter must be non-negative")
    if n < 0:
        return 0.0
    if lam_t == 0.0:
        return 1.0 if n == 0 else 0.0
    log_p = -lam_t + n * math.log(lam_t) - math.lgamma(n + 1)
    return math.exp(log_p)


def poisson_pmf_table(lam_t: float, depth: int) -> np.ndarray:
    """Vectorized ``pmf(0..depth; lam_t)`` evaluated in log space.

    Unlike :func:`poisson_weights` (the recursive scheme seeded at
    ``e^{-lt}``), each entry is exponentiated from its own log value
    ``-lt + n log(lt) - lgamma(n+1)``, so a single underflowing entry —
    typically the head of the distribution for ``lam_t >~ 745`` — never
    poisons the rest of the table.  Entries whose true value lies below
    the smallest positive double round to 0.0, which is the correctly
    rounded result.
    """
    if lam_t < 0:
        raise NumericalError("Poisson parameter must be non-negative")
    if depth < 0:
        raise NumericalError("depth must be non-negative")
    if not math.isfinite(lam_t):
        raise NumericalError("Poisson parameter must be finite")
    table = np.zeros(depth + 1, dtype=float)
    if lam_t == 0.0:
        table[0] = 1.0
        return table
    indices = np.arange(depth + 1, dtype=float)
    log_pmf = -lam_t + indices * math.log(lam_t) - scipy.special.gammaln(indices + 1.0)
    return np.exp(log_pmf)


def poisson_weights(lam_t: float, depth: int) -> np.ndarray:
    """Weights ``P_0 .. P_depth`` by the recursive scheme of Algorithm 4.7.

    ``P_0 = e^{-lt}``, ``P_i = (lt / i) P_{i-1}``.  For very large
    ``lam_t`` the first term underflows to zero and every weight in the
    window would be reported as zero; in that regime use
    :func:`fox_glynn` instead.  A :class:`NumericalError` is raised when
    underflow would silently destroy all mass.
    """
    if lam_t < 0:
        raise NumericalError("Poisson parameter must be non-negative")
    if depth < 0:
        raise NumericalError("depth must be non-negative")
    weights = np.zeros(depth + 1, dtype=float)
    first = math.exp(-lam_t) if lam_t < 745.0 else 0.0
    if first == 0.0 and lam_t > 0.0:
        raise NumericalError(
            f"recursive Poisson weights underflow at Lambda*t = {lam_t:g}; "
            "use fox_glynn() for large Poisson parameters"
        )
    weights[0] = first
    for i in range(1, depth + 1):
        weights[i] = weights[i - 1] * (lam_t / i)
    return weights


def poisson_tail_from(lam_t: float, n: int) -> float:
    """Upper tail ``Pr{N >= n} = 1 - sum_{i<n} pmf(i)``.

    This is the factor ``1 - sum_{i=0}^{n-1} e^{-lt}(lt)^i / i!`` in the
    truncation-error bound of Section 4.6.1.  Computed by summing the
    complementary mass directly when that is the smaller sum, to avoid
    catastrophic cancellation.
    """
    if lam_t < 0:
        raise NumericalError("Poisson parameter must be non-negative")
    if n <= 0:
        return 1.0
    if lam_t == 0.0:
        return 0.0
    # Sum whichever side is smaller.
    if n <= lam_t:
        # Head is the smaller mass only when n is well below the mean;
        # otherwise summing the head then subtracting is accurate enough.
        head = 0.0
        term = math.exp(-lam_t) if lam_t < 745.0 else 0.0
        if term == 0.0:
            # Deep-underflow regime: fall back to log-space accumulation.
            head = sum(poisson_pmf(lam_t, i) for i in range(n))
            return max(0.0, 1.0 - head)
        for i in range(n):
            head += term
            term *= lam_t / (i + 1)
        return max(0.0, 1.0 - head)
    # n > mean: sum the tail directly until terms vanish.
    tail = 0.0
    term = poisson_pmf(lam_t, n)
    i = n
    while term > 0.0:
        tail += term
        i += 1
        term *= lam_t / i
        if i > n + 10_000_000:  # pragma: no cover - defensive
            raise NumericalError("Poisson tail sum failed to terminate")
    return min(1.0, tail)


@dataclass(frozen=True)
class FoxGlynnWeights:
    """Result of the Fox–Glynn computation.

    Attributes
    ----------
    left, right:
        The window of significant indices (inclusive).
    weights:
        Normalized weights ``w[i]`` for ``i in [left, right]``; entry ``k``
        of the array corresponds to index ``left + k``.  They sum to the
        retained probability mass (``~1`` up to the requested accuracy).
    total:
        The sum of the retained weights before normalization, kept for
        diagnostics.
    """

    left: int
    right: int
    weights: np.ndarray
    total: float

    def weight(self, n: int) -> float:
        """Normalized Poisson weight for index ``n`` (0 outside the window)."""
        if n < self.left or n > self.right:
            return 0.0
        return float(self.weights[n - self.left])

    def __len__(self) -> int:
        return self.right - self.left + 1


def _find_right(lam_t: float, epsilon: float) -> int:
    """Smallest ``R`` with ``Pr{N > R} <= epsilon / 2`` (Chernoff-guided scan)."""
    mean = lam_t
    std = math.sqrt(lam_t)
    # Start a few standard deviations out and extend until the tail bound holds.
    n = int(mean + 4.0 * std + 5.0)
    while poisson_tail_from(lam_t, n + 1) > epsilon / 2.0:
        n = int(n * 1.1) + 5
        if n > mean + 2000 * (std + 1):  # pragma: no cover - defensive
            raise NumericalError("Fox-Glynn right bound search failed")
    return n


def _find_left(lam_t: float, epsilon: float) -> int:
    """Largest ``L`` with ``Pr{N < L} <= epsilon / 2``."""
    if lam_t < 25.0:
        return 0
    mean = lam_t
    std = math.sqrt(lam_t)
    n = max(0, int(mean - 4.0 * std - 5.0))
    while n > 0:
        head = 1.0 - poisson_tail_from(lam_t, n)
        if head <= epsilon / 2.0:
            return n
        n = max(0, n - max(1, int(std)))
    return 0


def fox_glynn(lam_t: float, epsilon: float = 1e-12) -> FoxGlynnWeights:
    """Fox–Glynn style computation of significant Poisson weights.

    Finds the window ``[left, right]`` outside which the Poisson
    probability mass is below ``epsilon``, and computes the weights inside
    the window by the stable outward recurrence anchored at the mode (so
    no intermediate value underflows), then normalizes.

    Parameters
    ----------
    lam_t:
        The Poisson parameter ``Lambda * t``.
    epsilon:
        Total truncated probability mass allowed outside the window.
    """
    if lam_t < 0:
        raise NumericalError("Poisson parameter must be non-negative")
    if not (0.0 < epsilon < 1.0):
        raise NumericalError("epsilon must lie in (0, 1)")
    if lam_t == 0.0:
        return FoxGlynnWeights(left=0, right=0, weights=np.array([1.0]), total=1.0)

    left = _find_left(lam_t, epsilon)
    right = _find_right(lam_t, epsilon)
    mode = int(lam_t)
    mode = min(max(mode, left), right)

    size = right - left + 1
    raw: List[float] = [0.0] * size
    # Anchor at the mode with an arbitrary scale and recur outwards; the
    # ratios pmf(i+1)/pmf(i) = lam_t/(i+1) are well conditioned.
    anchor = 1.0
    raw[mode - left] = anchor
    value = anchor
    for i in range(mode, left, -1):
        value = value * (i / lam_t)
        raw[i - 1 - left] = value
    value = anchor
    for i in range(mode, right):
        value = value * (lam_t / (i + 1))
        raw[i + 1 - left] = value

    arr = np.asarray(raw, dtype=float)
    total = float(arr.sum())
    if total <= 0.0 or not math.isfinite(total):  # pragma: no cover - defensive
        raise NumericalError("Fox-Glynn normalization failed")
    # Scale so the window carries exactly the retained mass (1 - truncated).
    retained = 1.0 - poisson_tail_from(lam_t, right + 1)
    if left > 0:
        retained -= 1.0 - poisson_tail_from(lam_t, left)
    retained = min(max(retained, 0.0), 1.0)
    arr = arr * (retained / total)
    return FoxGlynnWeights(left=left, right=right, weights=arr, total=retained)
