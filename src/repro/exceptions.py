"""Typed exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing model-construction problems, formula problems and
numerical problems when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A stochastic model (DTMC, CTMC, MRM) is malformed.

    Raised by model constructors when a matrix has the wrong shape, a rate
    or probability is negative, rows of a stochastic matrix do not sum to
    one, or a reward structure violates Definition 3.1 (an impulse reward
    on a self-loop must be zero).
    """


class LabelingError(ModelError):
    """A labeling function refers to unknown states or invalid propositions."""


class RewardError(ModelError):
    """A reward structure is malformed (negative rewards, bad shapes)."""


class FormulaError(ReproError):
    """A CSRL formula is syntactically or structurally invalid."""


class ParseError(FormulaError):
    """A front end (CSRL formula or ``.mrm`` model) rejected its input.

    Since the front ends recover at synchronization points instead of
    aborting, one raised ``ParseError`` summarizes a whole run: the
    message describes the *first* error (with its stable code) and the
    complete list — warnings included — is available as
    :attr:`diagnostics`.

    Attributes
    ----------
    position:
        Character offset in the input at which parsing failed, or ``None``
        when the error is not tied to a specific offset.
    diagnostics:
        Every :class:`repro.diag.Diagnostic` collected during the run
        (errors and warnings, in source order).  Empty for errors raised
        outside a sink-driven parse.
    """

    def __init__(
        self,
        message: str,
        position: "int | None" = None,
        diagnostics: "tuple | list" = (),
    ) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position
        self.diagnostics = tuple(diagnostics)

    def __reduce__(self):
        # The appended position suffix must not be re-applied on unpickle.
        return (_rebuild_parse_error, (type(self), self.args[0], self.position, self.diagnostics))


def _rebuild_parse_error(cls, message, position, diagnostics):
    error = cls.__new__(cls)
    Exception.__init__(error, message)
    error.position = position
    error.diagnostics = diagnostics
    return error


class CheckError(ReproError):
    """Model checking could not be carried out for a structural reason.

    For example: an until formula with reward bounds was handed to an
    engine that only supports unbounded rewards, or a formula refers to an
    atomic proposition the model does not declare.
    """


class NumericalError(ReproError):
    """A numerical routine failed to produce a trustworthy answer.

    Raised when an iterative solver does not converge within its iteration
    budget, or when discretization preconditions (integral rewards,
    ``iota/d`` integral) are violated.
    """


class GuardExceeded(ReproError):
    """A :class:`repro.guard.Guard` budget was exhausted at a checkpoint.

    Raised cooperatively by the engines' hot loops, never asynchronously:
    computation is abandoned at a well-defined point (a Poisson epoch, a
    frontier merge, a discretization column, a solver sweep), so the
    degradation cascade can re-run the failed sub-problem with a cheaper
    engine tier.

    Attributes
    ----------
    phase:
        The checkpoint label at which the budget tripped (e.g.
        ``"until.columnar"``), or ``None``.
    """

    def __init__(self, message: str, phase: "str | None" = None) -> None:
        super().__init__(message)
        self.phase = phase

    def __reduce__(self):
        # Keep worker-to-parent pickling exact (fan-out pool workers may
        # trip a guard and ship the exception back).
        return (type(self), (self.args[0], self.phase))


class DeadlineExceeded(GuardExceeded):
    """The guard's wall-clock deadline passed before the work finished."""


class MemoryBudgetExceeded(GuardExceeded):
    """The guard's memory budget was exceeded by the working set."""


class WorkerError(ReproError):
    """A fan-out pool worker failed outside the library's control.

    Wraps worker deaths the OS inflicts (OOM kill, signals, a crashing
    initializer) and per-shard timeouts in a typed error, so callers see
    one library exception instead of a raw ``multiprocessing`` internals
    traceback — or, worse, a hang.  The pool recovers by re-running the
    failed shards serially; this error only propagates when even the
    serial re-execution fails.

    Attributes
    ----------
    shard:
        The initial states of the failed shard, if known.
    """

    def __init__(self, message: str, shard: "tuple | None" = None) -> None:
        super().__init__(message)
        self.shard = tuple(shard) if shard is not None else None

    def __reduce__(self):
        return (type(self), (self.args[0], self.shard))


class ConvergenceError(NumericalError):
    """An iterative method exhausted its iteration budget before converging."""

    def __init__(self, method: str, iterations: int, residual: float) -> None:
        super().__init__(
            f"{method} did not converge within {iterations} iterations "
            f"(last residual {residual:.3e})"
        )
        self.method = method
        self.iterations = iterations
        self.residual = residual


class FileFormatError(ReproError):
    """A ``.tra``/``.lab``/``.rewr``/``.rewi`` file is malformed.

    Attributes
    ----------
    path:
        The file being read, if known.
    line:
        1-based line number at which the problem was detected, if known.
    """

    def __init__(
        self,
        message: str,
        path: "str | None" = None,
        line: "int | None" = None,
    ) -> None:
        prefix = ""
        if path is not None:
            prefix = f"{path}:"
            if line is not None:
                prefix += f"{line}:"
            prefix += " "
        super().__init__(prefix + message)
        self.path = path
        self.line = line
