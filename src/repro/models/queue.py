"""An M/M/1/K queue as an MRM with impulse rewards (additional workload).

A classical capacity-planning model exercising the library on a second
domain (the paper's introduction motivates performability with service
systems): jobs arrive at rate ``arrival_rate``, are served at rate
``service_rate``, and at most ``capacity`` jobs fit in the system.

Rewards model operating cost:

* state reward ``holding_cost * n`` in the state with ``n`` jobs —
  holding/energy cost accrues per queued job per time unit;
* impulse reward ``loss_penalty`` on every arrival *rejected* at the
  full queue.  Since a rejected arrival does not change the state, the
  loss is modeled by an explicit overflow event: the full state carries
  a self-loop at the arrival rate.  Definition 3.1 forbids impulse
  rewards on self-loops, so the overflow is routed through a dedicated
  instantaneous-recovery ``overflow`` state (entered with the
  loss-penalty impulse, left at ``recovery_rate >> arrival_rate``),
  a standard encoding of impulse-on-non-move events.

Labels: ``empty`` (0 jobs), ``full`` (K jobs), ``congested`` (more than
``ceil(2K/3)`` jobs), ``overflow`` on the overflow state, and ``qN`` per
occupancy level ``N``.
"""

from __future__ import annotations

import math

from repro.exceptions import ModelError
from repro.mrm.builder import MRMBuilder
from repro.mrm.model import MRM

__all__ = ["build_mm1k_queue"]


def build_mm1k_queue(
    capacity: int = 8,
    arrival_rate: float = 0.8,
    service_rate: float = 1.0,
    holding_cost: float = 1.0,
    loss_penalty: float = 10.0,
    recovery_rate: float = 1000.0,
) -> MRM:
    """Build the M/M/1/K cost model described in the module docstring.

    Parameters
    ----------
    capacity:
        Maximum number of jobs in the system, ``K >= 1``.
    arrival_rate, service_rate:
        The Poisson arrival and exponential service rates.
    holding_cost:
        Reward rate per job in the system.
    loss_penalty:
        Impulse reward charged per rejected arrival.
    recovery_rate:
        Rate of the instantaneous-recovery transition out of the
        overflow state; must dominate the other rates for the encoding
        to be faithful.
    """
    if capacity < 1:
        raise ModelError("queue capacity must be at least 1")
    if arrival_rate <= 0 or service_rate <= 0:
        raise ModelError("arrival and service rates must be positive")
    if recovery_rate < 10 * max(arrival_rate, service_rate):
        raise ModelError(
            "recovery rate must dominate the arrival/service rates for the "
            "overflow encoding to be faithful"
        )

    builder = MRMBuilder()
    congestion_threshold = math.ceil(2 * capacity / 3)
    for jobs in range(capacity + 1):
        labels = {f"q{jobs}"}
        if jobs == 0:
            labels.add("empty")
        if jobs == capacity:
            labels.add("full")
        if jobs >= congestion_threshold:
            labels.add("congested")
        builder.state(f"{jobs}-jobs", labels=labels, reward=holding_cost * jobs)
    builder.state(
        "overflow",
        labels={"overflow", "full", "congested"},
        reward=holding_cost * capacity,
    )

    for jobs in range(capacity):
        builder.transition(f"{jobs}-jobs", f"{jobs + 1}-jobs", rate=arrival_rate)
        builder.transition(f"{jobs + 1}-jobs", f"{jobs}-jobs", rate=service_rate)
    # Rejected arrival at the full queue: charged the loss penalty, then
    # instantaneous recovery back to the full state.
    builder.transition(
        f"{capacity}-jobs", "overflow", rate=arrival_rate, impulse=loss_penalty
    )
    builder.transition("overflow", f"{capacity}-jobs", rate=recovery_rate)
    return builder.build()
