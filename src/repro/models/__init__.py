"""Ready-made models from the paper's examples and experiments."""

from repro.models.wavelan import WAVELAN_RATES, build_wavelan_ctmc, build_wavelan_modem
from repro.models.tmr import TMRParameters, TMRRewards, build_tmr
from repro.models.phone import build_phone_model
from repro.models.queue import build_mm1k_queue
from repro.models.textbook import build_bscc_example, build_figure_2_1_dtmc

__all__ = [
    "build_wavelan_modem",
    "build_wavelan_ctmc",
    "WAVELAN_RATES",
    "build_tmr",
    "TMRParameters",
    "TMRRewards",
    "build_phone_model",
    "build_mm1k_queue",
    "build_figure_2_1_dtmc",
    "build_bscc_example",
]
