"""The WaveLAN modem MRM (Examples 2.4, 3.1 and 4.2 of the paper).

Five operating modes — off, sleep, idle, receive, transmit — with the
power-consumption reward structure of [Pau01]:

* state rewards (mW): off 0, sleep 80, idle 1319, receive 1675,
  transmit 1425;
* impulse rewards (mJ) for the mode switches that take measurable time:
  off->sleep 0.02, sleep->idle 0.32975, idle->receive 0.42545,
  idle->transmit 0.36195.

State indices: 0 = off, 1 = sleep, 2 = idle, 3 = receive, 4 = transmit.
(The paper numbers them 1..5.)
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.ctmc.chain import CTMC
from repro.mrm.model import MRM

__all__ = ["WAVELAN_RATES", "build_wavelan_ctmc", "build_wavelan_modem"]

OFF, SLEEP, IDLE, RECEIVE, TRANSMIT = range(5)

#: Default transition rates (per hour) from Example 4.2.
WAVELAN_RATES: Dict[str, float] = {
    "lambda_os": 0.1,  # off -> sleep
    "lambda_si": 5.0,  # sleep -> idle
    "lambda_ir": 1.5,  # idle -> receive
    "lambda_it": 0.75,  # idle -> transmit
    "mu_so": 0.05,  # sleep -> off
    "mu_is": 12.0,  # idle -> sleep
    "mu_ri": 10.0,  # receive -> idle
    "mu_ti": 15.0,  # transmit -> idle
}

#: State rewards in mW (power drawn in each mode), from [Pau01].
_STATE_REWARDS = [0.0, 80.0, 1319.0, 1675.0, 1425.0]

#: Impulse rewards in mJ (energy of the mode switches), from Example 3.1.
_IMPULSE_REWARDS = {
    (OFF, SLEEP): 80.0 * 250e-6,  # 0.02 mJ
    (SLEEP, IDLE): 1319.0 * 250e-6,  # 0.32975 mJ
    (IDLE, RECEIVE): 1675.0 * 254e-6,  # 0.42545 mJ
    (IDLE, TRANSMIT): 1425.0 * 254e-6,  # 0.36195 mJ
}


def build_wavelan_ctmc(rates: "Mapping[str, float] | None" = None) -> CTMC:
    """The labeled CTMC of Example 2.4 (no rewards).

    Parameters
    ----------
    rates:
        Optional overrides for any of the keys of :data:`WAVELAN_RATES`.
    """
    values = dict(WAVELAN_RATES)
    if rates:
        unknown = set(rates) - set(values)
        if unknown:
            raise KeyError(f"unknown WaveLAN rate parameters: {sorted(unknown)}")
        values.update({key: float(rate) for key, rate in rates.items()})
    matrix = [[0.0] * 5 for _ in range(5)]
    matrix[OFF][SLEEP] = values["lambda_os"]
    matrix[SLEEP][OFF] = values["mu_so"]
    matrix[SLEEP][IDLE] = values["lambda_si"]
    matrix[IDLE][SLEEP] = values["mu_is"]
    matrix[IDLE][RECEIVE] = values["lambda_ir"]
    matrix[IDLE][TRANSMIT] = values["lambda_it"]
    matrix[RECEIVE][IDLE] = values["mu_ri"]
    matrix[TRANSMIT][IDLE] = values["mu_ti"]
    labels = {
        OFF: {"off"},
        SLEEP: {"sleep"},
        IDLE: {"idle"},
        RECEIVE: {"receive", "busy"},
        TRANSMIT: {"transmit", "busy"},
    }
    names = ["off", "sleep", "idle", "receive", "transmit"]
    return CTMC(matrix, labels=labels, state_names=names)


def build_wavelan_modem(rates: "Mapping[str, float] | None" = None) -> MRM:
    """The full WaveLAN MRM of Example 3.1 (energy rewards included)."""
    return MRM(
        build_wavelan_ctmc(rates),
        state_rewards=_STATE_REWARDS,
        impulse_rewards=_IMPULSE_REWARDS,
    )
