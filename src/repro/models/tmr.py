"""The triple-modular redundant (TMR) system of Section 5.3 (Figure 5.2).

``N`` identical modules and one voter.  The voter delivers a verdict when
a majority of the modules works; with fewer working modules, or with the
voter down, the system has *failed*.  Failed modules are repaired one at
a time; a repaired voter restarts the system "as new" (all modules up).

State space (``N + 2`` states):

* states ``0 .. N`` — the voter is up and ``i`` modules work;
* state ``N + 1`` — the voter is down (``vdown``).

Labels: ``{i}up`` on state ``i``; ``allUp`` on state ``N``; ``Sup`` on
operational states (voter up and a majority of modules working);
``vdown`` on the voter-down state; ``failed`` on every non-operational
state.

Rates (Table 5.2/5.6): module failure ``0.0004/h`` (constant variant) or
``i * 0.0004/h`` from state ``i`` (variable variant), module repair
``0.05/h``, voter failure ``0.0001/h``, voter repair ``0.06/h``.

Reward structure — the thesis gives no numeric values ("no explicit
units are given"), only the interpretation that resources are consumed
while running and at a higher rate while repairs are under way, and that
*starting* a repair carries a substantial one-off effort (the impulse).
Our calibrated defaults (see DESIGN.md, substitution 2):

* state reward ``2 * (N - i) + 7`` in module-states (the more modules
  down, the costlier), ``15`` in the voter-down state — integers, so the
  discretization engine applies directly;
* impulse ``4`` on every module failure (repair initiation), ``8`` on
  voter failure and ``12`` on voter repair (system restart) — multiples
  of ``1/4`` so ``d = 0.25`` divides them.

With these values the reward bound ``r = 3000`` of the paper's formula
``P(Sup U^{<=t}_{<=3000} failed)`` starts binding near ``t ~ 430 h``,
reproducing the saturation of the checked probability around
``t = 400..450`` seen in Tables 5.3/5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ctmc.chain import CTMC
from repro.exceptions import ModelError
from repro.mrm.model import MRM

__all__ = ["TMRParameters", "TMRRewards", "TMR11_REWARDS", "build_tmr"]


@dataclass(frozen=True)
class TMRParameters:
    """Failure/repair rates of the TMR system (Table 5.2).

    ``variable_failure_rates`` switches to Table 5.6: module failure rate
    ``i * module_failure_rate`` from a state with ``i`` working modules.
    """

    module_failure_rate: float = 0.0004
    voter_failure_rate: float = 0.0001
    module_repair_rate: float = 0.05
    voter_repair_rate: float = 0.06
    variable_failure_rates: bool = False

    def __post_init__(self) -> None:
        for name in (
            "module_failure_rate",
            "voter_failure_rate",
            "module_repair_rate",
            "voter_repair_rate",
        ):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be non-negative")


@dataclass(frozen=True)
class TMRRewards:
    """Calibrated reward structure (see the module docstring).

    State reward in a voter-up state with ``i`` working modules is
    ``base_rate + repair_load * (N - i)``; the voter-down state earns
    ``vdown_rate``.  Impulses: ``module_failure_impulse`` on each module
    failure, ``voter_failure_impulse`` on voter failure,
    ``voter_repair_impulse`` on the restart transition.
    """

    base_rate: float = 7.0
    repair_load: float = 2.0
    vdown_rate: float = 15.0
    module_failure_impulse: float = 4.0
    voter_failure_impulse: float = 8.0
    voter_repair_impulse: float = 12.0

    def __post_init__(self) -> None:
        for name in (
            "base_rate",
            "repair_load",
            "vdown_rate",
            "module_failure_impulse",
            "voter_failure_impulse",
            "voter_repair_impulse",
        ):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be non-negative")


#: Reward calibration for the 11-module experiments (Tables 5.5/5.7).
#:
#: The 11-module system is a different machine than the 3-module one, so
#: we calibrate its (unpublished) rewards separately: with these values
#: the reward bound ``r = 2000`` of ``P(tt U^{<=100}_{<=2000} allUp)``
#: binds on the slower half of the successful repair trajectories, which
#: reproduces the suppression of the success probabilities relative to
#: the purely time-bounded values that Table 5.5 exhibits (e.g. ~0.16 at
#: n = 5 where the time-only probability would be ~0.38).
TMR11_REWARDS = TMRRewards(
    base_rate=10.0,
    repair_load=4.0,
    vdown_rate=30.0,
    module_failure_impulse=8.0,
    voter_failure_impulse=16.0,
    voter_repair_impulse=24.0,
)


def build_tmr(
    num_modules: int = 3,
    parameters: Optional[TMRParameters] = None,
    rewards: Optional[TMRRewards] = None,
) -> MRM:
    """Build the TMR MRM with ``num_modules`` modules plus a voter.

    Parameters
    ----------
    num_modules:
        ``N >= 1``; the paper uses 3 (Tables 5.3/5.4/5.8) and 11
        (Tables 5.5/5.7).
    parameters:
        Rates; defaults to Table 5.2 (constant failure rates).
    rewards:
        Reward structure; defaults to the calibrated values above.

    Returns
    -------
    MRM
        States ``0..N`` (voter up, ``i`` working modules) and ``N + 1``
        (voter down).
    """
    if num_modules < 1:
        raise ModelError("the TMR system needs at least one module")
    params = parameters or TMRParameters()
    costs = rewards or TMRRewards()
    n_states = num_modules + 2
    vdown = num_modules + 1
    majority = num_modules // 2 + 1

    rates = [[0.0] * n_states for _ in range(n_states)]
    impulses: Dict[Tuple[int, int], float] = {}
    labels: Dict[int, set] = {}
    state_rewards = [0.0] * n_states
    names = []

    for i in range(num_modules + 1):
        label_set = {f"{i}up"}
        if i == num_modules:
            label_set.add("allUp")
        operational = i >= majority
        if operational:
            label_set.add("Sup")
        else:
            label_set.add("failed")
        labels[i] = label_set
        names.append(f"{i}-working")
        state_rewards[i] = costs.base_rate + costs.repair_load * (num_modules - i)

        if i > 0:
            failure = params.module_failure_rate * (
                i if params.variable_failure_rates else 1
            )
            if failure > 0:
                rates[i][i - 1] = failure
                if costs.module_failure_impulse > 0:
                    impulses[(i, i - 1)] = costs.module_failure_impulse
        if i < num_modules and params.module_repair_rate > 0:
            rates[i][i + 1] = params.module_repair_rate
        if params.voter_failure_rate > 0:
            rates[i][vdown] = params.voter_failure_rate
            if costs.voter_failure_impulse > 0:
                impulses[(i, vdown)] = costs.voter_failure_impulse

    labels[vdown] = {"vdown", "failed"}
    names.append("voter-down")
    state_rewards[vdown] = costs.vdown_rate
    if params.voter_repair_rate > 0:
        rates[vdown][num_modules] = params.voter_repair_rate
        if costs.voter_repair_impulse > 0:
            impulses[(vdown, num_modules)] = costs.voter_repair_impulse

    chain = CTMC(rates, labels=labels, state_names=names)
    return MRM(chain, state_rewards=state_rewards, impulse_rewards=impulses)
