"""Small textbook chains from Chapters 2 and 3 of the paper.

* :func:`build_figure_2_1_dtmc` — the three-state DTMC of Figure 2.1,
  used by Examples 2.1–2.3 (transient probabilities after 3/15/25 steps,
  steady state ``[14/45, 16/45, 1/3]``).
* :func:`build_bscc_example` — the five-state CTMC of Figure 3.2 with two
  BSCCs ``{s3, s4}`` and ``{s5}``, used by Example 3.5
  (``pi(s1, Sat(b)) = 8/21``).
"""

from __future__ import annotations

from repro.ctmc.chain import CTMC
from repro.dtmc.chain import DTMC
from repro.mrm.model import MRM

__all__ = ["build_figure_2_1_dtmc", "build_bscc_example"]


def build_figure_2_1_dtmc() -> DTMC:
    """The DTMC of Figure 2.1."""
    return DTMC(
        [
            [0.5, 0.5, 0.0],
            [0.25, 0.0, 0.75],
            [0.2, 0.6, 0.2],
        ],
        state_names=["0", "1", "2"],
    )


def build_bscc_example() -> MRM:
    """The CTMC of Figure 3.2, wrapped as a reward-free MRM.

    States are indexed 0..4 for the paper's ``s1 .. s5``.  The rates are
    chosen to match Example 3.5: the embedded jump probabilities from
    ``s1`` and ``s2`` give ``P(s1, eventually B1) = 4/7``, and within
    ``B1 = {s3, s4}`` the stationary distribution puts ``2/3`` on the
    ``b``-labeled state ``s4``.
    """
    # s1 -> s2 (2), s1 -> s5 (1): embedded probabilities 2/3, 1/3.
    # s2 -> s3 (2), s2 -> s1 (1): embedded probabilities 2/3, 1/3.
    # B1: s3 <-> s4 with pi(s4) = 2/3 requires 2 * pi(s3) = pi(s4):
    #     rates s3 -> s4 = 2, s4 -> s3 = 1.
    # s5 is absorbing (B2).
    rates = [
        [0.0, 2.0, 0.0, 0.0, 1.0],
        [1.0, 0.0, 2.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 1.0, 0.0, 0.0],
        [0.0, 0.0, 0.0, 0.0, 0.0],
    ]
    labels = {
        0: {"a"},
        1: {"a"},
        2: {"a"},
        3: {"b"},
        4: {"c"},
    }
    chain = CTMC(rates, labels=labels, state_names=["s1", "s2", "s3", "s4", "s5"])
    return MRM(chain)
