"""A wireless-phone MRM standing in for the [Hav02] case study (Table 5.1).

The paper validates its discretization implementation against the case
study of Haverkort et al., *Model Checking Performability Properties*
(DSN 2002), whose model is not reproduced in the thesis text.  Known
constraints: the checked formula is
``P((Call_Idle || Doze) U^{<=24}_{<=600} Call_Initiated)``, the
transformed model ``M[!(Call_Idle || Doze) || Call_Initiated]`` has three
transient and two absorbing states, and the reference probability is
close to 0.495.

This module builds a structurally matching five-state model (see
DESIGN.md, substitution 1):

* 0 ``Call_Idle`` — fully awake, drawing the most power;
* 1 ``Doze`` (light doze);
* 2 ``Doze_deep`` (also labeled ``Doze``) — power-saving levels;
* 3 ``Call_Initiated`` — the target (absorbing after transformation);
* 4 ``Down`` — connectivity lost (neither ``Call_Idle`` nor ``Doze``).

State rewards model power draw in relative units (30 / 12 / 4), chosen
integral so discretization applies with no rescaling; there are no
impulse rewards — Table 5.1 is exactly the *without impulse rewards*
experiment.  The rates below were calibrated so the checked probability
(computed independently by the uniformization engine with error bound
below 1e-6) is ~0.495, mirroring the reference value 0.49540399 of
[Hav02].
"""

from __future__ import annotations

from typing import Dict

from repro.ctmc.chain import CTMC
from repro.mrm.model import MRM

__all__ = ["build_phone_model", "PHONE_FORMULA"]

CALL_IDLE, DOZE, DOZE_DEEP, CALL_INITIATED, DOWN = range(5)

#: The Table 5.1 formula in the tool's concrete syntax.
PHONE_FORMULA = "P(>0.5) [(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]"


def build_phone_model() -> MRM:
    """The five-state phone MRM described in the module docstring."""
    rates = [[0.0] * 5 for _ in range(5)]
    # Power management cycling between idle and the two doze levels.
    rates[CALL_IDLE][DOZE] = 0.70
    rates[DOZE][CALL_IDLE] = 0.35
    rates[DOZE][DOZE_DEEP] = 0.25
    rates[DOZE_DEEP][CALL_IDLE] = 0.12
    # Call initiation (the target event); dozing phones wake more slowly.
    # Calibrated so the Table 5.1 probability is ~0.4951 (reference value
    # of [Hav02]: 0.49540399); computed with the merged-strategy path
    # engine at w = 1e-12 (error bound 7e-9).
    rates[CALL_IDLE][CALL_INITIATED] = 0.063
    rates[DOZE][CALL_INITIATED] = 0.028
    rates[DOZE_DEEP][CALL_INITIATED] = 0.0112
    # Connectivity loss.
    rates[CALL_IDLE][DOWN] = 0.004
    rates[DOZE][DOWN] = 0.002
    # Recovery from the down state (irrelevant after transformation but
    # keeps the untransformed chain live).
    rates[DOWN][CALL_IDLE] = 0.50
    # A completed call returns to idle.
    rates[CALL_INITIATED][CALL_IDLE] = 2.0

    labels: Dict[int, set] = {
        CALL_IDLE: {"Call_Idle"},
        DOZE: {"Doze"},
        DOZE_DEEP: {"Doze"},
        CALL_INITIATED: {"Call_Initiated"},
        DOWN: {"Down"},
    }
    names = ["Call_Idle", "Doze", "Doze_deep", "Call_Initiated", "Down"]
    chain = CTMC(rates, labels=labels, state_names=names)
    state_rewards = [30.0, 12.0, 4.0, 25.0, 0.0]
    return MRM(chain, state_rewards=state_rewards)
