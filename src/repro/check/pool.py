"""Persistent shared-memory worker pool for the path-engine fan-out.

The first fan-out implementation created a fresh ``ProcessPoolExecutor``
inside every :func:`~repro.check.paths_engine.joint_distribution_many`
call and shipped the whole :class:`~repro.check.paths_engine.PathEngineContext`
to each worker through ``initargs`` pickling.  ``BENCH_2.json`` recorded
the consequence: ``workers=4`` was a net *loss* (sweep speedup 0.83, a
single until 6x slower than serial) — the pool spin-up and the context
pickle dominated the per-call work.  This module replaces that design
with three cooperating pieces:

**A persistent pool.**  :class:`PersistentWorkerPool` owns one
``fork``-based ``ProcessPoolExecutor`` for the life of the process (or
until a failure forces a rebuild).  Workers are forked once and reused
across calls, so repeated checks — a CLI invocation with several
formulas, a long-lived server — pay the fork cost once.  The
process-wide instance is reachable through :func:`default_pool` and
owned by :meth:`repro.check.EngineCache.worker_pool`, so everything that
shares an engine cache shares the pool too.

**Shared-memory context publishing.**  Because the workers outlive any
single call, fork copy-on-write cannot carry a context built *after*
the pool — so the context's large read-only arrays (the CSR successor
structure, the Poisson pmf/head/max tables, the psi mask, the state
levels) are packed once into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment by
:func:`publish_context`.  Each task then carries only a small picklable
:class:`ContextDescriptor` (segment name, per-array dtype/shape/offset,
scalars); the worker maps the segment and rebuilds an equivalent
context around zero-copy views.  The float arrays are mapped
byte-identically, the searches are deterministic, and the runners skip
dead targets before touching anything they accumulate, so the merged
results remain **bitwise identical** to a serial run; only the
per-state ``omega_evaluations`` diagnostics reflect each worker's own
memo locality, exactly as before.  Segments are reference-counted per
context (one publish per context object, released when the context is
garbage collected or at interpreter exit).

**Work stealing over small shards.**  :func:`plan_shards` splits the
initial states into many small contiguous shards — about
:data:`OVERSUBSCRIPTION` per worker — cost-balanced by each state's
out-degree (a frontier-size estimate read from ``succ_indptr``).  The
shards are submitted together and drained from the executor's shared
call queue, so an idle worker steals the next shard instead of
idling behind a rigid ``np.array_split`` assignment.

Budgets and telemetry do not rely on fork inheritance either: each
:class:`_ShardTask` carries the parent guard's *absolute* monotonic
deadline (``CLOCK_MONOTONIC`` is shared across fork on Linux) plus its
memory budget, and an ``observe`` flag; the worker installs a fresh
:class:`~repro.obs.Collector` when observing and ships its snapshot
back for clock-offset-normalized merging in the parent.

The fault-tolerance contract of the old per-call pool is preserved:
:meth:`PersistentWorkerPool.run_shards` applies one *absolute* deadline
across all futures of a call (k hung shards cost one timeout, not k),
detects dead workers (``BrokenProcessPool``), reports failed shards to
the caller for retry/serial re-execution, and rebuilds the pool after a
timeout or breakage so hung or dead workers never leak into the next
call.  ``GuardExceeded``/``MemoryError`` raised by engine code inside a
worker are *not* worker failures; they propagate to the caller's
degradation cascade and leave the pool alive.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import itertools
import multiprocessing
import os
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CheckError, GuardExceeded, WorkerError
from repro.guard import Guard, get_guard, use_guard
from repro.obs import Collector, get_collector, use_collector

__all__ = [
    "ContextDescriptor",
    "PersistentWorkerPool",
    "OVERSUBSCRIPTION",
    "default_pool",
    "reset_default_pool",
    "effective_workers",
    "plan_shards",
    "publish_context",
]

#: Shards planned per worker: enough queue depth that an idle worker
#: always finds another shard to steal, small enough that the per-shard
#: submit/result overhead stays negligible next to the search itself.
OVERSUBSCRIPTION = 4

#: Alignment of every array inside a published segment; keeps the views
#: friendly to vectorized loads regardless of the preceding array's size.
_ALIGN = 64


def _cpu_count() -> int:
    """Scheduler-visible core count (patchable seam for tests).

    Tests on small CI boxes patch this to exercise the multi-process
    paths that clamping would otherwise turn into serial loops.
    """
    return os.cpu_count() or 1


def effective_workers(requested: int) -> Tuple[int, int]:
    """``(effective, cpu_count)`` after clamping ``requested`` workers.

    Oversubscribing cores is how the original benchmark recorded its
    regression (``workers=4`` on a 1-core runner); the fan-out never
    runs more workers than the machine has cores.
    """
    requested = int(requested or 0)
    cpu = _cpu_count()
    return (min(requested, cpu), cpu)


# ----------------------------------------------------------------------
# Context publishing (parent side)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside a published segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ContextDescriptor:
    """The small picklable handle a task ships instead of a context.

    Everything a worker needs to rebuild an equivalent
    :class:`~repro.check.paths_engine.PathEngineContext`: the shared
    segment holding the large arrays, where each array lives inside it,
    and the scalar/config fields.  ``token`` identifies the publish (it
    keys the worker-side cache of attached contexts).
    """

    token: str
    segment: str
    arrays: Tuple[_ArraySpec, ...]
    reward_levels: Tuple[float, ...]
    impulse_levels: Tuple[float, ...]
    time_bound: float
    reward_bound: float
    rate: float
    lam_t: float
    w: float
    depth_limit: Optional[int]
    strategy: str
    truncation: str
    num_states: int
    kernels: str = "numpy"


_PUBLISH_LOCK = threading.Lock()
_SEGMENTS: Dict[str, Any] = {}  # token -> parent-side SharedMemory
_PUBLISHED: Dict[int, ContextDescriptor] = {}  # id(context) -> descriptor
_TOKENS = itertools.count()


def _release_segment(context_id: int, token: str) -> None:
    with _PUBLISH_LOCK:
        _PUBLISHED.pop(context_id, None)
        segment = _SEGMENTS.pop(token, None)
    if segment is None:
        return
    try:
        segment.close()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except Exception:  # pragma: no cover - already unlinked / shutdown
        pass


def _release_all_segments() -> None:
    with _PUBLISH_LOCK:
        segments = list(_SEGMENTS.values())
        _SEGMENTS.clear()
        _PUBLISHED.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def _context_arrays(context) -> "OrderedDict[str, np.ndarray]":
    """The context's large arrays, in a stable publishing order."""
    if context.succ_indptr is None or context.psi_mask is None:
        raise CheckError(
            "cannot publish a context without its CSR successor arrays; "
            "build it through prepare_path_engine"
        )
    dead_mask = np.zeros(context.num_states, dtype=bool)
    for state in context.dead:
        dead_mask[state] = True
    arrays: "OrderedDict[str, np.ndarray]" = OrderedDict()
    arrays["pmf"] = np.ascontiguousarray(context.pmf)
    arrays["heads"] = np.ascontiguousarray(context.heads)
    if context.maxpois is not None:
        arrays["maxpois"] = np.ascontiguousarray(context.maxpois)
    arrays["succ_indptr"] = np.ascontiguousarray(context.succ_indptr)
    arrays["succ_targets"] = np.ascontiguousarray(context.succ_targets)
    arrays["succ_probs"] = np.ascontiguousarray(context.succ_probs)
    arrays["succ_moves"] = np.ascontiguousarray(context.succ_moves)
    arrays["psi_mask"] = np.ascontiguousarray(context.psi_mask)
    arrays["state_level"] = np.asarray(context.state_level, dtype=np.int64)
    arrays["dead_mask"] = dead_mask
    return arrays


def publish_context(context) -> ContextDescriptor:
    """Publish a context's arrays to shared memory, once per context.

    Returns the (cached) :class:`ContextDescriptor`.  The segment lives
    until the context is garbage collected or the interpreter exits;
    workers that are still attached keep their mapping valid either way
    (POSIX shared memory survives unlink until the last close).
    """
    with _PUBLISH_LOCK:
        cached = _PUBLISHED.get(id(context))
        if cached is not None and cached.token in _SEGMENTS:
            return cached

    from multiprocessing import shared_memory

    arrays = _context_arrays(context)
    specs: List[_ArraySpec] = []
    offset = 0
    for name, array in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(
            _ArraySpec(
                name=name,
                dtype=str(array.dtype),
                shape=tuple(int(n) for n in array.shape),
                offset=offset,
            )
        )
        offset += array.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for spec, array in zip(specs, arrays.values()):
        if not array.size:
            continue
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=spec.offset
        )
        view[...] = array
        del view

    token = f"{os.getpid()}-{next(_TOKENS)}"
    descriptor = ContextDescriptor(
        token=token,
        segment=segment.name,
        arrays=tuple(specs),
        reward_levels=tuple(float(r) for r in context.reward_levels),
        impulse_levels=tuple(float(i) for i in context.impulse_levels),
        time_bound=float(context.time_bound),
        reward_bound=float(context.reward_bound),
        rate=float(context.rate),
        lam_t=float(context.lam_t),
        w=float(context.w),
        depth_limit=context.depth_limit,
        strategy=context.strategy,
        truncation=context.truncation,
        num_states=int(context.num_states),
        kernels=context.kernels,
    )
    with _PUBLISH_LOCK:
        _SEGMENTS[token] = segment
        _PUBLISHED[id(context)] = descriptor
    weakref.finalize(context, _release_segment, id(context), token)
    return descriptor


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Attached contexts by descriptor token (per worker process).  Bounded:
#: a long-lived worker serving many formulas drops its oldest mapping.
_WORKER_CONTEXTS: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
_WORKER_CACHE_LIMIT = 8


def _attach_context(descriptor: ContextDescriptor):
    """Map a published segment and rebuild the engine context (cached).

    Attaching re-registers the segment with the resource tracker on
    Python < 3.13 (bpo-39959), but under ``fork`` the workers share the
    parent's tracker process and its name cache is a set — the extra
    registration is a no-op, and the parent's unlink-time unregister
    keeps the books straight.  (Explicitly unregistering here would
    *remove* the parent's entry from the shared tracker instead.)
    """
    cached = _WORKER_CONTEXTS.get(descriptor.token)
    if cached is not None:
        _WORKER_CONTEXTS.move_to_end(descriptor.token)
        return cached[0]

    from multiprocessing import shared_memory

    from repro.check.paths_engine import ClassTable, PathEngineContext

    segment = shared_memory.SharedMemory(name=descriptor.segment)
    arrays: Dict[str, np.ndarray] = {}
    for spec in descriptor.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        arrays[spec.name] = view

    psi = frozenset(int(s) for s in np.flatnonzero(arrays["psi_mask"]))
    dead = frozenset(int(s) for s in np.flatnonzero(arrays["dead_mask"]))
    state_level = [int(level) for level in arrays["state_level"]]
    num_impulses = len(descriptor.impulse_levels)

    # The per-edge successor list is only walked by the "paths" and
    # "merged-legacy" runners; the columnar engine reads the CSR arrays
    # directly.  Rebuilding it from CSR drops the dead targets the
    # parent-side list still carries — identical iteration, because
    # every runner skips dead targets before accumulating anything.
    successors: List[List[Tuple[int, float, int]]]
    if descriptor.strategy == "merged":
        successors = [[] for _ in range(descriptor.num_states)]
    else:
        indptr = arrays["succ_indptr"]
        targets = arrays["succ_targets"]
        probs = arrays["succ_probs"]
        moves = arrays["succ_moves"]
        successors = []
        for state in range(descriptor.num_states):
            entries = []
            for pos in range(int(indptr[state]), int(indptr[state + 1])):
                entries.append(
                    (
                        int(targets[pos]),
                        float(probs[pos]),
                        int(moves[pos]) % num_impulses,
                    )
                )
            successors.append(entries)

    context = PathEngineContext(
        psi=psi,
        dead=dead,
        successors=successors,
        state_level=state_level,
        reward_levels=list(descriptor.reward_levels),
        impulse_levels=list(descriptor.impulse_levels),
        time_bound=descriptor.time_bound,
        reward_bound=descriptor.reward_bound,
        rate=descriptor.rate,
        lam_t=descriptor.lam_t,
        w=descriptor.w,
        depth_limit=descriptor.depth_limit,
        strategy=descriptor.strategy,
        truncation=descriptor.truncation,
        pmf=arrays["pmf"],
        heads=arrays["heads"],
        maxpois=arrays.get("maxpois"),
        num_states=descriptor.num_states,
        calculators={},
        succ_indptr=arrays["succ_indptr"],
        succ_targets=arrays["succ_targets"],
        succ_probs=arrays["succ_probs"],
        succ_moves=arrays["succ_moves"],
        psi_mask=arrays["psi_mask"],
        class_table=ClassTable(len(descriptor.reward_levels), num_impulses),
        kernels=descriptor.kernels,
    )
    _WORKER_CONTEXTS[descriptor.token] = (context, segment)
    while len(_WORKER_CONTEXTS) > _WORKER_CACHE_LIMIT:
        _, (_, old_segment) = _WORKER_CONTEXTS.popitem(last=False)
        try:
            old_segment.close()
        except BufferError:  # views still alive somewhere; GC unmaps later
            pass
    return context


@dataclass
class _ShardTask:
    """One unit of stealable work: a shard plus its execution envelope.

    ``deadline`` is an *absolute* ``time.monotonic()`` instant (the
    monotonic clock is shared across fork), ``mem_budget`` the parent
    guard's byte budget; the worker reconstructs a guard from them so
    budget trips inside a worker behave exactly like serial ones.
    ``observe`` asks the worker to record telemetry and ship a snapshot.
    """

    descriptor: ContextDescriptor
    states: List[int]
    observe: bool = False
    deadline: Optional[float] = None
    mem_budget: Optional[int] = None
    # Correlation id of the originating request, if the parent run has
    # one: worker-side shard spans stamp it so a merged trace names the
    # same request end to end.
    request_id: Optional[str] = None


def _fan_out_initializer() -> None:
    """Per-worker setup hook; a patch point for fault injection."""


def _pool_initializer() -> None:
    # Resolved in the worker so a (pre-fork) patched hook is honored.
    _fan_out_initializer()


def _shard_guard(task: _ShardTask) -> Optional[Guard]:
    if task.deadline is None and task.mem_budget is None:
        return None
    remaining = None
    if task.deadline is not None:
        remaining = max(task.deadline - time.monotonic(), 1e-6)
    return Guard(deadline_s=remaining, mem_budget_bytes=task.mem_budget)


def _fan_out_shard(task: _ShardTask):
    """Evaluate one shard in a worker; returns ``(pairs, snapshot)``.

    The context arrives as a :class:`ContextDescriptor` — a shared-memory
    handle, never a pickled context — and is attached (or served from
    the worker's cache) before the searches run.  The ambient guard and
    collector are installed *explicitly* from the task envelope: a
    persistent worker's fork-inherited thread locals are a stale snapshot
    of whatever the parent was doing when the pool was created, so
    nothing here relies on them.  ``snapshot`` is ``None`` when the
    parent was not observing; a recording worker ships its collector
    snapshot back for clock-offset-normalized merging.
    """
    from repro.check.paths_engine import joint_distribution_from_context

    context = _attach_context(task.descriptor)
    guard = _shard_guard(task)
    if not task.observe:
        with use_guard(guard), use_collector(None):
            pairs = [
                (state, joint_distribution_from_context(context, state))
                for state in task.states
            ]
        return pairs, None
    collector = Collector(request_id=task.request_id)
    with use_guard(guard), use_collector(collector):
        with collector.span("pool.shard", states=len(task.states), pid=os.getpid()):
            pairs = [
                (state, joint_distribution_from_context(context, state))
                for state in task.states
            ]
    return pairs, collector.snapshot()


def _noop() -> int:
    """Warm-up task: forces worker processes to exist before timing."""
    return os.getpid()


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------

def plan_shards(context, states: Sequence[int], workers: int) -> List[List[int]]:
    """Split ``states`` into small cost-balanced contiguous shards.

    Targets about :data:`OVERSUBSCRIPTION` shards per worker so the
    executor's shared queue gives idle workers something to steal; the
    cost estimate of a state is its out-degree (from ``succ_indptr``) —
    a proxy for its frontier growth — so one expensive state does not
    drag a whole rigid ``len/workers`` slice behind it.
    """
    states = [int(state) for state in states]
    if workers <= 1 or len(states) <= 1:
        return [states] if states else []
    target = min(len(states), int(workers) * OVERSUBSCRIPTION)
    indptr = context.succ_indptr
    if indptr is not None:
        costs = [
            max(int(indptr[state + 1]) - int(indptr[state]), 1) for state in states
        ]
    else:
        costs = [1] * len(states)
    total = float(sum(costs))
    closed = 0.0
    shards: List[List[int]] = []
    current: List[int] = []
    acc = 0.0
    for state, cost in zip(states, costs):
        # Close *before* the shard would overshoot its quota, and
        # re-derive the quota from the cost still unassigned to closed
        # shards — together these keep shards at or under their fair
        # share and stop one overfull early shard from starving the
        # tail below ``target``.
        quota = (total - closed) / (target - len(shards))
        if current and acc + cost > quota and len(shards) < target - 1:
            shards.append(current)
            closed += acc
            current = []
            acc = 0.0
        current.append(state)
        acc += cost
    if current:
        shards.append(current)
    return shards


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

def _terminate_workers(executor) -> None:
    """Best-effort kill of a pool's worker processes.

    Needed on the timeout path: a hung worker would otherwise survive
    ``shutdown(wait=False)`` and block interpreter exit at the atexit
    join.  Reaches into executor internals deliberately — there is no
    public kill switch — and tolerates their absence.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def _unpack_shard_part(part):
    """Split a worker return into ``(pairs, snapshot)``.

    Tolerates bare ``(state, result)`` pair lists (pre-telemetry shard
    functions, fault-injection stubs) by treating them as having no
    snapshot.
    """
    if (
        isinstance(part, tuple)
        and len(part) == 2
        and (part[1] is None or isinstance(part[1], dict))
    ):
        return part[0], part[1]
    return part, None


class PersistentWorkerPool:
    """A process-lifetime ``fork`` pool shared across fan-out calls.

    The executor is created lazily on first use and kept alive between
    calls; :meth:`run_shards` marks it broken on dead-worker or timeout
    failures so the next call (or retry) transparently gets a fresh one.
    Thread-safe: one call runs the executor at a time per pool instance
    (the lock covers ensure/rebuild; submissions themselves are safe).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._size = 0
        self._broken = False

    # -- lifecycle ------------------------------------------------------
    def _spawn_locked(self, size: int) -> None:
        if self._executor is not None:
            _terminate_workers(self._executor)
            self._executor.shutdown(wait=False, cancel_futures=True)
        fork = multiprocessing.get_context("fork")
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=size,
            mp_context=fork,
            initializer=_pool_initializer,
        )
        self._size = size
        self._broken = False

    def _ensure_executor(self, workers: int) -> concurrent.futures.ProcessPoolExecutor:
        workers = max(int(workers), 1)
        with self._lock:
            if self._executor is None or self._broken or self._size < workers:
                self._spawn_locked(max(workers, self._size))
            return self._executor

    def reset(self) -> None:
        """Terminate the workers and drop the executor (respawns lazily)."""
        with self._lock:
            if self._executor is not None:
                _terminate_workers(self._executor)
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._size = 0
            self._broken = False

    @property
    def alive(self) -> bool:
        """Whether a usable executor currently exists."""
        with self._lock:
            return self._executor is not None and not self._broken

    def worker_pids(self) -> List[int]:
        """Pids of the current worker processes (may be empty)."""
        with self._lock:
            executor = self._executor
        if executor is None:
            return []
        return sorted((getattr(executor, "_processes", None) or {}).keys())

    def warm(self, workers: int) -> int:
        """Fork the workers ahead of time; returns the effective count.

        Benchmarks call this before timing so the measurement covers the
        steady state the persistent pool exists to provide, not the
        one-time fork cost.
        """
        effective, _ = effective_workers(workers)
        if effective <= 1:
            return effective
        executor = self._ensure_executor(effective)
        futures = [executor.submit(_noop) for _ in range(effective * 2)]
        concurrent.futures.wait(futures, timeout=60.0)
        return effective

    # -- execution ------------------------------------------------------
    def run_shards(
        self,
        context,
        shards: Sequence[Tuple[int, List[int]]],
        timeout_s: float,
        workers: int,
    ) -> Tuple[Dict[int, Any], List[Dict], List[Tuple[int, List[int], WorkerError]], List[int]]:
        """One pool attempt over ``(shard_index, states)`` shards.

        Returns the merged results of the shards that completed, the
        telemetry snapshots workers shipped back with them, an
        ``(shard_index, shard, WorkerError)`` list for the shards that
        did not — a dead worker (OOM-kill, nonzero exit, crashing
        initializer: all surface as ``BrokenProcessPool``), a failed
        submission into an already-broken pool, or the watchdog — and
        the pids of the pool's worker processes.  The watchdog is one
        *absolute* deadline across all futures of the call: ``k`` hung
        shards cost one ``timeout_s``, not ``k`` of them.  A failed
        shard contributes neither results nor a snapshot — its partial
        trace dies with the worker, so nothing half-recorded can merge.
        Guard trips and out-of-memory conditions raised *by the engine
        code in a worker* are not worker failures; they propagate so the
        caller's degradation cascade handles them exactly as in a serial
        run, and the pool stays alive.
        """
        results: Dict[int, Any] = {}
        snapshots: List[Dict] = []
        failures: List[Tuple[int, List[int], WorkerError]] = []
        # Bound before any submission: an executor whose submit raises
        # must surface *that* failure, not an UnboundLocalError.
        worker_pids: List[int] = []

        try:
            executor = self._ensure_executor(workers)
            descriptor = publish_context(context)
        except Exception as error:
            reason = f"pool unavailable: {error}"
            return (
                results,
                snapshots,
                [
                    (index, list(shard), WorkerError(reason, shard=list(shard)))
                    for index, shard in shards
                ],
                worker_pids,
            )

        guard = get_guard()
        remaining = guard.remaining_time()
        deadline = None if remaining is None else time.monotonic() + remaining
        mem_budget = guard.mem_budget_bytes
        observe = get_collector().enabled
        request_id = getattr(get_collector(), "request_id", None)

        future_map: Dict[concurrent.futures.Future, Tuple[int, List[int]]] = {}
        try:
            for index, shard in shards:
                task = _ShardTask(
                    descriptor=descriptor,
                    states=list(shard),
                    observe=observe,
                    deadline=deadline,
                    mem_budget=mem_budget,
                    request_id=request_id,
                )
                future_map[executor.submit(_fan_out_shard, task)] = (
                    index,
                    list(shard),
                )
        except Exception as error:
            # An already-broken pool refuses submissions; the shards that
            # never made it in fail like dead-worker shards.
            self._broken = True
            submitted = {index for index, _ in future_map.values()}
            for index, shard in shards:
                if index not in submitted:
                    failures.append(
                        (
                            index,
                            list(shard),
                            WorkerError(
                                f"pool submit failed: {error}", shard=list(shard)
                            ),
                        )
                    )
        worker_pids = sorted((getattr(executor, "_processes", None) or {}).keys())

        watchdog_deadline = time.monotonic() + float(timeout_s)
        pending = set(future_map)
        timed_out = False
        while pending:
            budget = watchdog_deadline - time.monotonic()
            if budget <= 0.0:
                done: Iterable[concurrent.futures.Future] = ()
            else:
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=budget,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
            if not done:
                timed_out = True
                for future in pending:
                    future.cancel()
                    index, shard = future_map[future]
                    failures.append(
                        (
                            index,
                            shard,
                            WorkerError(
                                f"shard timed out after {timeout_s:g}s",
                                shard=shard,
                            ),
                        )
                    )
                break
            for future in done:
                pending.discard(future)
                index, shard = future_map[future]
                try:
                    part = future.result()
                except BrokenProcessPool as error:
                    self._broken = True
                    failures.append(
                        (
                            index,
                            shard,
                            WorkerError(f"worker died: {error}", shard=shard),
                        )
                    )
                except (GuardExceeded, MemoryError):
                    # A budget tripped inside the worker's engine code —
                    # the run is over for every shard; surface it to the
                    # cascade.  The workers are healthy: abandon the
                    # remaining futures (their own shipped deadlines
                    # stop them) and keep the pool.
                    for other in pending:
                        other.cancel()
                    raise
                else:
                    pairs, snapshot = _unpack_shard_part(part)
                    for state, result in pairs:
                        results[state] = result
                    if snapshot is not None:
                        snapshots.append(snapshot)
        if timed_out:
            # Hung workers cannot be reused (and would block interpreter
            # exit); kill them now and respawn lazily on the next call.
            self.reset()
        return results, snapshots, failures, worker_pids


_DEFAULT_POOL: Optional[PersistentWorkerPool] = None
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> PersistentWorkerPool:
    """The process-wide pool used when no explicit pool is supplied."""
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        if _DEFAULT_POOL is None:
            _DEFAULT_POOL = PersistentWorkerPool()
        return _DEFAULT_POOL


def reset_default_pool() -> None:
    """Tear down the process-wide pool (fresh workers on next use).

    Tests that patch the worker-side hooks (``_fan_out_initializer``)
    call this so the patch is part of the next fork snapshot.
    """
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        pool, _DEFAULT_POOL = _DEFAULT_POOL, None
    if pool is not None:
        pool.reset()


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter shutdown
    reset_default_pool()
    _release_all_segments()


atexit.register(_atexit_cleanup)
