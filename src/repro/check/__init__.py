"""Model-checking algorithms for CSRL over MRMs (Chapter 4 of the paper)."""

from repro.check.checker import CheckOptions, ModelChecker
from repro.check.results import NextResult, SatResult, SteadyResult, UntilResult
from repro.check.steady import satisfy_steady, steady_state_values
from repro.check.next_op import next_probabilities, satisfy_next
from repro.check.until import (
    interval_until_probabilities,
    satisfy_until,
    unbounded_until_probabilities,
    time_bounded_until_probabilities,
    until_probability,
)
from repro.check.paths_engine import PathEngineResult, joint_distribution
from repro.check.discretization import discretized_joint_distribution

__all__ = [
    "ModelChecker",
    "CheckOptions",
    "SatResult",
    "SteadyResult",
    "NextResult",
    "UntilResult",
    "satisfy_steady",
    "steady_state_values",
    "satisfy_next",
    "next_probabilities",
    "satisfy_until",
    "until_probability",
    "unbounded_until_probabilities",
    "interval_until_probabilities",
    "time_bounded_until_probabilities",
    "joint_distribution",
    "PathEngineResult",
    "discretized_joint_distribution",
]
