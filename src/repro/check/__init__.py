"""Model-checking algorithms for CSRL over MRMs (Chapter 4 of the paper)."""

from repro.check.checker import CheckOptions, ModelChecker
from repro.check.results import NextResult, SatResult, SteadyResult, UntilResult
from repro.check.steady import satisfy_steady, steady_state_values
from repro.check.next_op import (
    next_probabilities,
    next_probabilities_reference,
    satisfy_next,
)
from repro.check.until import (
    interval_until_probabilities,
    satisfy_until,
    unbounded_until_probabilities,
    time_bounded_until_probabilities,
    until_probabilities,
    until_probability,
)
from repro.check.engine_cache import CacheStats, EngineCache, default_engine_cache
from repro.check.paths_engine import (
    ClassTable,
    PathEngineContext,
    PathEngineResult,
    joint_distribution,
    joint_distribution_all,
    joint_distribution_from_context,
    joint_distribution_many,
    prepare_path_engine,
)
from repro.check.discretization import (
    BatchedDiscretizationResult,
    discretized_joint_distribution,
    discretized_joint_distributions,
)

__all__ = [
    "ModelChecker",
    "CheckOptions",
    "SatResult",
    "SteadyResult",
    "NextResult",
    "UntilResult",
    "satisfy_steady",
    "steady_state_values",
    "satisfy_next",
    "next_probabilities",
    "next_probabilities_reference",
    "satisfy_until",
    "until_probability",
    "until_probabilities",
    "unbounded_until_probabilities",
    "interval_until_probabilities",
    "time_bounded_until_probabilities",
    "joint_distribution",
    "joint_distribution_all",
    "joint_distribution_from_context",
    "joint_distribution_many",
    "prepare_path_engine",
    "ClassTable",
    "PathEngineContext",
    "PathEngineResult",
    "EngineCache",
    "CacheStats",
    "default_engine_cache",
    "discretized_joint_distribution",
    "discretized_joint_distributions",
    "BatchedDiscretizationResult",
]
