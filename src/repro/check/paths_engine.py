"""Uniformization with depth-first path generation (Sections 4.4.2, 4.6).

This is the paper's main computational contribution: evaluating

    Pr{Y(t) <= r, X(t) |= Psi}

over an MRM whose ``(!Phi or Psi)``-states have been made absorbing, by

1. uniformizing the MRM (Definition 4.2);
2. enumerating finite paths of the uniformized DTMC depth-first
   (Algorithm 4.7, DFPG) with *path truncation*: a path is abandoned as
   soon as its Poisson-weighted probability ``P(sigma, t)`` drops below
   the truncation probability ``w`` (Definition 4.6);
3. characterizing each stored path by its sojourn-count vector ``k``
   (one entry per distinct state reward) and impulse-count vector ``j``
   (one entry per distinct impulse reward) and aggregating the
   probabilities of paths with equal ``(k, j)``;
4. evaluating the conditional probability ``Pr{Y(t) <= r | n, k, j}`` per
   equivalence class with the Omega recursion (Algorithm 4.8) over
   uniform order statistics;
5. reporting the truncation error bound of eq. (4.6).

The module also implements *depth truncation* (eq. 4.3) as an alternative
strategy for the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CheckError, NumericalError
from repro.mrm.model import MRM
from repro.numerics.orderstat import OmegaCalculator

__all__ = ["PathEngineResult", "joint_distribution"]


@dataclass(frozen=True)
class PathEngineResult:
    """Outcome of one path-engine run from one initial state.

    Attributes
    ----------
    probability:
        The estimate of ``Pr{Y(t) <= r, X(t) |= Psi}`` (eq. 4.5).
    error_bound:
        The truncation error bound of eq. (4.6): an upper bound on the
        probability mass of discarded paths that could still have
        satisfied the formula.
    paths_generated:
        Number of DFPG tree nodes expanded.
    paths_stored:
        Number of stored ``(n, k, j)`` records (path/length pairs ending
        in a ``Psi``-state).
    classes:
        Number of distinct ``(k, j)`` equivalence classes, i.e. Omega
        evaluations needed before memoization.
    max_depth:
        Length of the longest explored path.
    uniformization_rate:
        The Poisson rate ``Lambda`` used.
    omega_evaluations:
        Total Omega recursion nodes evaluated across all classes.
    """

    probability: float
    error_bound: float
    paths_generated: int
    paths_stored: int
    classes: int
    max_depth: int
    uniformization_rate: float
    omega_evaluations: int


def _poisson_heads(lam_t: float, depth: int) -> np.ndarray:
    """``head[n] = sum_{i < n} poisson(i; lam_t)`` for ``n = 0..depth``."""
    heads = np.empty(depth + 1, dtype=float)
    term = math.exp(-lam_t)
    acc = 0.0
    for n in range(depth + 1):
        heads[n] = acc
        acc += term
        term *= lam_t / (n + 1)
    return heads


def _poisson_max_from(lam_t: float, depth: int) -> np.ndarray:
    """``maxpois[n] = max_{m >= n} poisson(m; lam_t)`` for ``n = 0..depth``.

    Used by the ``"safe"`` truncation mode: since the DTMC path
    probability can only shrink, ``p_dtmc * maxpois[n]`` bounds
    ``P(sigma', t)`` for every extension ``sigma'`` of the current path.
    The maximum sits at the Poisson mode ``floor(lam_t)`` and the pmf
    decreases beyond it.
    """
    mode = int(lam_t)
    table_length = max(depth + 2, mode + 2)
    term = math.exp(-lam_t)
    pmf = np.empty(table_length, dtype=float)
    for n in range(table_length):
        pmf[n] = term
        term *= lam_t / (n + 1)
    values = np.empty(table_length, dtype=float)
    running = 0.0
    for n in range(table_length - 1, -1, -1):
        running = max(running, pmf[n])
        values[n] = running
    return values[: depth + 2]


def _max_useful_depth(lam_t: float, w: float, start: float = 1.0) -> int:
    """Smallest depth beyond which ``poisson(n) * start`` stays below ``w``.

    Since the DTMC path probability only shrinks, no path can survive the
    truncation test past this depth.  Used to pre-size the Poisson tables.
    """
    term = math.exp(-lam_t)
    n = 0
    best_exceeded = 0
    while True:
        if term * start >= w:
            best_exceeded = n
        n += 1
        term *= lam_t / n
        if n > lam_t and term * start < w:
            return max(best_exceeded + 1, n)
        if n > 10_000_000:  # pragma: no cover - defensive
            raise NumericalError("Poisson depth search failed to terminate")


def joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
) -> PathEngineResult:
    """``Pr{Y(t) <= r, X(t) in psi_states}`` from ``initial_state``.

    The model is used as given — callers that evaluate an until formula
    must apply :meth:`repro.mrm.MRM.make_absorbing` first (Theorems
    4.1/4.3); see :func:`repro.check.until.until_probability`.

    Parameters
    ----------
    model:
        The (already transformed) MRM.
    initial_state:
        The starting state ``s_0`` (point-mass initial distribution).
    psi_states:
        The target set; a path contributes when its last state lies here.
    time_bound, reward_bound:
        ``t > 0`` and ``r >= 0`` of ``Pr{Y(t) <= r, ...}``.
    truncation_probability:
        The path-truncation threshold ``w`` (Definition 4.6).  Must be
        positive unless a ``depth_limit`` bounds the search instead.
    dead_states:
        States whose subtrees cannot contribute (the ``(!Phi and !Psi)``
        states of Algorithm 4.7); exploration prunes there and the error
        bound excludes them per eq. (4.6).
    depth_limit:
        Optional maximal path length ``N`` — the *depth truncation* of
        eq. (4.3).  May be combined with path truncation.
    strategy:
        ``"paths"`` — the paper's per-path DFS (Algorithm 4.7);
        ``"merged"`` — a dynamic-programming variant that aggregates
        probability mass per ``(state, k, j)`` before applying the
        truncation test, which prunes strictly less at equal ``w`` (its
        error bound still covers exactly what was discarded).
    truncation:
        How the test ``p < w`` of Algorithm 4.7 is applied.

        * ``"paper"`` — literally on ``P(sigma, t) = poisson(n) P(sigma)``.
          Because the Poisson weight first *rises* with ``n`` (up to the
          mode ``Lambda t``), this can discard a subtree whose deeper
          extensions carry far more probability than the current node;
          for ``exp(-Lambda t) < w`` even the empty path is discarded.
          This is the regime behind the error blow-up of Table 5.3 and
          the paper's conclusion that the method applies only for small
          ``Lambda t``.
        * ``"safe"`` (default) — on the *supremum* of ``P(sigma', t)``
          over all extensions ``sigma'``, namely
          ``P(sigma) * max_{m >= n} poisson(m)``.  Never discards a
          subtree that still carries a node above ``w``; the reported
          error bound covers exactly what was discarded, as before.
    uniformization_rate:
        Optional explicit ``Lambda``.

    Returns
    -------
    PathEngineResult
    """
    if time_bound <= 0:
        raise CheckError("time bound must be positive")
    if reward_bound < 0:
        raise CheckError("reward bound must be non-negative")
    if truncation_probability < 0:
        raise CheckError("truncation probability must be non-negative")
    if truncation_probability == 0.0 and depth_limit is None:
        raise CheckError(
            "either a positive truncation probability or a depth limit is "
            "required for the search to terminate"
        )
    if strategy not in ("paths", "merged"):
        raise CheckError(f"unknown path-engine strategy {strategy!r}")
    if truncation not in ("paper", "safe"):
        raise CheckError(f"unknown truncation mode {truncation!r}")
    n_states = model.num_states
    if not 0 <= int(initial_state) < n_states:
        raise CheckError(f"initial state {initial_state} out of range")
    psi = frozenset(int(s) for s in psi_states)
    dead = frozenset(int(s) for s in dead_states) if dead_states else frozenset()

    process = model.uniformize(uniformization_rate)
    lam = process.rate
    lam_t = lam * time_bound

    reward_levels = model.distinct_state_rewards()
    impulse_levels = model.distinct_impulse_rewards()
    level_index = {level: i for i, level in enumerate(reward_levels)}
    impulse_index = {level: i for i, level in enumerate(impulse_levels)}
    state_level = [level_index[model.state_reward(s)] for s in range(n_states)]

    # Successor tables for the uniformized DTMC: per state, a list of
    # (successor, probability, impulse-level index).
    matrix = process.dtmc.matrix
    successors: List[List[Tuple[int, float, int]]] = []
    for state in range(n_states):
        entries: List[Tuple[int, float, int]] = []
        for pos in range(matrix.indptr[state], matrix.indptr[state + 1]):
            target = int(matrix.indices[pos])
            probability = float(matrix.data[pos])
            if probability <= 0.0:
                continue
            impulse = process.impulse_reward(state, target)
            entries.append((target, probability, impulse_index[impulse]))
        successors.append(entries)

    w = float(truncation_probability)
    max_depth_cap = (
        depth_limit
        if depth_limit is not None
        else _max_useful_depth(lam_t, w)
    )
    heads = _poisson_heads(lam_t, max_depth_cap + 1)
    maxpois = (
        _poisson_max_from(lam_t, max_depth_cap + 1)
        if truncation == "safe"
        else None
    )
    poisson0 = math.exp(-lam_t)

    runner = _run_paths_dfs if strategy == "paths" else _run_merged_dp
    stats = runner(
        initial_state=int(initial_state),
        psi=psi,
        dead=dead,
        successors=successors,
        state_level=state_level,
        num_levels=len(reward_levels),
        num_impulses=len(impulse_levels),
        lam_t=lam_t,
        w=w,
        depth_limit=depth_limit,
        heads=heads,
        maxpois=maxpois,
        poisson0=poisson0,
    )
    aggregated, error_bound, generated, stored, max_depth = stats

    probability, classes, omega_evals = _combine_with_omega(
        aggregated,
        reward_levels,
        impulse_levels,
        time_bound,
        reward_bound,
    )
    return PathEngineResult(
        probability=probability,
        error_bound=error_bound,
        paths_generated=generated,
        paths_stored=stored,
        classes=classes,
        max_depth=max_depth,
        uniformization_rate=lam,
        omega_evaluations=omega_evals,
    )


def _run_paths_dfs(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    lam_t: float,
    w: float,
    depth_limit: Optional[int],
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
    poisson0: float,
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Algorithm 4.7 with an explicit stack.

    Stack frames carry ``(state, n, k, j, p_t, p_dtmc)`` where ``p_t`` is
    the Poisson-weighted probability ``P(sigma, t)`` and ``p_dtmc`` the
    bare DTMC path probability ``P(sigma)`` needed by the error bound.
    ``maxpois`` switches the truncation test to the safe variant (see
    :func:`joint_distribution`).
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = poisson0 if maxpois is None else float(maxpois[0])
    if root_score < w:
        # Even the empty path is truncated (Algorithm 4.7 line 1): all
        # probability mass is discarded and the error bound is total.
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    stack: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...], float, float]] = [
        (initial_state, 0, root_k, root_j, poisson0, 1.0)
    ]
    head_count = len(heads)
    while stack:
        state, depth, k, j, p_t, p_dtmc = stack.pop()
        generated += 1
        if depth > max_depth:
            max_depth = depth
        if state in psi:
            key = (k, j)
            aggregated[key] = aggregated.get(key, 0.0) + p_t
            stored += 1
        if depth_limit is not None and depth >= depth_limit:
            continue
        next_depth = depth + 1
        factor = lam_t / next_depth
        for target, probability, impulse_idx in successors[state]:
            child_dtmc = p_dtmc * probability
            child_t = p_t * factor * probability
            if target in dead:
                continue
            child_score = (
                child_t if maxpois is None else child_dtmc * maxpois[next_depth]
            )
            if child_score < w:
                # eq. (4.6): the discarded path and all its suffixes; the
                # last state satisfies (Phi or Psi) since dead states were
                # skipped above.
                if next_depth < head_count:
                    tail = 1.0 - heads[next_depth]
                else:  # pragma: no cover - depth table always suffices
                    tail = 1.0
                error_bound += child_dtmc * tail
                continue
            level = state_level[target]
            child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
            child_j = (
                j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
            )
            stack.append((target, next_depth, child_k, child_j, child_t, child_dtmc))
    return aggregated, error_bound, generated, stored, max_depth


def _run_merged_dp(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    lam_t: float,
    w: float,
    depth_limit: Optional[int],
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
    poisson0: float,
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Breadth-first dynamic programming over ``(state, k, j)`` classes.

    Paths with equal state and equal reward characterization are merged
    *before* the truncation test, so at equal ``w`` this prunes strictly
    less than the per-path DFS and yields a tighter error bound.  The
    frontier at depth ``n`` maps ``(state, k, j) -> (p_t, p_dtmc)``.
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = poisson0 if maxpois is None else float(maxpois[0])
    if root_score < w:
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    frontier: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], Tuple[float, float]] = {
        (initial_state, root_k, root_j): (poisson0, 1.0)
    }
    depth = 0
    head_count = len(heads)
    while frontier:
        max_depth = depth
        for (state, k, j), (p_t, _) in frontier.items():
            generated += 1
            if state in psi:
                key = (k, j)
                aggregated[key] = aggregated.get(key, 0.0) + p_t
                stored += 1
        if depth_limit is not None and depth >= depth_limit:
            break
        next_depth = depth + 1
        factor = lam_t / next_depth
        next_frontier: Dict[
            Tuple[int, Tuple[int, ...], Tuple[int, ...]], Tuple[float, float]
        ] = {}
        for (state, k, j), (p_t, p_dtmc) in frontier.items():
            for target, probability, impulse_idx in successors[state]:
                if target in dead:
                    continue
                child_t = p_t * factor * probability
                child_dtmc = p_dtmc * probability
                level = state_level[target]
                child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
                child_j = (
                    j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
                )
                key = (target, child_k, child_j)
                old = next_frontier.get(key)
                if old is None:
                    next_frontier[key] = (child_t, child_dtmc)
                else:
                    next_frontier[key] = (old[0] + child_t, old[1] + child_dtmc)
        # Truncation test on the merged classes.
        surviving: Dict[
            Tuple[int, Tuple[int, ...], Tuple[int, ...]], Tuple[float, float]
        ] = {}
        tail = 1.0 - heads[next_depth] if next_depth < head_count else 1.0
        ceiling = (
            None
            if maxpois is None
            else float(maxpois[min(next_depth, len(maxpois) - 1)])
        )
        for key, (p_t, p_dtmc) in next_frontier.items():
            score = p_t if ceiling is None else p_dtmc * ceiling
            if score < w:
                error_bound += p_dtmc * tail
            else:
                surviving[key] = (p_t, p_dtmc)
        frontier = surviving
        depth = next_depth
    return aggregated, error_bound, generated, stored, max_depth


def _combine_with_omega(
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float],
    reward_levels: List[float],
    impulse_levels: List[float],
    time_bound: float,
    reward_bound: float,
) -> Tuple[float, int, int]:
    """Combine class probabilities with ``Pr{Y(t) <= r | n, k, j}``.

    Per eqs. (4.9)/(4.10): with the distinct state rewards
    ``r_1 > ... > r_{K+1}``, group coefficients ``c_l = r_l - r_{K+1}``
    and impulse contribution ``imp = sum_l i_l j_l``, the conditional
    probability is ``Omega(r/t - r_{K+1} - imp/t, k)``.  One
    :class:`OmegaCalculator` is shared per distinct threshold so the memo
    tables are reused across classes.
    """
    if not aggregated:
        return 0.0, 0, 0
    smallest = reward_levels[-1]
    coefficients = [level - smallest for level in reward_levels]
    calculators: Dict[float, OmegaCalculator] = {}
    probability = 0.0
    for (k, j), mass in aggregated.items():
        impulse_total = sum(
            level * count for level, count in zip(impulse_levels, j)
        )
        threshold = reward_bound / time_bound - smallest - impulse_total / time_bound
        if threshold < 0.0:
            continue  # reward bound already violated by impulses alone
        calculator = calculators.get(threshold)
        if calculator is None:
            calculator = OmegaCalculator(coefficients, threshold)
            calculators[threshold] = calculator
        probability += mass * calculator.value(k)
    omega_evals = sum(c.evaluations for c in calculators.values())
    return probability, len(aggregated), omega_evals
