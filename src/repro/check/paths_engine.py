"""Uniformization with depth-first path generation (Sections 4.4.2, 4.6).

This is the paper's main computational contribution: evaluating

    Pr{Y(t) <= r, X(t) |= Psi}

over an MRM whose ``(!Phi or Psi)``-states have been made absorbing, by

1. uniformizing the MRM (Definition 4.2);
2. enumerating finite paths of the uniformized DTMC depth-first
   (Algorithm 4.7, DFPG) with *path truncation*: a path is abandoned as
   soon as its Poisson-weighted probability ``P(sigma, t)`` drops below
   the truncation probability ``w`` (Definition 4.6);
3. characterizing each stored path by its sojourn-count vector ``k``
   (one entry per distinct state reward) and impulse-count vector ``j``
   (one entry per distinct impulse reward) and aggregating the
   probabilities of paths with equal ``(k, j)``;
4. evaluating the conditional probability ``Pr{Y(t) <= r | n, k, j}`` per
   equivalence class with the Omega recursion (Algorithm 4.8) over
   uniform order statistics;
5. reporting the truncation error bound of eq. (4.6).

The module also implements *depth truncation* (eq. 4.3) as an alternative
strategy for the ablation benchmarks.

Batched evaluation
------------------
All inputs except the initial state — the uniformized process, the
successor tables, the Poisson pmf/head/max tables and the Omega memo
tables — depend only on the formula, not on where the search starts.
:func:`prepare_path_engine` factors that precomputation into a reusable
:class:`PathEngineContext`; :func:`joint_distribution_from_context` then
runs the search for one initial state, and
:func:`joint_distribution_all` evaluates every requested initial state
against a single shared context.  Sharing the context turns the
``O(n)``-pass all-states evaluation of a P2 until formula into one
precomputation plus ``n`` searches, and lets the Omega memoization work
across initial states (classes recur between starts).

All Poisson tables are evaluated in log space
(:func:`repro.numerics.poisson.poisson_pmf_table`), so the engine stays
exact-to-rounding for ``Lambda * t`` beyond ~745 where the recursive
scheme's seed ``exp(-Lambda t)`` underflows to zero — previously the
engine silently reported probability 0 with error bound 1 in that
regime.  A :class:`NumericalError` is raised only when every Poisson
weight within the explored depth range is genuinely unrepresentable in
double precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import CheckError, NumericalError
from repro.mrm.model import MRM
from repro.numerics.orderstat import OmegaCalculator
from repro.numerics.poisson import poisson_pmf_table

__all__ = [
    "PathEngineResult",
    "PathEngineContext",
    "prepare_path_engine",
    "joint_distribution",
    "joint_distribution_from_context",
    "joint_distribution_all",
]


@dataclass(frozen=True)
class PathEngineResult:
    """Outcome of one path-engine run from one initial state.

    Attributes
    ----------
    probability:
        The estimate of ``Pr{Y(t) <= r, X(t) |= Psi}`` (eq. 4.5).
    error_bound:
        The truncation error bound of eq. (4.6): an upper bound on the
        probability mass of discarded paths that could still have
        satisfied the formula.
    paths_generated:
        Number of DFPG tree nodes expanded.
    paths_stored:
        Number of stored ``(n, k, j)`` records (path/length pairs ending
        in a ``Psi``-state).
    classes:
        Number of distinct ``(k, j)`` equivalence classes, i.e. Omega
        evaluations needed before memoization.
    max_depth:
        Length of the longest explored path.
    uniformization_rate:
        The Poisson rate ``Lambda`` used.
    omega_evaluations:
        Omega recursion nodes newly evaluated for this run.  Under a
        shared :class:`PathEngineContext` the memo tables persist across
        initial states, so later runs report fewer evaluations for the
        same classes.
    """

    probability: float
    error_bound: float
    paths_generated: int
    paths_stored: int
    classes: int
    max_depth: int
    uniformization_rate: float
    omega_evaluations: int


def _poisson_heads(lam_t: float, depth: int) -> np.ndarray:
    """``head[n] = sum_{i < n} poisson(i; lam_t)`` for ``n = 0..depth``."""
    pmf = poisson_pmf_table(lam_t, depth)
    heads = np.empty(depth + 1, dtype=float)
    heads[0] = 0.0
    np.cumsum(pmf[:-1], out=heads[1:])
    return heads


def _poisson_max_from(lam_t: float, depth: int) -> np.ndarray:
    """``maxpois[n] = max_{m >= n} poisson(m; lam_t)`` for ``n = 0..depth + 1``.

    Used by the ``"safe"`` truncation mode: since the DTMC path
    probability can only shrink, ``p_dtmc * maxpois[n]`` bounds
    ``P(sigma', t)`` for every extension ``sigma'`` of the current path.
    The pmf rises up to the Poisson mode ``floor(lam_t)`` and decreases
    beyond it, so the suffix maximum is the mode value for ``n`` at or
    below the mode and the pmf itself past it — no table beyond
    ``depth`` is ever materialized, even when the mode lies far past it.
    """
    values = poisson_pmf_table(lam_t, depth + 1)
    mode = int(lam_t)
    if mode <= depth + 1:
        peak = float(values[mode])
    else:
        log_peak = -lam_t + mode * math.log(lam_t) - math.lgamma(mode + 1)
        peak = math.exp(log_peak)
    cutoff = min(mode, depth + 1)
    values[: cutoff + 1] = peak
    return values


def _max_useful_depth(lam_t: float, w: float, start: float = 1.0) -> int:
    """Smallest depth beyond which ``poisson(n) * start`` stays below ``w``.

    Since the DTMC path probability only shrinks, no path can survive the
    truncation test past this depth.  Used to pre-size the Poisson tables.
    The scan runs in log space so it remains exact for ``lam_t`` far past
    the ``exp(-lam_t)`` underflow point.
    """
    if w <= 0.0 or start <= 0.0:
        raise NumericalError("depth search requires positive w and start")
    if lam_t == 0.0:
        return 1
    log_limit = math.log(w) - math.log(start)
    log_lam_t = math.log(lam_t)
    log_term = -lam_t
    n = 0
    best_exceeded = 0
    while True:
        if log_term >= log_limit:
            best_exceeded = n
        n += 1
        log_term += log_lam_t - math.log(n)
        if n > lam_t and log_term < log_limit:
            return max(best_exceeded + 1, n)
        if n > 10_000_000:  # pragma: no cover - defensive
            raise NumericalError("Poisson depth search failed to terminate")


@dataclass
class PathEngineContext:
    """Initial-state-independent precomputation for one P2 formula.

    Built once by :func:`prepare_path_engine` and reused by every
    :func:`joint_distribution_from_context` call: the uniformized
    process, successor tables, reward-level indexing, Poisson
    pmf/head/max tables and the Omega calculators (whose memo tables are
    keyed by threshold and grow monotonically across runs).
    """

    psi: frozenset
    dead: frozenset
    successors: List[List[Tuple[int, float, int]]]
    state_level: List[int]
    reward_levels: List[float]
    impulse_levels: List[float]
    time_bound: float
    reward_bound: float
    rate: float
    lam_t: float
    w: float
    depth_limit: Optional[int]
    strategy: str
    truncation: str
    pmf: np.ndarray
    heads: np.ndarray
    maxpois: Optional[np.ndarray]
    num_states: int
    calculators: Dict[float, OmegaCalculator] = field(default_factory=dict)


def prepare_path_engine(
    model: MRM,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
) -> PathEngineContext:
    """Validate the query and build the shared :class:`PathEngineContext`.

    Parameters are those of :func:`joint_distribution` minus the initial
    state; see there for their meaning.  The model is used as given —
    callers evaluating an until formula must apply
    :meth:`repro.mrm.MRM.make_absorbing` first (Theorems 4.1/4.3).
    """
    if time_bound <= 0:
        raise CheckError("time bound must be positive")
    if reward_bound < 0:
        raise CheckError("reward bound must be non-negative")
    if truncation_probability < 0:
        raise CheckError("truncation probability must be non-negative")
    if truncation_probability == 0.0 and depth_limit is None:
        raise CheckError(
            "either a positive truncation probability or a depth limit is "
            "required for the search to terminate"
        )
    if strategy not in ("paths", "merged"):
        raise CheckError(f"unknown path-engine strategy {strategy!r}")
    if truncation not in ("paper", "safe"):
        raise CheckError(f"unknown truncation mode {truncation!r}")
    n_states = model.num_states
    psi = frozenset(int(s) for s in psi_states)
    dead = frozenset(int(s) for s in dead_states) if dead_states else frozenset()

    process = model.uniformize(uniformization_rate)
    lam = process.rate
    lam_t = lam * time_bound

    reward_levels = model.distinct_state_rewards()
    impulse_levels = model.distinct_impulse_rewards()
    level_index = {level: i for i, level in enumerate(reward_levels)}
    impulse_index = {level: i for i, level in enumerate(impulse_levels)}
    state_level = [level_index[model.state_reward(s)] for s in range(n_states)]

    # Successor tables for the uniformized DTMC: per state, a list of
    # (successor, probability, impulse-level index).
    matrix = process.dtmc.matrix
    successors: List[List[Tuple[int, float, int]]] = []
    for state in range(n_states):
        entries: List[Tuple[int, float, int]] = []
        for pos in range(matrix.indptr[state], matrix.indptr[state + 1]):
            target = int(matrix.indices[pos])
            probability = float(matrix.data[pos])
            if probability <= 0.0:
                continue
            impulse = process.impulse_reward(state, target)
            entries.append((target, probability, impulse_index[impulse]))
        successors.append(entries)

    w = float(truncation_probability)
    max_depth_cap = (
        depth_limit if depth_limit is not None else _max_useful_depth(lam_t, w)
    )
    pmf = poisson_pmf_table(lam_t, max_depth_cap + 1)
    if lam_t > 0.0 and float(pmf.max()) == 0.0:
        raise NumericalError(
            f"every Poisson weight up to depth {max_depth_cap + 1} underflows "
            f"at Lambda*t = {lam_t:g}; the result is not representable in "
            "double precision (raise the depth limit past the Poisson mode "
            f"~{int(lam_t)})"
        )
    heads = np.empty(max_depth_cap + 2, dtype=float)
    heads[0] = 0.0
    np.cumsum(pmf[:-1], out=heads[1:])
    maxpois = (
        _poisson_max_from(lam_t, max_depth_cap + 1) if truncation == "safe" else None
    )
    return PathEngineContext(
        psi=psi,
        dead=dead,
        successors=successors,
        state_level=state_level,
        reward_levels=reward_levels,
        impulse_levels=impulse_levels,
        time_bound=float(time_bound),
        reward_bound=float(reward_bound),
        rate=lam,
        lam_t=lam_t,
        w=w,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        pmf=pmf,
        heads=heads,
        maxpois=maxpois,
        num_states=n_states,
    )


def joint_distribution_from_context(
    context: PathEngineContext, initial_state: int
) -> PathEngineResult:
    """Run the configured search from one initial state against a context.

    The heavy per-formula precomputation lives in the context; this call
    performs only the DFPG/DP search and the Omega combination.  Omega
    memo tables persist inside the context, so evaluating many initial
    states shares their work.
    """
    if not 0 <= int(initial_state) < context.num_states:
        raise CheckError(f"initial state {initial_state} out of range")
    runner = _run_paths_dfs if context.strategy == "paths" else _run_merged_dp
    stats = runner(
        initial_state=int(initial_state),
        psi=context.psi,
        dead=context.dead,
        successors=context.successors,
        state_level=context.state_level,
        num_levels=len(context.reward_levels),
        num_impulses=len(context.impulse_levels),
        w=context.w,
        depth_limit=context.depth_limit,
        pmf=context.pmf,
        heads=context.heads,
        maxpois=context.maxpois,
    )
    aggregated, error_bound, generated, stored, max_depth = stats

    probability, classes, omega_evals = _combine_with_omega(
        aggregated,
        context.reward_levels,
        context.impulse_levels,
        context.time_bound,
        context.reward_bound,
        calculators=context.calculators,
    )
    return PathEngineResult(
        probability=probability,
        error_bound=error_bound,
        paths_generated=generated,
        paths_stored=stored,
        classes=classes,
        max_depth=max_depth,
        uniformization_rate=context.rate,
        omega_evaluations=omega_evals,
    )


def joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
) -> PathEngineResult:
    """``Pr{Y(t) <= r, X(t) in psi_states}`` from ``initial_state``.

    The model is used as given — callers that evaluate an until formula
    must apply :meth:`repro.mrm.MRM.make_absorbing` first (Theorems
    4.1/4.3); see :func:`repro.check.until.until_probability`.  To
    evaluate many initial states of the same formula, prefer
    :func:`joint_distribution_all` (or an explicit
    :func:`prepare_path_engine` context), which shares the
    precomputation.

    Parameters
    ----------
    model:
        The (already transformed) MRM.
    initial_state:
        The starting state ``s_0`` (point-mass initial distribution).
    psi_states:
        The target set; a path contributes when its last state lies here.
    time_bound, reward_bound:
        ``t > 0`` and ``r >= 0`` of ``Pr{Y(t) <= r, ...}``.
    truncation_probability:
        The path-truncation threshold ``w`` (Definition 4.6).  Must be
        positive unless a ``depth_limit`` bounds the search instead.
    dead_states:
        States whose subtrees cannot contribute (the ``(!Phi and !Psi)``
        states of Algorithm 4.7); exploration prunes there and the error
        bound excludes them per eq. (4.6).
    depth_limit:
        Optional maximal path length ``N`` — the *depth truncation* of
        eq. (4.3).  May be combined with path truncation.
    strategy:
        ``"paths"`` — the paper's per-path DFS (Algorithm 4.7);
        ``"merged"`` — a dynamic-programming variant that aggregates
        probability mass per ``(state, k, j)`` before applying the
        truncation test, which prunes strictly less at equal ``w`` (its
        error bound still covers exactly what was discarded).
    truncation:
        How the test ``p < w`` of Algorithm 4.7 is applied.

        * ``"paper"`` — literally on ``P(sigma, t) = poisson(n) P(sigma)``.
          Because the Poisson weight first *rises* with ``n`` (up to the
          mode ``Lambda t``), this can discard a subtree whose deeper
          extensions carry far more probability than the current node;
          for ``exp(-Lambda t) < w`` even the empty path is discarded.
          This is the regime behind the error blow-up of Table 5.3 and
          the paper's conclusion that the method applies only for small
          ``Lambda t``.
        * ``"safe"`` (default) — on the *supremum* of ``P(sigma', t)``
          over all extensions ``sigma'``, namely
          ``P(sigma) * max_{m >= n} poisson(m)``.  Never discards a
          subtree that still carries a node above ``w``; the reported
          error bound covers exactly what was discarded, as before.
    uniformization_rate:
        Optional explicit ``Lambda``.

    Returns
    -------
    PathEngineResult
    """
    context = prepare_path_engine(
        model,
        psi_states,
        time_bound,
        reward_bound,
        truncation_probability=truncation_probability,
        dead_states=dead_states,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        uniformization_rate=uniformization_rate,
    )
    return joint_distribution_from_context(context, initial_state)


def joint_distribution_all(
    model: MRM,
    initial_states: Iterable[int],
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
) -> Dict[int, PathEngineResult]:
    """Batched evaluation: one shared context, one search per initial state.

    Returns ``{initial_state: PathEngineResult}`` with per-state
    diagnostics intact.  Values are bitwise identical to running
    :func:`joint_distribution` per state (the searches are independent;
    the shared Omega memo tables return the same memoized values).
    """
    context = prepare_path_engine(
        model,
        psi_states,
        time_bound,
        reward_bound,
        truncation_probability=truncation_probability,
        dead_states=dead_states,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        uniformization_rate=uniformization_rate,
    )
    return {
        int(state): joint_distribution_from_context(context, int(state))
        for state in initial_states
    }


def _run_paths_dfs(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    w: float,
    depth_limit: Optional[int],
    pmf: np.ndarray,
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Algorithm 4.7 with an explicit stack.

    Stack frames carry ``(state, n, k, j, p_dtmc)`` with the bare DTMC
    path probability ``P(sigma)``; the Poisson-weighted probability
    ``P(sigma, t) = pmf[n] * P(sigma)`` is looked up from the log-space
    table on demand, so a deep underflow of the table head (large
    ``Lambda t``) affects only the entries that are genuinely zero.
    ``maxpois`` switches the truncation test to the safe variant (see
    :func:`joint_distribution`).
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        # Even the empty path is truncated (Algorithm 4.7 line 1): all
        # probability mass is discarded and the error bound is total.
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    stack: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...], float]] = [
        (initial_state, 0, root_k, root_j, 1.0)
    ]
    head_count = len(heads)
    while stack:
        state, depth, k, j, p_dtmc = stack.pop()
        generated += 1
        if depth > max_depth:
            max_depth = depth
        if state in psi:
            key = (k, j)
            aggregated[key] = aggregated.get(key, 0.0) + float(pmf[depth]) * p_dtmc
            stored += 1
        if depth_limit is not None and depth >= depth_limit:
            continue
        next_depth = depth + 1
        poisson_next = float(pmf[next_depth]) if next_depth < len(pmf) else 0.0
        for target, probability, impulse_idx in successors[state]:
            child_dtmc = p_dtmc * probability
            if target in dead:
                continue
            child_score = (
                poisson_next * child_dtmc
                if maxpois is None
                else child_dtmc * float(maxpois[next_depth])
            )
            if child_score < w:
                # eq. (4.6): the discarded path and all its suffixes; the
                # last state satisfies (Phi or Psi) since dead states were
                # skipped above.
                if next_depth < head_count:
                    tail = 1.0 - heads[next_depth]
                else:  # pragma: no cover - depth table always suffices
                    tail = 1.0
                error_bound += child_dtmc * tail
                continue
            level = state_level[target]
            child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
            child_j = (
                j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
            )
            stack.append((target, next_depth, child_k, child_j, child_dtmc))
    return aggregated, error_bound, generated, stored, max_depth


def _run_merged_dp(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    w: float,
    depth_limit: Optional[int],
    pmf: np.ndarray,
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Breadth-first dynamic programming over ``(state, k, j)`` classes.

    Paths with equal state and equal reward characterization are merged
    *before* the truncation test, so at equal ``w`` this prunes strictly
    less than the per-path DFS and yields a tighter error bound.  The
    frontier at depth ``n`` maps ``(state, k, j)`` to the merged DTMC
    probability; the Poisson weight ``pmf[n]`` is applied on storage.
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    frontier: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {
        (initial_state, root_k, root_j): 1.0
    }
    depth = 0
    head_count = len(heads)
    pmf_count = len(pmf)
    while frontier:
        max_depth = depth
        poisson_here = float(pmf[depth]) if depth < pmf_count else 0.0
        for (state, k, j), p_dtmc in frontier.items():
            generated += 1
            if state in psi:
                key = (k, j)
                aggregated[key] = aggregated.get(key, 0.0) + poisson_here * p_dtmc
                stored += 1
        if depth_limit is not None and depth >= depth_limit:
            break
        next_depth = depth + 1
        next_frontier: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {}
        for (state, k, j), p_dtmc in frontier.items():
            for target, probability, impulse_idx in successors[state]:
                if target in dead:
                    continue
                child_dtmc = p_dtmc * probability
                level = state_level[target]
                child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
                child_j = (
                    j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
                )
                key = (target, child_k, child_j)
                next_frontier[key] = next_frontier.get(key, 0.0) + child_dtmc
        # Truncation test on the merged classes.
        surviving: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {}
        tail = 1.0 - heads[next_depth] if next_depth < head_count else 1.0
        poisson_next = float(pmf[min(next_depth, pmf_count - 1)])
        ceiling = (
            None
            if maxpois is None
            else float(maxpois[min(next_depth, len(maxpois) - 1)])
        )
        for key, p_dtmc in next_frontier.items():
            score = poisson_next * p_dtmc if ceiling is None else p_dtmc * ceiling
            if score < w:
                error_bound += p_dtmc * tail
            else:
                surviving[key] = p_dtmc
        frontier = surviving
        depth = next_depth
    return aggregated, error_bound, generated, stored, max_depth


def _combine_with_omega(
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float],
    reward_levels: List[float],
    impulse_levels: List[float],
    time_bound: float,
    reward_bound: float,
    calculators: Optional[Dict[float, OmegaCalculator]] = None,
) -> Tuple[float, int, int]:
    """Combine class probabilities with ``Pr{Y(t) <= r | n, k, j}``.

    Per eqs. (4.9)/(4.10): with the distinct state rewards
    ``r_1 > ... > r_{K+1}``, group coefficients ``c_l = r_l - r_{K+1}``
    and impulse contribution ``imp = sum_l i_l j_l``, the conditional
    probability is ``Omega(r/t - r_{K+1} - imp/t, k)``.  One
    :class:`OmegaCalculator` is shared per distinct threshold so the memo
    tables are reused across classes; when a ``calculators`` mapping is
    passed in (the batched path), they are additionally reused across
    initial states, and the returned evaluation count covers only the
    nodes newly evaluated by this call.
    """
    if calculators is None:
        calculators = {}
    evaluations_before = sum(c.evaluations for c in calculators.values())
    if not aggregated:
        return 0.0, 0, 0
    smallest = reward_levels[-1]
    coefficients = [level - smallest for level in reward_levels]
    probability = 0.0
    for (k, j), mass in aggregated.items():
        impulse_total = sum(
            level * count for level, count in zip(impulse_levels, j)
        )
        threshold = reward_bound / time_bound - smallest - impulse_total / time_bound
        if threshold < 0.0:
            continue  # reward bound already violated by impulses alone
        calculator = calculators.get(threshold)
        if calculator is None:
            calculator = OmegaCalculator(coefficients, threshold)
            calculators[threshold] = calculator
        probability += mass * calculator.value(k)
    omega_evals = (
        sum(c.evaluations for c in calculators.values()) - evaluations_before
    )
    return probability, len(aggregated), omega_evals
