"""Uniformization with depth-first path generation (Sections 4.4.2, 4.6).

This is the paper's main computational contribution: evaluating

    Pr{Y(t) <= r, X(t) |= Psi}

over an MRM whose ``(!Phi or Psi)``-states have been made absorbing, by

1. uniformizing the MRM (Definition 4.2);
2. enumerating finite paths of the uniformized DTMC depth-first
   (Algorithm 4.7, DFPG) with *path truncation*: a path is abandoned as
   soon as its Poisson-weighted probability ``P(sigma, t)`` drops below
   the truncation probability ``w`` (Definition 4.6);
3. characterizing each stored path by its sojourn-count vector ``k``
   (one entry per distinct state reward) and impulse-count vector ``j``
   (one entry per distinct impulse reward) and aggregating the
   probabilities of paths with equal ``(k, j)``;
4. evaluating the conditional probability ``Pr{Y(t) <= r | n, k, j}`` per
   equivalence class with the Omega recursion (Algorithm 4.8) over
   uniform order statistics;
5. reporting the truncation error bound of eq. (4.6).

The module also implements *depth truncation* (eq. 4.3) as an alternative
strategy for the ablation benchmarks.

Batched evaluation
------------------
All inputs except the initial state — the uniformized process, the
successor tables, the Poisson pmf/head/max tables and the Omega memo
tables — depend only on the formula, not on where the search starts.
:func:`prepare_path_engine` factors that precomputation into a reusable
:class:`PathEngineContext`; :func:`joint_distribution_from_context` then
runs the search for one initial state, and
:func:`joint_distribution_all` evaluates every requested initial state
against a single shared context.  Sharing the context turns the
``O(n)``-pass all-states evaluation of a P2 until formula into one
precomputation plus ``n`` searches, and lets the Omega memoization work
across initial states (classes recur between starts).

Columnar merged engine
----------------------
The ``"merged"`` strategy runs as a vectorized columnar sweep: reward
characterizations ``(k, j)`` are interned to dense integer ids by a
:class:`ClassTable` (child classes derive from parent classes in O(1)
via a memoized ``(parent, move)`` table), the frontier at each depth is
three parallel NumPy arrays (state, class id, merged DTMC mass), one
depth step expands every frontier entry through a flat CSR successor
structure, merges duplicates with a lexsort + ``reduceat`` reduction
and applies the truncation test as one vectorized comparison.  The
final Omega combination groups classes by threshold and evaluates each
group through :meth:`repro.numerics.orderstat.OmegaCalculator.value_many`
— one shared memo traversal and a dot product per threshold instead of
one memoized recursion per class.  The previous dict-of-tuples
implementation remains available as strategy ``"merged-legacy"`` for
ablation and equivalence testing; both compute the same aggregation
(class ids are in bijection with the ``(k, j)`` tuples), so they agree
to summation-order rounding.

Multiprocess fan-out
--------------------
:func:`joint_distribution_many` (and the ``workers=`` parameter of
:func:`joint_distribution_all` / :func:`repro.check.until_probabilities`)
shards the initial states over the **persistent** ``fork``-based worker
pool of :mod:`repro.check.pool`: workers are forked once per process
and reused across calls, the context's large read-only arrays (CSR
successor structure, Poisson tables, psi mask) are published once to
POSIX shared memory, and each task carries only a small descriptor
handle — the context is never pickled on the hot path.  States are
split into many small out-degree-balanced shards that idle workers
steal from the shared queue.  Every worker runs the same deterministic
per-state search over byte-identical arrays, so the merged result dict
is bitwise identical to the serial evaluation; only the per-state
``omega_evaluations`` diagnostics reflect each worker's own memo
locality.  Worker counts are clamped to the machine's core count, and
on platforms without ``fork`` the fan-out falls back to the serial
loop.

All Poisson tables are evaluated in log space
(:func:`repro.numerics.poisson.poisson_pmf_table`), so the engine stays
exact-to-rounding for ``Lambda * t`` beyond ~745 where the recursive
scheme's seed ``exp(-Lambda t)`` underflows to zero — previously the
engine silently reported probability 0 with error bound 1 in that
regime.  A :class:`NumericalError` is raised only when every Poisson
weight within the explored depth range is genuinely unrepresentable in
double precision.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import kernels as kernels_mod
from repro.check.engine_cache import EngineCache
from repro.exceptions import (
    CheckError,
    NumericalError,
)
from repro.guard import get_guard
from repro.mrm.model import MRM
from repro.obs import get_collector
from repro.numerics.orderstat import OmegaCalculator
from repro.numerics.poisson import poisson_pmf_table

__all__ = [
    "ClassTable",
    "PathEngineResult",
    "PathEngineContext",
    "prepare_path_engine",
    "joint_distribution",
    "joint_distribution_from_context",
    "joint_distribution_all",
    "joint_distribution_many",
]

_STRATEGIES = ("paths", "merged", "merged-legacy")


@dataclass(frozen=True)
class PathEngineResult:
    """Outcome of one path-engine run from one initial state.

    Attributes
    ----------
    probability:
        The estimate of ``Pr{Y(t) <= r, X(t) |= Psi}`` (eq. 4.5).
    error_bound:
        The truncation error bound of eq. (4.6): an upper bound on the
        probability mass of discarded paths that could still have
        satisfied the formula.
    paths_generated:
        Number of DFPG tree nodes expanded.
    paths_stored:
        Number of stored ``(n, k, j)`` records (path/length pairs ending
        in a ``Psi``-state).
    classes:
        Number of distinct ``(k, j)`` equivalence classes, i.e. Omega
        evaluations needed before memoization.
    max_depth:
        Length of the longest explored path.
    uniformization_rate:
        The Poisson rate ``Lambda`` used.
    omega_evaluations:
        Omega recursion nodes newly evaluated for this run.  Under a
        shared :class:`PathEngineContext` the memo tables persist across
        initial states, so later runs report fewer evaluations for the
        same classes.
    """

    probability: float
    error_bound: float
    paths_generated: int
    paths_stored: int
    classes: int
    max_depth: int
    uniformization_rate: float
    omega_evaluations: int


def _poisson_heads(lam_t: float, depth: int) -> np.ndarray:
    """``head[n] = sum_{i < n} poisson(i; lam_t)`` for ``n = 0..depth``."""
    pmf = poisson_pmf_table(lam_t, depth)
    heads = np.empty(depth + 1, dtype=float)
    heads[0] = 0.0
    np.cumsum(pmf[:-1], out=heads[1:])
    return heads


def _poisson_max_from(lam_t: float, depth: int) -> np.ndarray:
    """``maxpois[n] = max_{m >= n} poisson(m; lam_t)`` for ``n = 0..depth + 1``.

    Used by the ``"safe"`` truncation mode: since the DTMC path
    probability can only shrink, ``p_dtmc * maxpois[n]`` bounds
    ``P(sigma', t)`` for every extension ``sigma'`` of the current path.
    The pmf rises up to the Poisson mode ``floor(lam_t)`` and decreases
    beyond it, so the suffix maximum is the mode value for ``n`` at or
    below the mode and the pmf itself past it — no table beyond
    ``depth`` is ever materialized, even when the mode lies far past it.
    """
    values = poisson_pmf_table(lam_t, depth + 1)
    mode = int(lam_t)
    if mode <= depth + 1:
        peak = float(values[mode])
    else:
        log_peak = -lam_t + mode * math.log(lam_t) - math.lgamma(mode + 1)
        peak = math.exp(log_peak)
    cutoff = min(mode, depth + 1)
    values[: cutoff + 1] = peak
    return values


def _max_useful_depth(lam_t: float, w: float, start: float = 1.0) -> int:
    """Smallest depth beyond which ``poisson(n) * start`` stays below ``w``.

    Since the DTMC path probability only shrinks, no path can survive the
    truncation test past this depth.  Used to pre-size the Poisson tables.
    The scan runs in log space so it remains exact for ``lam_t`` far past
    the ``exp(-lam_t)`` underflow point.
    """
    if w <= 0.0 or start <= 0.0:
        raise NumericalError("depth search requires positive w and start")
    if lam_t == 0.0:
        return 1
    log_limit = math.log(w) - math.log(start)
    log_lam_t = math.log(lam_t)
    log_term = -lam_t
    n = 0
    best_exceeded = 0
    while True:
        if log_term >= log_limit:
            best_exceeded = n
        n += 1
        log_term += log_lam_t - math.log(n)
        if n > lam_t and log_term < log_limit:
            return max(best_exceeded + 1, n)
        if n > 10_000_000:  # pragma: no cover - defensive
            raise NumericalError("Poisson depth search failed to terminate")


class ClassTable:
    """Integer interning of ``(k, j)`` reward characterizations.

    Every distinct pair of sojourn-count vector ``k`` and impulse-count
    vector ``j`` (the equivalence classes of eq. 4.9 — paths with equal
    characterization have equal conditional probability) is assigned a
    dense id ``0, 1, 2, ...`` in first-seen order.  The count vectors
    live in two growing row-major int64 matrices, so whole frontiers of
    classes can be gathered with one fancy-indexing call.

    Child classes derive incrementally: extending a path by a transition
    into a state of reward level ``l`` carrying impulse level ``i``
    increments ``k[l]`` and ``j[i]`` — a *move* ``m = l * J + i``.  The
    table memoizes ``children[class, move]``, so deriving the child of
    an already-seen ``(class, move)`` pair is a single O(1) array
    lookup, and :meth:`children` resolves a whole expansion batch with
    one gather plus a Python loop over only the never-seen pairs.
    """

    def __init__(self, num_levels: int, num_impulses: int) -> None:
        if num_levels < 1 or num_impulses < 1:
            raise CheckError(
                "a class table needs at least one reward and one impulse level"
            )
        self.num_levels = int(num_levels)
        self.num_impulses = int(num_impulses)
        self.num_moves = self.num_levels * self.num_impulses
        capacity = 64
        self._k = np.zeros((capacity, self.num_levels), dtype=np.int64)
        self._j = np.zeros((capacity, self.num_impulses), dtype=np.int64)
        self._children = np.full((capacity, self.num_moves), -1, dtype=np.int64)
        # Content index: raw little-endian bytes of the concatenated
        # (k, j) int64 row -> class id.  Bytes keys make bulk interning
        # one ``tobytes`` per row instead of two tuple conversions.
        self._index: Dict[bytes, int] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self._k.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        for name, fill in (("_k", 0), ("_j", 0), ("_children", -1)):
            old = getattr(self, name)
            fresh = np.full((new_capacity, old.shape[1]), fill, dtype=np.int64)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def intern(self, k, j) -> int:
        """Id of the class ``(k, j)``, assigning a fresh one if unseen."""
        k_row = np.asarray(k, dtype=np.int64)
        j_row = np.asarray(j, dtype=np.int64)
        if k_row.shape != (self.num_levels,) or j_row.shape != (self.num_impulses,):
            raise CheckError("class characterization has the wrong shape")
        key = k_row.tobytes() + j_row.tobytes()
        class_id = self._index.get(key)
        if class_id is not None:
            return class_id
        class_id = self._size
        self._ensure_capacity(class_id + 1)
        self._k[class_id] = k_row
        self._j[class_id] = j_row
        self._index[key] = class_id
        self._size += 1
        return class_id

    def root(self, level: int) -> int:
        """Id of the empty-path class starting at reward level ``level``."""
        k = [0] * self.num_levels
        k[int(level)] = 1
        return self.intern(k, [0] * self.num_impulses)

    def children(self, parents: np.ndarray, moves: np.ndarray) -> np.ndarray:
        """Vectorized child-class derivation for a batch of expansions.

        ``parents[i]`` is a class id and ``moves[i] = level * J + impulse``
        encodes the transition taken; returns the child class ids.  Only
        the distinct never-seen ``(parent, move)`` pairs fall back to
        interning — everything else is one array gather.
        """
        out = self._children[parents, moves]
        missing = out < 0
        if missing.any():
            pairs = np.unique(
                parents[missing] * np.int64(self.num_moves) + moves[missing]
            )
            miss_parents, miss_moves = np.divmod(pairs, np.int64(self.num_moves))
            levels, impulses = np.divmod(miss_moves, np.int64(self.num_impulses))
            rows = np.arange(pairs.size)
            child_k = self._k[miss_parents]
            child_k[rows, levels] += 1
            child_j = self._j[miss_parents]
            child_j[rows, impulses] += 1
            self._children[miss_parents, miss_moves] = self._intern_rows(
                child_k, child_j
            )
            out = self._children[parents, moves]
        return out

    def _intern_rows(self, k_rows: np.ndarray, j_rows: np.ndarray) -> np.ndarray:
        """Bulk :meth:`intern`: one id per row pair, appending unseen rows.

        The only per-row Python work is a ``tobytes`` + dict probe on the
        concatenated characterization; fresh rows are appended to the
        backing arrays in one slice assignment.
        """
        combined = np.ascontiguousarray(
            np.concatenate((k_rows, j_rows), axis=1), dtype=np.int64
        )
        index = self._index
        ids = np.empty(combined.shape[0], dtype=np.int64)
        fresh_rows = []
        next_id = self._size
        for pos, row in enumerate(combined):
            key = row.tobytes()
            class_id = index.get(key)
            if class_id is None:
                class_id = next_id
                index[key] = class_id
                fresh_rows.append(pos)
                next_id += 1
            ids[pos] = class_id
        if fresh_rows:
            self._ensure_capacity(next_id)
            block = combined[fresh_rows]
            self._k[self._size : next_id] = block[:, : self.num_levels]
            self._j[self._size : next_id] = block[:, self.num_levels :]
            self._size = next_id
        return ids

    def k_rows(self, class_ids: np.ndarray) -> np.ndarray:
        """Sojourn-count vectors of the given classes (one row each)."""
        return self._k[class_ids]

    def j_rows(self, class_ids: np.ndarray) -> np.ndarray:
        """Impulse-count vectors of the given classes (one row each)."""
        return self._j[class_ids]

    def key_of(self, class_id: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The ``(k, j)`` tuple pair a class id stands for."""
        if not 0 <= int(class_id) < self._size:
            raise CheckError(f"class id {class_id} out of range")
        return (
            tuple(int(v) for v in self._k[int(class_id)]),
            tuple(int(v) for v in self._j[int(class_id)]),
        )


@dataclass
class PathEngineContext:
    """Initial-state-independent precomputation for one P2 formula.

    Built once by :func:`prepare_path_engine` and reused by every
    :func:`joint_distribution_from_context` call: the uniformized
    process, successor tables, reward-level indexing, Poisson
    pmf/head/max tables and the Omega calculators (whose memo tables are
    keyed by threshold and grow monotonically across runs).

    For the columnar ``"merged"`` engine the successor structure is
    additionally flattened to CSR arrays (``succ_indptr[s] ..
    succ_indptr[s + 1]`` index the out-edges of ``s``; dead targets are
    dropped, matching the search's pruning) with per-edge *move* codes,
    and a :class:`ClassTable` interns the reward classes — both persist
    across initial states, so classes recurring between starts keep
    their ids and child derivations.
    """

    psi: frozenset
    dead: frozenset
    successors: List[List[Tuple[int, float, int]]]
    state_level: List[int]
    reward_levels: List[float]
    impulse_levels: List[float]
    time_bound: float
    reward_bound: float
    rate: float
    lam_t: float
    w: float
    depth_limit: Optional[int]
    strategy: str
    truncation: str
    pmf: np.ndarray
    heads: np.ndarray
    maxpois: Optional[np.ndarray]
    num_states: int
    calculators: Dict[float, OmegaCalculator] = field(default_factory=dict)
    succ_indptr: Optional[np.ndarray] = None
    succ_targets: Optional[np.ndarray] = None
    succ_probs: Optional[np.ndarray] = None
    succ_moves: Optional[np.ndarray] = None
    psi_mask: Optional[np.ndarray] = None
    class_table: Optional[ClassTable] = None
    kernels: str = "numpy"


def prepare_path_engine(
    model: MRM,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
    cache: Optional[EngineCache] = None,
    kernels: str = "auto",
) -> PathEngineContext:
    """Validate the query and build the shared :class:`PathEngineContext`.

    Parameters are those of :func:`joint_distribution` minus the initial
    state; see there for their meaning.  The model is used as given —
    callers evaluating an until formula must apply
    :meth:`repro.mrm.MRM.make_absorbing` first (Theorems 4.1/4.3).

    ``kernels`` selects the hot-loop backend (see :mod:`repro.kernels`):
    the name is resolved here — ``"auto"`` becomes ``"numba"`` or
    ``"numpy"`` — a ``kernels.backend`` obs event records the choice
    (plus the one-off JIT compile time when this process compiled the
    set), and the resolved name travels inside the context so every
    search, including pool workers, uses the same backend.

    When an :class:`~repro.check.engine_cache.EngineCache` is supplied
    the whole context is cached under the model fingerprint plus the
    formula-relevant parameters, the Poisson tables are shared across
    contexts with equal ``Lambda * t``, and the Omega memo tables are
    shared across every formula with the same distinct-reward levels —
    so repeated checks against the same (transformed) model skip the
    precomputation and start from warm memos.
    """
    if time_bound <= 0:
        raise CheckError("time bound must be positive")
    if reward_bound < 0:
        raise CheckError("reward bound must be non-negative")
    if truncation_probability < 0:
        raise CheckError("truncation probability must be non-negative")
    if truncation_probability == 0.0 and depth_limit is None:
        raise CheckError(
            "either a positive truncation probability or a depth limit is "
            "required for the search to terminate"
        )
    if strategy not in _STRATEGIES:
        raise CheckError(f"unknown path-engine strategy {strategy!r}")
    if truncation not in ("paper", "safe"):
        raise CheckError(f"unknown truncation mode {truncation!r}")
    psi = frozenset(int(s) for s in psi_states)
    dead = frozenset(int(s) for s in dead_states) if dead_states else frozenset()

    resolved_kernels = kernels_mod.resolve_backend(kernels)
    obs = get_collector()
    if obs.enabled:
        kernel_set = kernels_mod.active_kernels(resolved_kernels)
        obs.event(
            "kernels.backend",
            requested=kernels,
            backend=resolved_kernels,
            compile_seconds=(
                kernel_set.compile_seconds if kernel_set is not None else 0.0
            ),
        )
        obs.annotate(kernels=resolved_kernels)
    if cache is not None and resolved_kernels != "numpy":
        # Reference the process-wide kernel set from the cache so its
        # lifetime (and /cache introspection) covers the compiled code
        # alongside the contexts it accelerates.
        cache.get_or_build(
            ("kernels", resolved_kernels),
            lambda: kernels_mod.kernel_set(resolved_kernels),
        )

    def build() -> PathEngineContext:
        return _build_context(
            model,
            psi,
            dead,
            float(time_bound),
            float(reward_bound),
            float(truncation_probability),
            depth_limit,
            strategy,
            truncation,
            uniformization_rate,
            cache,
            resolved_kernels,
        )

    if cache is None:
        return build()
    key = (
        "path-context",
        model.fingerprint(),
        psi,
        dead,
        float(time_bound),
        float(reward_bound),
        float(truncation_probability),
        depth_limit,
        strategy,
        truncation,
        uniformization_rate,
        resolved_kernels,
    )
    return cache.get_or_build(key, build)


def _build_context(
    model: MRM,
    psi: frozenset,
    dead: frozenset,
    time_bound: float,
    reward_bound: float,
    w: float,
    depth_limit: Optional[int],
    strategy: str,
    truncation: str,
    uniformization_rate: Optional[float],
    cache: Optional[EngineCache],
    kernels: str = "numpy",
) -> PathEngineContext:
    """The actual context construction behind :func:`prepare_path_engine`."""
    with get_collector().span("until.prepare"):
        return _build_context_timed(
            model,
            psi,
            dead,
            time_bound,
            reward_bound,
            w,
            depth_limit,
            strategy,
            truncation,
            uniformization_rate,
            cache,
            kernels,
        )


def _build_context_timed(
    model: MRM,
    psi: frozenset,
    dead: frozenset,
    time_bound: float,
    reward_bound: float,
    w: float,
    depth_limit: Optional[int],
    strategy: str,
    truncation: str,
    uniformization_rate: Optional[float],
    cache: Optional[EngineCache],
    kernels: str = "numpy",
) -> PathEngineContext:
    n_states = model.num_states
    process = model.uniformize(uniformization_rate)
    lam = process.rate
    lam_t = lam * time_bound

    reward_levels = model.distinct_state_rewards()
    impulse_levels = model.distinct_impulse_rewards()
    level_index = {level: i for i, level in enumerate(reward_levels)}
    impulse_index = {level: i for i, level in enumerate(impulse_levels)}
    state_level = [level_index[model.state_reward(s)] for s in range(n_states)]

    # Successor tables for the uniformized DTMC: per state, a list of
    # (successor, probability, impulse-level index).
    matrix = process.dtmc.matrix
    successors: List[List[Tuple[int, float, int]]] = []
    for state in range(n_states):
        entries: List[Tuple[int, float, int]] = []
        for pos in range(matrix.indptr[state], matrix.indptr[state + 1]):
            target = int(matrix.indices[pos])
            probability = float(matrix.data[pos])
            if probability <= 0.0:
                continue
            impulse = process.impulse_reward(state, target)
            entries.append((target, probability, impulse_index[impulse]))
        successors.append(entries)

    max_depth_cap = (
        depth_limit if depth_limit is not None else _max_useful_depth(lam_t, w)
    )
    if cache is None:
        pmf = poisson_pmf_table(lam_t, max_depth_cap + 1)
    else:
        pmf = cache.get_or_build(
            ("poisson-pmf", lam_t, max_depth_cap + 1),
            lambda: poisson_pmf_table(lam_t, max_depth_cap + 1),
        )
    if lam_t > 0.0 and float(pmf.max()) == 0.0:
        raise NumericalError(
            f"every Poisson weight up to depth {max_depth_cap + 1} underflows "
            f"at Lambda*t = {lam_t:g}; the result is not representable in "
            "double precision (raise the depth limit past the Poisson mode "
            f"~{int(lam_t)})"
        )
    heads = np.empty(max_depth_cap + 2, dtype=float)
    heads[0] = 0.0
    np.cumsum(pmf[:-1], out=heads[1:])
    if truncation != "safe":
        maxpois = None
    elif cache is None:
        maxpois = _poisson_max_from(lam_t, max_depth_cap + 1)
    else:
        maxpois = cache.get_or_build(
            ("poisson-max", lam_t, max_depth_cap + 1),
            lambda: _poisson_max_from(lam_t, max_depth_cap + 1),
        )

    # Flat CSR successor structure for the columnar engine, with dead
    # targets dropped (the searches never enter them) and per-edge move
    # codes (target reward level x impulse level).
    num_impulses = len(impulse_levels)
    indptr = np.zeros(n_states + 1, dtype=np.int64)
    flat_targets: List[int] = []
    flat_probs: List[float] = []
    flat_moves: List[int] = []
    for state in range(n_states):
        for target, probability, impulse_idx in successors[state]:
            if target in dead:
                continue
            flat_targets.append(target)
            flat_probs.append(probability)
            flat_moves.append(state_level[target] * num_impulses + impulse_idx)
        indptr[state + 1] = len(flat_targets)
    psi_mask = np.zeros(n_states, dtype=bool)
    for state in psi:
        psi_mask[state] = True

    calculators: Dict[float, OmegaCalculator]
    if cache is None:
        calculators = {}
    else:
        calculators = cache.calculators_for(reward_levels)

    return PathEngineContext(
        psi=psi,
        dead=dead,
        successors=successors,
        state_level=state_level,
        reward_levels=reward_levels,
        impulse_levels=impulse_levels,
        time_bound=time_bound,
        reward_bound=reward_bound,
        rate=lam,
        lam_t=lam_t,
        w=w,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        pmf=pmf,
        heads=heads,
        maxpois=maxpois,
        num_states=n_states,
        calculators=calculators,
        succ_indptr=indptr,
        succ_targets=np.asarray(flat_targets, dtype=np.int64),
        succ_probs=np.asarray(flat_probs, dtype=float),
        succ_moves=np.asarray(flat_moves, dtype=np.int64),
        psi_mask=psi_mask,
        class_table=ClassTable(len(reward_levels), num_impulses),
        kernels=kernels,
    )


def joint_distribution_from_context(
    context: PathEngineContext, initial_state: int
) -> PathEngineResult:
    """Run the configured search from one initial state against a context.

    The heavy per-formula precomputation lives in the context; this call
    performs only the DFPG/DP search and the Omega combination.  Omega
    memo tables persist inside the context, so evaluating many initial
    states shares their work.
    """
    if not 0 <= int(initial_state) < context.num_states:
        raise CheckError(f"initial state {initial_state} out of range")
    if context.strategy == "merged":
        k_rows, j_rows, agg_mass, error_bound, generated, stored, max_depth = (
            _run_merged_columnar(int(initial_state), context)
        )
        probability, classes, omega_evals = _combine_with_omega_matrix(
            k_rows,
            j_rows,
            agg_mass,
            context.reward_levels,
            context.impulse_levels,
            context.time_bound,
            context.reward_bound,
            calculators=context.calculators,
            kernels=context.kernels,
        )
    else:
        runner = (
            _run_paths_dfs if context.strategy == "paths" else _run_merged_dp
        )
        stats = runner(
            initial_state=int(initial_state),
            psi=context.psi,
            dead=context.dead,
            successors=context.successors,
            state_level=context.state_level,
            num_levels=len(context.reward_levels),
            num_impulses=len(context.impulse_levels),
            w=context.w,
            depth_limit=context.depth_limit,
            pmf=context.pmf,
            heads=context.heads,
            maxpois=context.maxpois,
        )
        aggregated, error_bound, generated, stored, max_depth = stats
        probability, classes, omega_evals = _combine_with_omega(
            aggregated,
            context.reward_levels,
            context.impulse_levels,
            context.time_bound,
            context.reward_bound,
            calculators=context.calculators,
        )
    return PathEngineResult(
        probability=probability,
        error_bound=error_bound,
        paths_generated=generated,
        paths_stored=stored,
        classes=classes,
        max_depth=max_depth,
        uniformization_rate=context.rate,
        omega_evaluations=omega_evals,
    )


def joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
    kernels: str = "auto",
) -> PathEngineResult:
    """``Pr{Y(t) <= r, X(t) in psi_states}`` from ``initial_state``.

    The model is used as given — callers that evaluate an until formula
    must apply :meth:`repro.mrm.MRM.make_absorbing` first (Theorems
    4.1/4.3); see :func:`repro.check.until.until_probability`.  To
    evaluate many initial states of the same formula, prefer
    :func:`joint_distribution_all` (or an explicit
    :func:`prepare_path_engine` context), which shares the
    precomputation.

    Parameters
    ----------
    model:
        The (already transformed) MRM.
    initial_state:
        The starting state ``s_0`` (point-mass initial distribution).
    psi_states:
        The target set; a path contributes when its last state lies here.
    time_bound, reward_bound:
        ``t > 0`` and ``r >= 0`` of ``Pr{Y(t) <= r, ...}``.
    truncation_probability:
        The path-truncation threshold ``w`` (Definition 4.6).  Must be
        positive unless a ``depth_limit`` bounds the search instead.
    dead_states:
        States whose subtrees cannot contribute (the ``(!Phi and !Psi)``
        states of Algorithm 4.7); exploration prunes there and the error
        bound excludes them per eq. (4.6).
    depth_limit:
        Optional maximal path length ``N`` — the *depth truncation* of
        eq. (4.3).  May be combined with path truncation.
    strategy:
        ``"paths"`` — the paper's per-path DFS (Algorithm 4.7);
        ``"merged"`` — a dynamic-programming variant that aggregates
        probability mass per ``(state, k, j)`` before applying the
        truncation test, which prunes strictly less at equal ``w`` (its
        error bound still covers exactly what was discarded).  It runs
        as the vectorized columnar sweep over a :class:`ClassTable`
        (see the module docstring); ``"merged-legacy"`` selects the
        dict-of-tuples implementation of the same recursion, kept for
        ablation and equivalence testing.
    truncation:
        How the test ``p < w`` of Algorithm 4.7 is applied.

        * ``"paper"`` — literally on ``P(sigma, t) = poisson(n) P(sigma)``.
          Because the Poisson weight first *rises* with ``n`` (up to the
          mode ``Lambda t``), this can discard a subtree whose deeper
          extensions carry far more probability than the current node;
          for ``exp(-Lambda t) < w`` even the empty path is discarded.
          This is the regime behind the error blow-up of Table 5.3 and
          the paper's conclusion that the method applies only for small
          ``Lambda t``.
        * ``"safe"`` (default) — on the *supremum* of ``P(sigma', t)``
          over all extensions ``sigma'``, namely
          ``P(sigma) * max_{m >= n} poisson(m)``.  Never discards a
          subtree that still carries a node above ``w``; the reported
          error bound covers exactly what was discarded, as before.
    uniformization_rate:
        Optional explicit ``Lambda``.
    kernels:
        Hot-loop backend for the columnar sweep and the Omega
        recursion: ``"auto"`` (numba when available, else the NumPy
        reference path), ``"numpy"``, ``"numba"`` or ``"python"``.
        All backends return bitwise-identical results; see
        :mod:`repro.kernels`.

    Returns
    -------
    PathEngineResult
    """
    context = prepare_path_engine(
        model,
        psi_states,
        time_bound,
        reward_bound,
        truncation_probability=truncation_probability,
        dead_states=dead_states,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        uniformization_rate=uniformization_rate,
        kernels=kernels,
    )
    return joint_distribution_from_context(context, initial_state)


def joint_distribution_all(
    model: MRM,
    initial_states: Iterable[int],
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    truncation_probability: float = 1e-8,
    dead_states: Optional[AbstractSet[int]] = None,
    depth_limit: Optional[int] = None,
    strategy: str = "paths",
    truncation: str = "safe",
    uniformization_rate: Optional[float] = None,
    workers: int = 0,
    cache: Optional[EngineCache] = None,
    pool: Optional["object"] = None,
    kernels: str = "auto",
) -> Dict[int, PathEngineResult]:
    """Batched evaluation: one shared context, one search per initial state.

    Returns ``{initial_state: PathEngineResult}`` with per-state
    diagnostics intact.  Values are bitwise identical to running
    :func:`joint_distribution` per state (the searches are independent;
    the shared Omega memo tables return the same memoized values).

    ``workers > 1`` shards the initial states over the persistent worker
    pool (see :func:`joint_distribution_many`); ``cache`` reuses/persists
    the precomputation across calls (see :func:`prepare_path_engine`)
    and ``pool`` selects an explicit
    :class:`~repro.check.pool.PersistentWorkerPool` (the cache's own
    pool when checking through an :class:`~repro.check.engine_cache.\
EngineCache`; the process-wide default otherwise).
    """
    context = prepare_path_engine(
        model,
        psi_states,
        time_bound,
        reward_bound,
        truncation_probability=truncation_probability,
        dead_states=dead_states,
        depth_limit=depth_limit,
        strategy=strategy,
        truncation=truncation,
        uniformization_rate=uniformization_rate,
        cache=cache,
        kernels=kernels,
    )
    return joint_distribution_many(
        context, initial_states, workers=workers, pool=pool
    )


#: Wall-clock watchdog per pool attempt.  Generous — it exists to catch
#: a hung worker (deadlocked fork, stuck allocator), not a slow one;
#: genuinely slow shards are the ambient guard's business.  Enforced as
#: one absolute deadline across all of an attempt's shards, so k hung
#: shards cost one timeout, not k.
DEFAULT_SHARD_TIMEOUT_S = 600.0

#: Pool submissions per shard before it is re-executed serially: the
#: first attempt plus this many re-submissions to a fresh pool.
POOL_RETRIES = 1


def joint_distribution_many(
    context: PathEngineContext,
    initial_states: Iterable[int],
    workers: int = 0,
    shard_timeout_s: Optional[float] = None,
    pool: Optional["object"] = None,
) -> Dict[int, PathEngineResult]:
    """Run the search for many initial states against one shared context.

    With ``workers <= 1`` this is the serial loop of
    :func:`joint_distribution_all`.  With ``workers > 1`` the states are
    split into many small cost-balanced shards (out-degree frontier
    estimates, about four per worker) and drained by a **persistent**
    ``fork``-based worker pool (:mod:`repro.check.pool`): workers are
    forked once per process and reused across calls, the context's large
    arrays are published once to POSIX shared memory, and each task
    ships only a small descriptor handle — the context is *never*
    pickled on this path.  Idle workers steal the next shard from the
    shared queue, so one expensive state no longer drags a rigid
    ``len/workers`` slice behind it.  The merged dict (probabilities,
    error bounds, path counts) is bitwise identical to the serial
    evaluation — the per-state search does not depend on the memo state,
    which only shortcuts work.  Only the per-state ``omega_evaluations``
    diagnostics differ: serially they reflect one memo warmed
    left-to-right, in parallel each shard warms its own.  Platforms
    without the ``fork`` start method fall back to the serial loop.

    ``workers`` is clamped to ``os.cpu_count()`` — oversubscribing cores
    only re-creates the regression this pool replaced — and a
    ``pool.workers-clamped`` event records any clamp on the ambient
    collector.  ``pool`` selects the :class:`repro.check.pool.\
PersistentWorkerPool` to run on (e.g. the one owned by an
    :class:`~repro.check.engine_cache.EngineCache`); by default the
    process-wide pool is used.

    The pool is fault tolerant.  Each attempt runs under one *absolute*
    watchdog deadline (``shard_timeout_s``, default
    :data:`DEFAULT_SHARD_TIMEOUT_S`, clipped to the ambient guard's
    remaining deadline) covering all of its shards; a worker that dies
    mid-shard — OOM-kill, nonzero exit, crashing initializer — is
    detected instead of hanging the parent.  Failed shards are
    re-submitted to a rebuilt pool up to :data:`POOL_RETRIES` times and
    finally re-executed serially in the parent, so the merged result is
    still bitwise identical to the all-serial run.  Every recovery is
    recorded as a ``pool.worker-failure`` event on the ambient collector
    (with the shard index and the pool's worker pids); only a failure of
    the serial re-execution itself can raise, and guard trips inside
    workers propagate unchanged (they belong to the degradation cascade,
    not to pool recovery).

    When the ambient collector is recording, each worker records its
    shard under its own collector and ships the snapshot back with the
    results; the parent merges them (clock-offset normalized, worker
    pids preserved) so the run yields one trace spanning every process.
    A killed worker ships nothing — its shard is *flagged* through the
    failure event instead of a partial trace being merged.
    """
    states = [int(state) for state in initial_states]
    requested = int(workers or 0)
    obs = get_collector()
    use_pool = (
        requested > 1
        and len(states) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    workers = requested
    if use_pool:
        from repro.check import pool as pool_module

        effective, cpu = pool_module.effective_workers(requested)
        if effective < requested and obs.enabled:
            obs.event(
                "pool.workers-clamped",
                requested=requested,
                cpu_count=cpu,
                effective=max(effective, 1),
            )
        workers = min(effective, len(states))
        use_pool = workers > 1
    if not use_pool:
        return {
            state: joint_distribution_from_context(context, state)
            for state in states
        }
    worker_pool = pool if pool is not None else pool_module.default_pool()
    shards = pool_module.plan_shards(context, states, workers)
    timeout_s = (
        DEFAULT_SHARD_TIMEOUT_S if shard_timeout_s is None else float(shard_timeout_s)
    )
    guard = get_guard()
    remaining = guard.remaining_time()
    if remaining is not None:
        # A shard has no business outliving the run's deadline; the
        # slack lets workers trip their own checkpoints (and report a
        # proper GuardExceeded) before the watchdog fires.
        timeout_s = min(timeout_s, remaining + 5.0)

    results: Dict[int, PathEngineResult] = {}
    pending = list(enumerate(shards))
    total_failures = 0
    for attempt in range(1 + POOL_RETRIES):
        parts, snapshots, failures, pool_pids = worker_pool.run_shards(
            context, pending, timeout_s, workers
        )
        results.update(parts)
        if obs.enabled:
            # Fold each surviving worker's telemetry into the parent
            # trace (clock-offset normalized; worker spans keep their
            # pid).  Failed shards shipped nothing — their partial
            # traces are flagged below, never merged.
            for snapshot in snapshots:
                obs.merge_snapshot(snapshot)
        if not failures:
            if obs.enabled and total_failures:
                obs.annotate(pool_failures=total_failures)
            return results
        total_failures += len(failures)
        retrying = attempt < POOL_RETRIES
        if obs.enabled:
            for index, shard, error in failures:
                obs.counter_add("pool.worker-failures")
                obs.event(
                    "pool.worker-failure",
                    reason=str(error),
                    shard=list(shard),
                    shard_index=int(index),
                    worker_pids=[int(pid) for pid in pool_pids],
                    recovery="pool-retry" if retrying else "serial",
                )
        pending = [(index, shard) for index, shard, _ in failures]
        if not retrying:
            break
    # Serial re-execution of the still-failing shards: deterministic,
    # identical numbers, no pool machinery left to fail.
    for index, shard in pending:
        if obs.enabled:
            obs.event(
                "pool.serial-reexecution",
                shard=list(shard),
                shard_index=int(index),
            )
        for state in shard:
            results[state] = joint_distribution_from_context(context, state)
    if obs.enabled and total_failures:
        obs.annotate(pool_failures=total_failures)
    return results


def _run_paths_dfs(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    w: float,
    depth_limit: Optional[int],
    pmf: np.ndarray,
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Algorithm 4.7 with an explicit stack.

    Stack frames carry ``(state, n, k, j, p_dtmc)`` with the bare DTMC
    path probability ``P(sigma)``; the Poisson-weighted probability
    ``P(sigma, t) = pmf[n] * P(sigma)`` is looked up from the log-space
    table on demand, so a deep underflow of the table head (large
    ``Lambda t``) affects only the entries that are genuinely zero.
    ``maxpois`` switches the truncation test to the safe variant (see
    :func:`joint_distribution`).
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        # Even the empty path is truncated (Algorithm 4.7 line 1): all
        # probability mass is discarded and the error bound is total.
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    stack: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...], float]] = [
        (initial_state, 0, root_k, root_j, 1.0)
    ]
    head_count = len(heads)
    guard = get_guard()
    obs = get_collector()
    mass_series = obs.series("until.truncation-mass") if obs.enabled else None
    frame_bytes = 120 + 16 * (num_levels + num_impulses)
    while stack:
        if (generated & 1023) == 0:
            # Every 1024th node: the DFS pops millions of frames, so
            # both the checkpoint and the series sample must stay off
            # the critical path (the series is subsampled further — the
            # trajectory does not need checkpoint resolution).
            if guard.enabled:
                guard.checkpoint("until.paths", mem_bytes=len(stack) * frame_bytes)
            if mass_series is not None and (generated & 4095) == 0:
                mass_series.append(float(generated), float(error_bound))
        state, depth, k, j, p_dtmc = stack.pop()
        generated += 1
        if depth > max_depth:
            max_depth = depth
        if state in psi:
            key = (k, j)
            aggregated[key] = aggregated.get(key, 0.0) + float(pmf[depth]) * p_dtmc
            stored += 1
        if depth_limit is not None and depth >= depth_limit:
            continue
        next_depth = depth + 1
        poisson_next = float(pmf[next_depth]) if next_depth < len(pmf) else 0.0
        for target, probability, impulse_idx in successors[state]:
            child_dtmc = p_dtmc * probability
            if target in dead:
                continue
            child_score = (
                poisson_next * child_dtmc
                if maxpois is None
                else child_dtmc * float(maxpois[next_depth])
            )
            if child_score < w:
                # eq. (4.6): the discarded path and all its suffixes; the
                # last state satisfies (Phi or Psi) since dead states were
                # skipped above.
                if next_depth < head_count:
                    tail = 1.0 - heads[next_depth]
                else:  # pragma: no cover - depth table always suffices
                    tail = 1.0
                error_bound += child_dtmc * tail
                continue
            level = state_level[target]
            child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
            child_j = (
                j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
            )
            stack.append((target, next_depth, child_k, child_j, child_dtmc))
    return aggregated, error_bound, generated, stored, max_depth


def _run_merged_dp(
    initial_state: int,
    psi: frozenset,
    dead: frozenset,
    successors: List[List[Tuple[int, float, int]]],
    state_level: List[int],
    num_levels: int,
    num_impulses: int,
    w: float,
    depth_limit: Optional[int],
    pmf: np.ndarray,
    heads: np.ndarray,
    maxpois: Optional[np.ndarray],
) -> Tuple[Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float], float, int, int, int]:
    """Breadth-first dynamic programming over ``(state, k, j)`` classes.

    Paths with equal state and equal reward characterization are merged
    *before* the truncation test, so at equal ``w`` this prunes strictly
    less than the per-path DFS and yields a tighter error bound.  The
    frontier at depth ``n`` maps ``(state, k, j)`` to the merged DTMC
    probability; the Poisson weight ``pmf[n]`` is applied on storage.

    This is the legacy dict-of-tuples implementation (strategy
    ``"merged-legacy"``), kept as the reference for the vectorized
    :func:`_run_merged_columnar`, which computes the same recursion over
    interned class ids and columnar frontiers.
    """
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in dead:
        return aggregated, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        return aggregated, 1.0, 0, 0, 0

    root_k = tuple(
        1 if i == state_level[initial_state] else 0 for i in range(num_levels)
    )
    root_j = (0,) * num_impulses
    frontier: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {
        (initial_state, root_k, root_j): 1.0
    }
    depth = 0
    head_count = len(heads)
    pmf_count = len(pmf)
    guard = get_guard()
    obs = get_collector()
    frontier_series = obs.series("until.frontier") if obs.enabled else None
    mass_series = obs.series("until.truncation-mass") if obs.enabled else None
    entry_bytes = 120 + 16 * (num_levels + num_impulses)
    while frontier:
        if guard.enabled:
            # Dict-of-tuples frontier: a rough per-entry footprint (key
            # tuple, count tuples, hash slots) keeps the estimate cheap.
            guard.checkpoint(
                "until.merged", mem_bytes=len(frontier) * entry_bytes
            )
        if frontier_series is not None:
            frontier_series.append(float(depth), float(len(frontier)))
        max_depth = depth
        poisson_here = float(pmf[depth]) if depth < pmf_count else 0.0
        for (state, k, j), p_dtmc in frontier.items():
            generated += 1
            if state in psi:
                key = (k, j)
                aggregated[key] = aggregated.get(key, 0.0) + poisson_here * p_dtmc
                stored += 1
        if depth_limit is not None and depth >= depth_limit:
            break
        next_depth = depth + 1
        next_frontier: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {}
        for (state, k, j), p_dtmc in frontier.items():
            for target, probability, impulse_idx in successors[state]:
                if target in dead:
                    continue
                child_dtmc = p_dtmc * probability
                level = state_level[target]
                child_k = k[:level] + (k[level] + 1,) + k[level + 1 :]
                child_j = (
                    j[:impulse_idx] + (j[impulse_idx] + 1,) + j[impulse_idx + 1 :]
                )
                key = (target, child_k, child_j)
                next_frontier[key] = next_frontier.get(key, 0.0) + child_dtmc
        # Truncation test on the merged classes.  Past the end of the
        # pmf table the Poisson weight is genuinely below every
        # representable threshold, so frontiers there score 0.0 — the
        # same convention as the DFS (a stale last-entry lookup would
        # keep deep frontiers alive in "paper" mode and leak their mass
        # out of the error bound).
        surviving: Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], float] = {}
        tail = 1.0 - heads[next_depth] if next_depth < head_count else 1.0
        poisson_next = float(pmf[next_depth]) if next_depth < pmf_count else 0.0
        ceiling = (
            None
            if maxpois is None
            else float(maxpois[min(next_depth, len(maxpois) - 1)])
        )
        for key, p_dtmc in next_frontier.items():
            score = poisson_next * p_dtmc if ceiling is None else p_dtmc * ceiling
            if score < w:
                error_bound += p_dtmc * tail
            else:
                surviving[key] = p_dtmc
        if mass_series is not None:
            mass_series.append(float(next_depth), float(error_bound))
        frontier = surviving
        depth = next_depth
    return aggregated, error_bound, generated, stored, max_depth


def _class_packing(context: PathEngineContext) -> Optional[Tuple[int, int]]:
    """Bit-field layout for packing ``(k, j)`` into at most two int64s.

    The search depth is hard-bounded by the Poisson table length: in
    ``"paper"`` mode every weight past the table is 0.0, in ``"safe"``
    mode the final suffix maximum is (by construction of the table
    sizing in ``_max_useful_depth``) already below ``w``, and an explicit
    ``depth_limit`` shortens the table to match.  Every count entry is
    therefore at most ``len(pmf) + 1``, so each field needs a fixed known
    number of bits.  Returns ``(bits, fields_per_word)`` when all
    ``num_levels + num_impulses`` fields fit into two 63-bit words, or
    ``None`` (caller falls back to :class:`ClassTable` interning).
    """
    bits = (len(context.pmf) + 2).bit_length()
    fields = len(context.reward_levels) + len(context.impulse_levels)
    fields_per_word = 63 // bits
    if fields > 2 * fields_per_word:
        return None
    return bits, fields_per_word


def _run_merged_columnar(
    initial_state: int, context: PathEngineContext
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, int, int, int]:
    """The merged-DP recursion as a vectorized columnar sweep.

    Semantically identical to :func:`_run_merged_dp` — same frontier,
    same merge, same truncation test, same error bound — but the
    frontier at each depth is parallel arrays (state, class, merged DTMC
    mass) and every step is an array operation:

    * expansion gathers all out-edges of the frontier states through the
      context's flat CSR successor arrays (``np.repeat`` over the
      per-state degree, no per-node Python tuples);
    * class characterizations are bit-packed count vectors (two int64
      words, see :func:`_class_packing`), so deriving a child class is a
      vectorized add of the per-move field increment — no hashing or
      interning anywhere in the sweep; models whose counts do not fit
      two words fall back to :class:`ClassTable` interning;
    * duplicates merge with one ``lexsort`` over (class words, state)
      plus ``np.add.reduceat``;
    * per-depth storage appends the Poisson-weighted psi rows to a
      column buffer; one final sort-merge aggregates them per class.

    Returns ``(k_rows, j_rows, masses)`` — one row per distinct stored
    class with its Poisson-weighted mass (combine with
    :func:`_combine_with_omega_matrix`) — plus the same statistics tuple
    as the other runners.
    """
    packing = _class_packing(context)
    if packing is None:
        return _sweep_interned(initial_state, context)
    return _sweep_packed(initial_state, context, *packing)


def _no_classes(context: PathEngineContext) -> Tuple[np.ndarray, np.ndarray]:
    k_rows = np.empty((0, len(context.reward_levels)), dtype=np.int64)
    j_rows = np.empty((0, len(context.impulse_levels)), dtype=np.int64)
    return k_rows, j_rows


def _sweep_packed(
    initial_state: int, context: PathEngineContext, bits: int, fields_per_word: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, int, int, int]:
    """Columnar sweep over bit-packed class words (see caller)."""
    pmf = context.pmf
    heads = context.heads
    maxpois = context.maxpois
    w = context.w
    depth_limit = context.depth_limit
    psi_mask = context.psi_mask
    indptr = context.succ_indptr
    succ_targets = context.succ_targets
    succ_probs = context.succ_probs
    succ_moves = context.succ_moves
    num_levels = len(context.reward_levels)
    num_impulses = len(context.impulse_levels)

    empty_k, empty_j = _no_classes(context)
    no_mass = np.empty(0, dtype=float)
    if initial_state in context.dead:
        return empty_k, empty_j, no_mass, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        return empty_k, empty_j, no_mass, 1.0, 0, 0, 0

    # Field ``f`` (k fields first, then j fields) lives in word
    # ``f // fields_per_word`` at bit offset ``(f % fields_per_word) * bits``.
    def field_increment(field: int) -> Tuple[int, int]:
        word, slot = divmod(field, fields_per_word)
        value = 1 << (slot * bits)
        return (value, 0) if word == 0 else (0, value)

    move_lo = np.zeros(num_levels * num_impulses, dtype=np.int64)
    move_hi = np.zeros(num_levels * num_impulses, dtype=np.int64)
    for level in range(num_levels):
        k_lo, k_hi = field_increment(level)
        for impulse in range(num_impulses):
            j_lo, j_hi = field_increment(num_levels + impulse)
            move = level * num_impulses + impulse
            move_lo[move] = k_lo + j_lo
            move_hi[move] = k_hi + j_hi

    root_lo, root_hi = field_increment(context.state_level[initial_state])
    states = np.array([initial_state], dtype=np.int64)
    class_lo = np.array([root_lo], dtype=np.int64)
    class_hi = np.array([root_hi], dtype=np.int64)
    mass = np.array([1.0], dtype=float)
    stored_lo: List[np.ndarray] = []
    stored_hi: List[np.ndarray] = []
    stored_mass: List[np.ndarray] = []

    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0
    depth = 0
    pmf_count = len(pmf)
    head_count = len(heads)
    maxpois_count = 0 if maxpois is None else len(maxpois)
    kernel = kernels_mod.active_kernels(context.kernels)
    guard = get_guard()
    obs = get_collector()
    frontier_series = obs.series("until.frontier") if obs.enabled else None
    mass_series = obs.series("until.truncation-mass") if obs.enabled else None
    stored_bytes = 0
    while states.size:
        if guard.enabled:
            # Frontier columns plus the psi column buffers accumulated
            # so far — the sweep's live working set at this depth.
            frontier_bytes = (
                states.nbytes + class_lo.nbytes + class_hi.nbytes + mass.nbytes
            )
            guard.checkpoint(
                "until.columnar", mem_bytes=frontier_bytes + stored_bytes
            )
        if frontier_series is not None:
            frontier_series.append(float(depth), float(states.size))
        max_depth = depth
        generated += int(states.size)
        poisson_here = float(pmf[depth]) if depth < pmf_count else 0.0
        storing = psi_mask[states]
        if storing.any():
            stored_lo.append(class_lo[storing])
            stored_hi.append(class_hi[storing])
            stored_mass.append(mass[storing] * poisson_here)
            stored += int(storing.sum())
            if guard.enabled:
                stored_bytes += (
                    stored_lo[-1].nbytes
                    + stored_hi[-1].nbytes
                    + stored_mass[-1].nbytes
                )
        if depth_limit is not None and depth >= depth_limit:
            break
        next_depth = depth + 1
        degrees = indptr[states + 1] - indptr[states]
        total = int(degrees.sum())
        if total == 0:
            break
        if guard.enabled:
            # The expansion materializes ~7 length-``total`` int64/float
            # columns (parent, offsets, edges, moves, states, mass, and
            # the two class words) before the merge shrinks them.
            guard.checkpoint(
                "until.columnar.expand", mem_bytes=stored_bytes + total * 8 * 7
            )
        if kernel is not None:
            # Compiled path: one fused expansion + stable-sort +
            # grouping pass (see repro.kernels).  The group reduction
            # stays on np.add.reduceat over the kernel-sorted masses so
            # the summation order is the NumPy path's by construction.
            merged_states, merged_lo, merged_hi, sorted_mass, group_starts = (
                kernel.expand_merge(
                    states,
                    class_lo,
                    class_hi,
                    mass,
                    indptr,
                    succ_targets,
                    succ_probs,
                    succ_moves,
                    move_lo,
                    move_hi,
                    total,
                )
            )
            merged_mass = np.add.reduceat(sorted_mass, group_starts)
        else:
            parent = np.repeat(np.arange(states.size), degrees)
            offsets = np.arange(total) - np.repeat(
                np.cumsum(degrees) - degrees, degrees
            )
            edges = np.repeat(indptr[states], degrees) + offsets
            moves = succ_moves[edges]
            child_states = succ_targets[edges]
            child_mass = mass[parent] * succ_probs[edges]
            child_lo = class_lo[parent] + move_lo[moves]
            child_hi = class_hi[parent] + move_hi[moves]
            # Merge equal (state, class) pairs: one lexsort groups them,
            # reduceat sums their masses.
            order = np.lexsort((child_states, child_lo, child_hi))
            sorted_states = child_states[order]
            sorted_lo = child_lo[order]
            sorted_hi = child_hi[order]
            boundaries = np.empty(total, dtype=bool)
            boundaries[0] = True
            np.not_equal(sorted_hi[1:], sorted_hi[:-1], out=boundaries[1:])
            boundaries[1:] |= sorted_lo[1:] != sorted_lo[:-1]
            boundaries[1:] |= sorted_states[1:] != sorted_states[:-1]
            group_starts = np.flatnonzero(boundaries)
            merged_mass = np.add.reduceat(child_mass[order], group_starts)
            merged_states = sorted_states[group_starts]
            merged_lo = sorted_lo[group_starts]
            merged_hi = sorted_hi[group_starts]
        # Truncation test on the merged classes (same conventions as the
        # legacy runner: pmf scores 0.0 past the table, maxpois clamps
        # to its final suffix-maximum entry).
        tail = 1.0 - float(heads[next_depth]) if next_depth < head_count else 1.0
        if maxpois is None:
            ceiling = float(pmf[next_depth]) if next_depth < pmf_count else 0.0
        else:
            ceiling = float(maxpois[min(next_depth, maxpois_count - 1)])
        keep = merged_mass * ceiling >= w
        if not keep.all():
            error_bound += float(merged_mass[~keep].sum()) * tail
            merged_states = merged_states[keep]
            merged_lo = merged_lo[keep]
            merged_hi = merged_hi[keep]
            merged_mass = merged_mass[keep]
        if mass_series is not None:
            mass_series.append(float(next_depth), float(error_bound))
        states = merged_states
        class_lo = merged_lo
        class_hi = merged_hi
        mass = merged_mass
        depth = next_depth

    if not stored_lo:
        return empty_k, empty_j, no_mass, error_bound, generated, stored, max_depth
    all_lo = np.concatenate(stored_lo)
    all_hi = np.concatenate(stored_hi)
    all_mass = np.concatenate(stored_mass)
    if kernel is not None:
        class_lo, class_hi, sorted_mass, group_starts = kernel.group_pairs(
            all_lo, all_hi, all_mass
        )
        masses = np.add.reduceat(sorted_mass, group_starts)
    else:
        order = np.lexsort((all_lo, all_hi))
        sorted_lo = all_lo[order]
        sorted_hi = all_hi[order]
        boundaries = np.empty(all_lo.size, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_hi[1:], sorted_hi[:-1], out=boundaries[1:])
        boundaries[1:] |= sorted_lo[1:] != sorted_lo[:-1]
        group_starts = np.flatnonzero(boundaries)
        masses = np.add.reduceat(all_mass[order], group_starts)
        class_lo = sorted_lo[group_starts]
        class_hi = sorted_hi[group_starts]
    # Unpack the merged class words back into count matrices.
    field_mask = np.int64((1 << bits) - 1)
    k_rows = np.empty((class_lo.size, num_levels), dtype=np.int64)
    j_rows = np.empty((class_lo.size, num_impulses), dtype=np.int64)
    for field in range(num_levels + num_impulses):
        word, slot = divmod(field, fields_per_word)
        source = class_lo if word == 0 else class_hi
        column = (source >> np.int64(slot * bits)) & field_mask
        if field < num_levels:
            k_rows[:, field] = column
        else:
            j_rows[:, field - num_levels] = column
    return k_rows, j_rows, masses, error_bound, generated, stored, max_depth


def _sweep_interned(
    initial_state: int, context: PathEngineContext
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, int, int, int]:
    """Columnar sweep over :class:`ClassTable`-interned dense class ids.

    The fallback for models whose count vectors exceed two packed words
    (see :func:`_class_packing`): same frontier/merge/truncation as
    :func:`_sweep_packed`, but class identity is a dense interned id and
    child derivation goes through :meth:`ClassTable.children` (one array
    gather per already-seen ``(class, move)`` pair).
    """
    table = context.class_table
    pmf = context.pmf
    heads = context.heads
    maxpois = context.maxpois
    w = context.w
    depth_limit = context.depth_limit
    psi_mask = context.psi_mask
    indptr = context.succ_indptr
    succ_targets = context.succ_targets
    succ_probs = context.succ_probs
    succ_moves = context.succ_moves
    num_states = np.int64(indptr.shape[0] - 1)

    empty_k, empty_j = _no_classes(context)
    no_mass = np.empty(0, dtype=float)
    error_bound = 0.0
    generated = 0
    stored = 0
    max_depth = 0

    if initial_state in context.dead:
        return empty_k, empty_j, no_mass, 0.0, 0, 0, 0
    root_score = float(pmf[0]) if maxpois is None else float(maxpois[0])
    if root_score < w:
        return empty_k, empty_j, no_mass, 1.0, 0, 0, 0

    states = np.array([initial_state], dtype=np.int64)
    class_ids = np.array(
        [table.root(context.state_level[initial_state])], dtype=np.int64
    )
    mass = np.array([1.0], dtype=float)
    stored_ids: List[np.ndarray] = []
    stored_mass: List[np.ndarray] = []
    depth = 0
    pmf_count = len(pmf)
    head_count = len(heads)
    maxpois_count = 0 if maxpois is None else len(maxpois)
    guard = get_guard()
    obs = get_collector()
    frontier_series = obs.series("until.frontier") if obs.enabled else None
    mass_series = obs.series("until.truncation-mass") if obs.enabled else None
    stored_bytes = 0
    while states.size:
        if guard.enabled:
            frontier_bytes = states.nbytes + class_ids.nbytes + mass.nbytes
            guard.checkpoint(
                "until.columnar", mem_bytes=frontier_bytes + stored_bytes
            )
        if frontier_series is not None:
            frontier_series.append(float(depth), float(states.size))
        max_depth = depth
        generated += int(states.size)
        poisson_here = float(pmf[depth]) if depth < pmf_count else 0.0
        storing = psi_mask[states]
        if storing.any():
            stored_ids.append(class_ids[storing])
            stored_mass.append(mass[storing] * poisson_here)
            stored += int(storing.sum())
            if guard.enabled:
                stored_bytes += stored_ids[-1].nbytes + stored_mass[-1].nbytes
        if depth_limit is not None and depth >= depth_limit:
            break
        next_depth = depth + 1
        degrees = indptr[states + 1] - indptr[states]
        total = int(degrees.sum())
        if total == 0:
            break
        if guard.enabled:
            guard.checkpoint(
                "until.columnar.expand", mem_bytes=stored_bytes + total * 8 * 6
            )
        parent = np.repeat(np.arange(states.size), degrees)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(degrees) - degrees, degrees
        )
        edges = np.repeat(indptr[states], degrees) + offsets
        child_states = succ_targets[edges]
        child_mass = mass[parent] * succ_probs[edges]
        child_ids = table.children(class_ids[parent], succ_moves[edges])
        # Merge equal (state, class) pairs: one stable sort on the fused
        # key groups them, reduceat sums their masses.
        fused = child_ids * num_states + child_states
        order = np.argsort(fused, kind="stable")
        sorted_key = fused[order]
        boundaries = np.empty(total, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundaries[1:])
        group_starts = np.flatnonzero(boundaries)
        merged_mass = np.add.reduceat(child_mass[order], group_starts)
        leaders = order[group_starts]
        merged_states = child_states[leaders]
        merged_ids = child_ids[leaders]
        tail = 1.0 - float(heads[next_depth]) if next_depth < head_count else 1.0
        if maxpois is None:
            ceiling = float(pmf[next_depth]) if next_depth < pmf_count else 0.0
        else:
            ceiling = float(maxpois[min(next_depth, maxpois_count - 1)])
        keep = merged_mass * ceiling >= w
        if not keep.all():
            error_bound += float(merged_mass[~keep].sum()) * tail
            merged_states = merged_states[keep]
            merged_ids = merged_ids[keep]
            merged_mass = merged_mass[keep]
        if mass_series is not None:
            mass_series.append(float(next_depth), float(error_bound))
        states = merged_states
        class_ids = merged_ids
        mass = merged_mass
        depth = next_depth

    if not stored_ids:
        return empty_k, empty_j, no_mass, error_bound, generated, stored, max_depth
    all_ids = np.concatenate(stored_ids)
    all_mass = np.concatenate(stored_mass)
    order = np.argsort(all_ids, kind="stable")
    sorted_ids = all_ids[order]
    boundaries = np.empty(all_ids.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundaries[1:])
    group_starts = np.flatnonzero(boundaries)
    masses = np.add.reduceat(all_mass[order], group_starts)
    unique_ids = sorted_ids[group_starts]
    return (
        table.k_rows(unique_ids),
        table.j_rows(unique_ids),
        masses,
        error_bound,
        generated,
        stored,
        max_depth,
    )


def _combine_with_omega(
    aggregated: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float],
    reward_levels: List[float],
    impulse_levels: List[float],
    time_bound: float,
    reward_bound: float,
    calculators: Optional[Dict[float, OmegaCalculator]] = None,
) -> Tuple[float, int, int]:
    """Combine class probabilities with ``Pr{Y(t) <= r | n, k, j}``.

    Per eqs. (4.9)/(4.10): with the distinct state rewards
    ``r_1 > ... > r_{K+1}``, group coefficients ``c_l = r_l - r_{K+1}``
    and impulse contribution ``imp = sum_l i_l j_l``, the conditional
    probability is ``Omega(r/t - r_{K+1} - imp/t, k)``.  One
    :class:`OmegaCalculator` is shared per distinct threshold so the memo
    tables are reused across classes; when a ``calculators`` mapping is
    passed in (the batched path), they are additionally reused across
    initial states, and the returned evaluation count covers only the
    nodes newly evaluated by this call.
    """
    if calculators is None:
        calculators = {}
    evaluations_before = sum(c.evaluations for c in calculators.values())
    if not aggregated:
        return 0.0, 0, 0
    smallest = reward_levels[-1]
    coefficients = [level - smallest for level in reward_levels]
    probability = 0.0
    for (k, j), mass in aggregated.items():
        impulse_total = sum(
            level * count for level, count in zip(impulse_levels, j)
        )
        threshold = reward_bound / time_bound - smallest - impulse_total / time_bound
        if threshold < 0.0:
            continue  # reward bound already violated by impulses alone
        calculator = calculators.get(threshold)
        if calculator is None:
            calculator = OmegaCalculator(coefficients, threshold)
            calculators[threshold] = calculator
        probability += mass * calculator.value(k)
    omega_evals = (
        sum(c.evaluations for c in calculators.values()) - evaluations_before
    )
    return probability, len(aggregated), omega_evals


def _combine_with_omega_matrix(
    k_rows: np.ndarray,
    j_rows: np.ndarray,
    masses: np.ndarray,
    reward_levels: List[float],
    impulse_levels: List[float],
    time_bound: float,
    reward_bound: float,
    calculators: Dict[float, OmegaCalculator],
    kernels: str = "numpy",
) -> Tuple[float, int, int]:
    """Vectorized Omega combination over columnar class matrices.

    The columnar counterpart of :func:`_combine_with_omega`: the
    per-class thresholds are one vector expression over the count
    matrices, and each group of classes sharing a threshold is evaluated
    through :meth:`~repro.numerics.orderstat.OmegaCalculator.value_many`
    — a single shared memo traversal — and folded into the probability
    with one dot product.
    """
    evaluations_before = sum(c.evaluations for c in calculators.values())
    classes = int(masses.size)
    if classes == 0:
        return 0.0, 0, 0
    smallest = reward_levels[-1]
    coefficients = [level - smallest for level in reward_levels]
    impulse_totals = j_rows @ np.asarray(impulse_levels, dtype=float)
    thresholds = (
        reward_bound / time_bound - smallest - impulse_totals / time_bound
    )
    probability = 0.0
    order = np.argsort(thresholds, kind="stable")
    sorted_thresholds = thresholds[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_thresholds[1:] != sorted_thresholds[:-1]]
    )
    ends = np.r_[starts[1:], np.int64(order.size)]
    for start, end in zip(starts.tolist(), ends.tolist()):
        threshold = float(sorted_thresholds[start])
        if threshold < 0.0:
            continue  # reward bound already violated by impulses alone
        rows = order[start:end]
        calculator = calculators.get(threshold)
        if calculator is None:
            calculator = OmegaCalculator(coefficients, threshold)
            calculators[threshold] = calculator
        values = calculator.value_many(k_rows[rows], backend=kernels)
        probability += float(masses[rows] @ values)
    omega_evals = (
        sum(c.evaluations for c in calculators.values()) - evaluations_before
    )
    return probability, classes, omega_evals
