"""The steady-state operator ``S_{op p}(Phi)`` (Section 4.2, Alg. 4.3).

For every state ``s`` the long-run probability of residing in
``Phi``-states is

    sum_B P(s, eventually B) * sum_{s' in B and Sat(Phi)} pi^B(s')

over the bottom strongly connected components ``B`` (eq. 3.2), which
collapses to a single standard steady-state analysis when the chain is
strongly connected (eq. 3.1).

The BSCC decomposition, the per-BSCC stationary distributions and the
reachability probabilities depend only on the model — not on ``Phi`` —
so they are computed once per model and shared through the
:class:`~repro.check.engine_cache.EngineCache` (keyed by
:meth:`repro.mrm.MRM.fingerprint`).  Each ``S`` formula then costs one
``O(n * #BSCC)`` accumulation instead of a dense ``n x n`` solve; no
dense steady-state matrix is ever materialized.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.check.engine_cache import EngineCache
from repro.check.results import SteadyResult
from repro.ctmc.steady import bscc_steady_structure
from repro.guard import get_guard
from repro.logic.ast import Comparison
from repro.mrm.model import MRM
from repro.obs import get_collector

__all__ = ["steady_state_values", "satisfy_steady"]

_Structure = List[Tuple[np.ndarray, np.ndarray, np.ndarray]]


def _steady_structure(model: MRM, cache: Optional[EngineCache]) -> _Structure:
    """The per-BSCC ``(members, reach, stationary)`` factors, cached.

    The structure is immutable after construction, so one
    :class:`EngineCache` entry per model fingerprint serves every ``S``
    formula, repeated checkers, and CLI runs over equal models.
    """
    if cache is None:
        return bscc_steady_structure(model.ctmc)
    key = ("steady-structure", model.fingerprint())
    return cache.get_or_build(key, lambda: bscc_steady_structure(model.ctmc))


def steady_state_values(
    model: MRM,
    phi_states: AbstractSet[int],
    cache: Optional[EngineCache] = None,
) -> np.ndarray:
    """``pi(s, Sat(Phi))`` for every starting state ``s``.

    Parameters
    ----------
    model:
        The MRM (rewards are irrelevant to the steady-state operator; the
        underlying CTMC is analyzed).
    phi_states:
        The satisfying set of the operand formula.
    cache:
        Optional :class:`~repro.check.engine_cache.EngineCache`; when
        given, the BSCC steady-state structure is computed once per model
        fingerprint and shared across formulas and checker instances.
    """
    n = model.num_states
    values = np.zeros(n, dtype=float)
    if not phi_states:
        return values
    phi_mask = np.zeros(n, dtype=bool)
    phi_mask[[int(s) for s in phi_states]] = True
    structure = _steady_structure(model, cache)
    obs = get_collector()
    if obs.enabled:
        obs.counter_add("steady.evaluations")
        obs.event("steady", bsccs=len(structure), phi_states=int(phi_mask.sum()))
    guard = get_guard()
    for members, reach, stationary in structure:
        if guard.enabled:
            guard.checkpoint("steady.accumulate", mem_bytes=int(3 * values.nbytes))
        weight = float(stationary[phi_mask[members]].sum())
        if weight > 0.0:
            values += weight * reach
    return values


def satisfy_steady(
    model: MRM,
    comparison: Comparison,
    bound: float,
    phi_states: AbstractSet[int],
    cache: Optional[EngineCache] = None,
) -> SteadyResult:
    """Algorithm 4.3: the states satisfying ``S_{op p}(Phi)``."""
    values = steady_state_values(model, phi_states, cache=cache)
    satisfying: FrozenSet[int] = frozenset(
        state for state in range(model.num_states) if comparison.holds(values[state], bound)
    )
    return SteadyResult(values=values, satisfying=satisfying)
