"""The steady-state operator ``S_{op p}(Phi)`` (Section 4.2, Alg. 4.3).

For every state ``s`` the long-run probability of residing in
``Phi``-states is

    sum_B P(s, eventually B) * sum_{s' in B and Sat(Phi)} pi^B(s')

over the bottom strongly connected components ``B`` (eq. 3.2), which
collapses to a single standard steady-state analysis when the chain is
strongly connected (eq. 3.1).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet

import numpy as np

from repro.check.results import SteadyResult
from repro.ctmc.steady import steady_state_matrix
from repro.logic.ast import Comparison
from repro.mrm.model import MRM

__all__ = ["steady_state_values", "satisfy_steady"]


def steady_state_values(model: MRM, phi_states: AbstractSet[int]) -> np.ndarray:
    """``pi(s, Sat(Phi))`` for every starting state ``s``.

    Parameters
    ----------
    model:
        The MRM (rewards are irrelevant to the steady-state operator; the
        underlying CTMC is analyzed).
    phi_states:
        The satisfying set of the operand formula.
    """
    matrix = steady_state_matrix(model.ctmc)
    if not phi_states:
        return np.zeros(model.num_states, dtype=float)
    columns = sorted(int(s) for s in phi_states)
    return matrix[:, columns].sum(axis=1)


def satisfy_steady(
    model: MRM,
    comparison: Comparison,
    bound: float,
    phi_states: AbstractSet[int],
) -> SteadyResult:
    """Algorithm 4.3: the states satisfying ``S_{op p}(Phi)``."""
    values = steady_state_values(model, phi_states)
    satisfying: FrozenSet[int] = frozenset(
        state for state in range(model.num_states) if comparison.holds(values[state], bound)
    )
    return SteadyResult(values=values, satisfying=satisfying)
