"""The discretization engine (Section 4.4.1, Algorithm 4.6).

Tijms–Veldman style discretization of the joint distribution
``Pr{Y(t) <= r, X(t) |= Psi}``, extended with impulse rewards: both time
and accumulated reward are discretized as multiples of the same step
``d``.  One step in state ``s`` advances the reward by ``rho(s)`` cells
(each cell is ``d`` reward units, and a residence of ``d`` time units
earns ``rho(s) * d``); taking the transition ``s' -> s`` additionally
advances it by ``iota(s', s) / d`` cells.

Preconditions (Section 4.4.1):

* state reward rates must be integers (rescale the model and the reward
  bound with :meth:`repro.mrm.MRM.scale_rewards` when they are rational);
* every impulse reward must be an integer multiple of ``d``;
* ``d`` must satisfy ``E(s) * d <= 1`` for all states (the probability of
  more than one transition in a ``d``-slice must be negligible for the
  scheme to be first-order accurate).

We store probability *mass* per cell rather than the paper's density
``F`` (they differ by the constant factor ``d``, which cancels between
the initialization ``1/d`` and the final summation ``* d``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Optional, Tuple

import numpy as np

from repro.exceptions import CheckError, NumericalError
from repro.mrm.model import MRM

__all__ = ["DiscretizationResult", "discretized_joint_distribution"]

_INTEGRALITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class DiscretizationResult:
    """Outcome of one discretization run.

    Attributes
    ----------
    probability:
        The estimate of ``Pr{Y(t) <= r, X(t) |= Psi}``.
    time_steps:
        Number of time slices ``T = t / d``.
    reward_cells:
        Number of reward cells ``R = r / d`` (plus the zero cell).
    step:
        The discretization factor ``d``.
    """

    probability: float
    time_steps: int
    reward_cells: int
    step: float


def _as_integer(value: float, what: str) -> int:
    rounded = round(value)
    if abs(value - rounded) > _INTEGRALITY_TOLERANCE * max(1.0, abs(value)):
        raise NumericalError(
            f"{what} must be integral for discretization, got {value!r}"
        )
    return int(rounded)


def discretized_joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    step: float,
) -> DiscretizationResult:
    """Algorithm 4.6: ``Pr{Y(t) <= r, X(t) in psi_states}``.

    The model is used as given — callers evaluating an until formula
    must apply the make-absorbing transformation first (Theorems 4.1/4.3).

    Parameters
    ----------
    model:
        The (already transformed) MRM with integer state rewards and
        ``d``-integral impulse rewards.
    initial_state:
        Starting state (point-mass initial distribution).
    psi_states:
        Target set over which the final mass is summed.
    time_bound, reward_bound:
        ``t > 0`` and ``r >= 0``.
    step:
        The discretization factor ``d``; both ``t / d`` and ``r / d``
        must be integral.
    """
    if step <= 0:
        raise CheckError("discretization factor must be positive")
    if time_bound <= 0:
        raise CheckError("time bound must be positive")
    if reward_bound < 0:
        raise CheckError("reward bound must be non-negative")
    n = model.num_states
    initial_state = int(initial_state)
    if not 0 <= initial_state < n:
        raise CheckError(f"initial state {initial_state} out of range")
    psi = {int(s) for s in psi_states}

    time_steps = _as_integer(time_bound / step, "t / d")
    reward_cells = _as_integer(reward_bound / step, "r / d")
    if time_steps < 1:
        raise CheckError("time bound must span at least one step")

    rho_cells = [
        _as_integer(model.state_reward(s), f"state reward of state {s}") for s in range(n)
    ]
    exit_rates = [model.exit_rate(s) for s in range(n)]
    worst = max(exit_rates) if n else 0.0
    if worst * step > 1.0 + _INTEGRALITY_TOLERANCE:
        raise NumericalError(
            f"discretization factor {step:g} is too coarse: E(s) * d = "
            f"{worst * step:g} > 1 makes self-residence probabilities negative"
        )

    # Transitions as (source, target, rate * d, reward-cell offset).
    rates = model.rates
    transitions: List[Tuple[int, int, float, int]] = []
    for source in range(n):
        for pos in range(rates.indptr[source], rates.indptr[source + 1]):
            target = int(rates.indices[pos])
            rate = float(rates.data[pos])
            if rate <= 0.0:
                continue
            impulse_cells = _as_integer(
                model.impulse_reward(source, target) / step,
                f"iota({source}, {target}) / d",
            )
            offset = rho_cells[source] + impulse_cells
            transitions.append((source, target, rate * step, offset))

    width = reward_cells + 1  # cells 0..R
    mass = np.zeros((n, width), dtype=float)
    start_cell = rho_cells[initial_state]
    if start_cell < width:
        mass[initial_state, start_cell] = 1.0
    # else: the very first slice already exceeds the reward bound.

    stay = np.array([1.0 - rate * step for rate in exit_rates], dtype=float)

    for _ in range(time_steps - 1):
        updated = np.zeros_like(mass)
        for state in range(n):
            shift = rho_cells[state]
            if shift < width:
                if shift == 0:
                    updated[state, :] += mass[state, :] * stay[state]
                else:
                    updated[state, shift:] += mass[state, :-shift] * stay[state]
        for source, target, weight, offset in transitions:
            if offset >= width:
                continue
            if offset == 0:
                updated[target, :] += mass[source, :] * weight
            else:
                updated[target, offset:] += mass[source, :-offset] * weight
        mass = updated

    members = sorted(s for s in psi if 0 <= s < n)
    probability = float(mass[members, :].sum()) if members else 0.0
    return DiscretizationResult(
        probability=probability,
        time_steps=time_steps,
        reward_cells=reward_cells,
        step=step,
    )
