"""The discretization engine (Section 4.4.1, Algorithm 4.6).

Tijms–Veldman style discretization of the joint distribution
``Pr{Y(t) <= r, X(t) |= Psi}``, extended with impulse rewards: both time
and accumulated reward are discretized as multiples of the same step
``d``.  One step in state ``s`` advances the reward by ``rho(s)`` cells
(each cell is ``d`` reward units, and a residence of ``d`` time units
earns ``rho(s) * d``); taking the transition ``s' -> s`` additionally
advances it by ``iota(s', s) / d`` cells.

Preconditions (Section 4.4.1):

* state reward rates must be integers (rescale the model and the reward
  bound with :meth:`repro.mrm.MRM.scale_rewards` when they are rational);
* every impulse reward must be an integer multiple of ``d``;
* ``d`` must satisfy ``E(s) * d <= 1`` for all states (the probability of
  more than one transition in a ``d``-slice must be negligible for the
  scheme to be first-order accurate).

We store probability *mass* per cell rather than the paper's density
``F`` (they differ by the constant factor ``d``, which cancels between
the initialization ``1/d`` and the final summation ``* d``).

Two evaluation directions are provided over one shared grid
(:class:`_DiscretizationGrid`, which groups transitions by their
reward-cell offset so each step is a handful of vectorized column
shifts and sparse matrix products instead of a per-transition Python
loop):

* :func:`discretized_joint_distribution` — the forward recursion of
  Algorithm 4.6 from one initial state;
* :func:`discretized_joint_distributions` — the *adjoint* (backward)
  recursion.  The forward update is linear in the mass array, so
  running its transpose once from the target functional (indicator of
  the ``Psi``-states over all reward cells) yields
  ``Pr{Y(t) <= r, X(t) |= Psi}`` for **every** initial state in a
  single sweep — the all-states cost equals the one-state cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.check.engine_cache import EngineCache
from repro.exceptions import CheckError, NumericalError
from repro.guard import get_guard
from repro.mrm.model import MRM
from repro.obs import get_collector
from repro.obs.report import DEFECT_COUNTER

__all__ = [
    "DiscretizationResult",
    "BatchedDiscretizationResult",
    "discretized_joint_distribution",
    "discretized_joint_distributions",
]

_INTEGRALITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class DiscretizationResult:
    """Outcome of one discretization run.

    Attributes
    ----------
    probability:
        The estimate of ``Pr{Y(t) <= r, X(t) |= Psi}``.
    time_steps:
        Number of time slices ``T = t / d``.
    reward_cells:
        Number of reward cells ``R = r / d`` (plus the zero cell).
    step:
        The discretization factor ``d``.
    defect_per_step:
        Upper bound on the probability mass the first-order scheme
        mishandles in one ``d``-slice: the worst-state probability of
        two or more transitions within the slice,
        ``max_s (1 - e^{-E(s) d} (1 + E(s) d))``.
    defect_bound:
        ``time_steps * defect_per_step`` (capped at 1) — the total
        mass-defect bound entering the run's error budget.
    """

    probability: float
    time_steps: int
    reward_cells: int
    step: float
    defect_per_step: float = 0.0
    defect_bound: float = 0.0


@dataclass(frozen=True)
class BatchedDiscretizationResult:
    """Outcome of one backward (all-states) discretization sweep.

    Attributes
    ----------
    probabilities:
        ``Pr{Y(t) <= r, X(t) |= Psi}`` per initial state (length
        ``num_states``).
    time_steps, reward_cells, step:
        Grid parameters, as in :class:`DiscretizationResult`.
    defect_per_step, defect_bound:
        Mass-defect bounds, as in :class:`DiscretizationResult`.
    """

    probabilities: np.ndarray
    time_steps: int
    reward_cells: int
    step: float
    defect_per_step: float = 0.0
    defect_bound: float = 0.0

    def result_for(self, state: int) -> DiscretizationResult:
        """Per-state diagnostics view, shaped like a single-state run."""
        return DiscretizationResult(
            probability=float(self.probabilities[int(state)]),
            time_steps=self.time_steps,
            reward_cells=self.reward_cells,
            step=self.step,
            defect_per_step=self.defect_per_step,
            defect_bound=self.defect_bound,
        )


def _as_integer(value: float, what: str) -> int:
    rounded = round(value)
    if abs(value - rounded) > _INTEGRALITY_TOLERANCE * max(1.0, abs(value)):
        raise NumericalError(
            f"{what} must be integral for discretization, got {value!r}"
        )
    return int(rounded)


class _DiscretizationGrid:
    """Validated grid data plus the vectorized one-step operators.

    The step operator of Algorithm 4.6 decomposes into (a) per-state
    self-residence, shifting mass up by ``rho(s)`` cells with weight
    ``1 - E(s) d``, and (b) per-transition moves, shifting by
    ``rho(source) + iota/d`` cells with weight ``rate * d``.  Both are
    grouped by their cell offset: residence as state groups of equal
    ``rho``, transitions as one sparse ``n x n`` weight matrix per
    distinct offset.  A forward or backward step is then one shifted
    (sparse matrix) x (dense block) product per group — no Python loop
    over transitions.
    """

    def __init__(
        self,
        model: MRM,
        time_bound: float,
        reward_bound: float,
        step: float,
    ) -> None:
        if step <= 0:
            raise CheckError("discretization factor must be positive")
        if time_bound <= 0:
            raise CheckError("time bound must be positive")
        if reward_bound < 0:
            raise CheckError("reward bound must be non-negative")
        n = model.num_states
        self.num_states = n
        self.step = float(step)
        self.time_steps = _as_integer(time_bound / step, "t / d")
        self.reward_cells = _as_integer(reward_bound / step, "r / d")
        if self.time_steps < 1:
            raise CheckError("time bound must span at least one step")
        self.width = self.reward_cells + 1  # cells 0..R

        self.rho_cells = np.array(
            [
                _as_integer(model.state_reward(s), f"state reward of state {s}")
                for s in range(n)
            ],
            dtype=np.int64,
        )
        exit_rates = np.array([model.exit_rate(s) for s in range(n)], dtype=float)
        worst = float(exit_rates.max()) if n else 0.0
        if worst * step > 1.0 + _INTEGRALITY_TOLERANCE:
            raise NumericalError(
                f"discretization factor d = {step:g} is too coarse: the "
                f"fastest state has E(s) * d = {worst * step:g} > 1, which "
                "would make its self-residence probability negative; choose "
                f"d <= {1.0 / worst:g} (or lump/rescale the model first)"
            )
        # Within the 1e-9 acceptance tolerance E(s) * d may still exceed 1
        # by a hair; clamp so no negative probability mass is ever injected.
        self.stay = np.clip(1.0 - exit_rates * step, 0.0, None)

        # Per-step mass defect of the first-order scheme: the probability
        # of >= 2 transitions inside one slice, which Algorithm 4.6
        # cannot represent.  Tijms & Veldman track exactly this quantity
        # alongside the result; it feeds the run's error budget.
        slice_load = exit_rates * step
        self.defect_per_step = (
            float(np.max(1.0 - np.exp(-slice_load) * (1.0 + slice_load)))
            if n
            else 0.0
        )
        self.defect_bound = min(1.0, self.time_steps * self.defect_per_step)

        # Residence groups: distinct rho value -> states carrying it.
        self.shift_groups: List[Tuple[int, np.ndarray]] = [
            (int(shift), np.flatnonzero(self.rho_cells == shift))
            for shift in np.unique(self.rho_cells)
        ]

        # Transition groups: offset -> sparse weight matrix W with
        # W[source, target] = rate * d.
        rates = model.rates
        by_offset: Dict[int, Tuple[List[int], List[int], List[float]]] = {}
        for source in range(n):
            source_shift = int(self.rho_cells[source])
            for pos in range(rates.indptr[source], rates.indptr[source + 1]):
                target = int(rates.indices[pos])
                rate = float(rates.data[pos])
                if rate <= 0.0:
                    continue
                impulse_cells = _as_integer(
                    model.impulse_reward(source, target) / step,
                    f"iota({source}, {target}) / d",
                )
                offset = source_shift + impulse_cells
                rows, cols, vals = by_offset.setdefault(offset, ([], [], []))
                rows.append(source)
                cols.append(target)
                vals.append(rate * step)
        # Per offset: (forward operator W^T for target-accumulation,
        # backward operator W for source-accumulation).
        self.offset_ops: List[Tuple[int, sp.csr_matrix, sp.csr_matrix]] = []
        for offset in sorted(by_offset):
            rows, cols, vals = by_offset[offset]
            backward = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
            forward = backward.T.tocsr()
            self.offset_ops.append((offset, forward, backward))

    # ------------------------------------------------------------------
    def forward_step(self, mass: np.ndarray) -> np.ndarray:
        """One slice of Algorithm 4.6: advance mass by ``d`` time units."""
        width = self.width
        updated = np.zeros_like(mass)
        for shift, states in self.shift_groups:
            if shift >= width or states.size == 0:
                continue
            block = mass[states] * self.stay[states, None]
            if shift:
                updated[states, shift:] += block[:, :-shift]
            else:
                updated[states] += block
        for offset, forward, _ in self.offset_ops:
            if offset >= width:
                continue
            if offset:
                updated[:, offset:] += forward @ mass[:, : width - offset]
            else:
                updated += forward @ mass
        return updated

    def backward_step(self, value: np.ndarray) -> np.ndarray:
        """The adjoint of :meth:`forward_step` (one backward slice)."""
        width = self.width
        previous = np.zeros_like(value)
        for shift, states in self.shift_groups:
            if shift >= width or states.size == 0:
                continue
            if shift:
                block = value[states, shift:] * self.stay[states, None]
                previous[states, : width - shift] += block
            else:
                previous[states] += value[states] * self.stay[states, None]
        for offset, _, backward in self.offset_ops:
            if offset >= width:
                continue
            if offset:
                previous[:, : width - offset] += backward @ value[:, offset:]
            else:
                previous += backward @ value
        return previous


def _grid_for(
    model: MRM,
    time_bound: float,
    reward_bound: float,
    step: float,
    cache: Optional[EngineCache],
) -> "_DiscretizationGrid":
    """The step operators for one formula, shared through ``cache``.

    The grid is a pure function of the model content and the three
    numeric parameters, and it is never mutated after construction, so
    an :class:`~repro.check.engine_cache.EngineCache` entry keyed by
    :meth:`~repro.mrm.MRM.fingerprint` can serve every formula with the
    same bounds — including across distinct (but content-identical)
    transformed model objects.
    """
    if cache is None:
        return _DiscretizationGrid(model, time_bound, reward_bound, step)
    key = (
        "disc-grid",
        model.fingerprint(),
        float(time_bound),
        float(reward_bound),
        float(step),
    )
    return cache.get_or_build(
        key, lambda: _DiscretizationGrid(model, time_bound, reward_bound, step)
    )


def discretized_joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    step: float,
    cache: Optional[EngineCache] = None,
) -> DiscretizationResult:
    """Algorithm 4.6: ``Pr{Y(t) <= r, X(t) in psi_states}``.

    The model is used as given — callers evaluating an until formula
    must apply the make-absorbing transformation first (Theorems 4.1/4.3).
    For all initial states at once, use
    :func:`discretized_joint_distributions` (one backward sweep instead
    of one forward sweep per state).

    Parameters
    ----------
    model:
        The (already transformed) MRM with integer state rewards and
        ``d``-integral impulse rewards.
    initial_state:
        Starting state (point-mass initial distribution).
    psi_states:
        Target set over which the final mass is summed.
    time_bound, reward_bound:
        ``t > 0`` and ``r >= 0``.
    step:
        The discretization factor ``d``; both ``t / d`` and ``r / d``
        must be integral.
    cache:
        Optional :class:`~repro.check.engine_cache.EngineCache`; when
        given, the grid operators are reused across calls and formulas
        with the same model fingerprint and bounds.
    """
    n = model.num_states
    initial_state = int(initial_state)
    if not 0 <= initial_state < n:
        raise CheckError(f"initial state {initial_state} out of range")
    grid = _grid_for(model, time_bound, reward_bound, step, cache)
    psi = {int(s) for s in psi_states}

    guard = get_guard()
    # Two live (n x width) float64 panels: the mass array plus the one
    # forward_step builds before the old panel is released.
    mem_estimate = int(2 * n * grid.width * 8) if guard.enabled else None
    if guard.enabled:
        guard.checkpoint("discretization.alloc", mem_bytes=mem_estimate)
    mass = np.zeros((n, grid.width), dtype=float)
    start_cell = int(grid.rho_cells[initial_state])
    if start_cell < grid.width:
        mass[initial_state, start_cell] = 1.0
    # else: the very first slice already exceeds the reward bound.

    for _ in range(grid.time_steps - 1):
        if guard.enabled:
            guard.checkpoint("discretization.forward", mem_bytes=mem_estimate)
        mass = grid.forward_step(mass)

    members = sorted(s for s in psi if 0 <= s < n)
    probability = float(mass[members, :].sum()) if members else 0.0
    obs = get_collector()
    if obs.enabled:
        obs.counter_add(DEFECT_COUNTER, grid.defect_bound)
        obs.event(
            "discretization",
            mode="forward",
            time_steps=grid.time_steps,
            reward_cells=grid.reward_cells,
            step=grid.step,
            defect_per_step=grid.defect_per_step,
            defect_bound=grid.defect_bound,
            retained_mass=float(mass.sum()),
        )
    return DiscretizationResult(
        probability=probability,
        time_steps=grid.time_steps,
        reward_cells=grid.reward_cells,
        step=grid.step,
        defect_per_step=grid.defect_per_step,
        defect_bound=grid.defect_bound,
    )


def discretized_joint_distributions(
    model: MRM,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    step: float,
    cache: Optional[EngineCache] = None,
) -> BatchedDiscretizationResult:
    """Batched Algorithm 4.6: the joint probability for **all** states.

    The forward recursion is linear in the mass array, so the value from
    initial state ``s`` is the inner product of the final mass with the
    target functional ``g`` (1 on ``(psi, cell)`` pairs, 0 elsewhere):
    ``v(s) = <e_{s, rho(s)}, (A^T)^{T-1} g>`` with ``A`` the one-step
    operator.  One backward sweep applying the adjoint ``A^T`` therefore
    serves every initial state at once, at the cost of a single forward
    run — this is what makes all-states P2 until checking one pass
    instead of ``n`` passes.

    Parameters are those of :func:`discretized_joint_distribution` minus
    the initial state.
    """
    n = model.num_states
    grid = _grid_for(model, time_bound, reward_bound, step, cache)
    psi = sorted({int(s) for s in psi_states if 0 <= int(s) < n})

    guard = get_guard()
    mem_estimate = int(2 * n * grid.width * 8) if guard.enabled else None
    if guard.enabled:
        guard.checkpoint("discretization.alloc", mem_bytes=mem_estimate)
    value = np.zeros((n, grid.width), dtype=float)
    if psi:
        value[psi, :] = 1.0
    for _ in range(grid.time_steps - 1):
        if guard.enabled:
            guard.checkpoint("discretization.adjoint", mem_bytes=mem_estimate)
        value = grid.backward_step(value)

    probabilities = np.zeros(n, dtype=float)
    reachable = grid.rho_cells < grid.width
    states = np.flatnonzero(reachable)
    probabilities[states] = value[states, grid.rho_cells[states]]
    # States whose first slice already exceeds the reward bound keep 0.
    obs = get_collector()
    if obs.enabled:
        obs.counter_add(DEFECT_COUNTER, grid.defect_bound)
        obs.event(
            "discretization",
            mode="adjoint",
            time_steps=grid.time_steps,
            reward_cells=grid.reward_cells,
            step=grid.step,
            defect_per_step=grid.defect_per_step,
            defect_bound=grid.defect_bound,
        )
    return BatchedDiscretizationResult(
        probabilities=probabilities,
        time_steps=grid.time_steps,
        reward_cells=grid.reward_cells,
        step=grid.step,
        defect_per_step=grid.defect_per_step,
        defect_bound=grid.defect_bound,
    )
