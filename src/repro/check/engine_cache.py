"""Cross-formula engine cache keyed by model fingerprints.

Every quantitative engine in this package starts with precomputation
that depends only on the (transformed) model and a handful of
formula-relevant parameters: the path engine builds a
:class:`~repro.check.paths_engine.PathEngineContext` (uniformized
successor structure, Poisson pmf/head/max tables, Omega memo tables),
the discretization engine builds a ``_DiscretizationGrid`` (offset-
grouped sparse step operators).  Within one formula those artifacts are
already shared across initial states; this module shares them across
*different* formulas, repeated :class:`~repro.check.ModelChecker`
instances, and CLI invocations inside one process.

The cache key always starts from :meth:`repro.mrm.MRM.fingerprint` — a
stable content hash of rates, labels and rewards — so two structurally
identical transformed models hit the same entry even when they are
distinct Python objects (e.g. the ``make_absorbing`` output rebuilt per
``check()`` call).  Values must be treated as read-only or
append-only: cached Poisson tables and discretization grids are never
mutated, and cached Omega memo tables only grow (memoization returns
identical values regardless of insertion order), so sharing them never
changes a result — only how much work is left to compute it.

Entries are evicted least-recently-used beyond ``max_entries``.  A
process-wide default instance is available via
:func:`default_engine_cache`; :class:`~repro.check.ModelChecker` and the
CLI use it unless given an explicit cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Sequence

from repro.obs import get_collector

__all__ = ["CacheStats", "EngineCache", "default_engine_cache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`EngineCache` (a snapshot, not a view)."""

    hits: int
    misses: int
    evictions: int
    entries: int


class EngineCache:
    """An LRU map from hashable keys to shared engine precomputation.

    Parameters
    ----------
    max_entries:
        Upper bound on stored entries; the least recently used entry is
        evicted beyond it.  Omega calculator registries obtained through
        :meth:`calculators_for` count like any other entry.

    Notes
    -----
    The cache is safe under concurrent lookups (a lock guards the
    table), and builds are *single-flight*: the first thread to miss a
    key builds it outside the lock while concurrent callers for the
    same key wait on a per-key latch and then reuse the stored value —
    a slow build never blocks unrelated lookups and never runs twice.
    If the owning build raises, one waiter takes over as the builder.
    """

    def __init__(self, max_entries: int = 64, worker_pool: Any = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._building: Dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._worker_pool = worker_pool

    # ------------------------------------------------------------------
    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        obs = get_collector()
        while True:
            with self._lock:
                if key in self._entries:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    obs.counter_add("engine-cache.hits")
                    return self._entries[key]
                latch = self._building.get(key)
                if latch is None:
                    self._building[key] = threading.Event()
                    self._misses += 1
                    break
            # Another thread is building this key; wait for its latch,
            # then loop: normally the entry is now cached (a hit), but
            # if the build failed or was already evicted we become the
            # builder ourselves.
            latch.wait()
        obs.counter_add("engine-cache.misses")
        try:
            value = builder()
        except BaseException:
            with self._lock:
                latch = self._building.pop(key, None)
            if latch is not None:
                latch.set()
            raise
        with self._lock:
            self._entries[key] = value
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs.counter_add("engine-cache.evictions")
            latch = self._building.pop(key, None)
        if latch is not None:
            latch.set()
        return value

    def calculators_for(self, reward_levels: Sequence[float]) -> Dict[float, Any]:
        """The shared Omega-calculator registry for one reward-level set.

        The registry maps each threshold to its
        :class:`~repro.numerics.orderstat.OmegaCalculator`; since the
        group coefficients are a function of the distinct state rewards
        alone, every formula over a model with the same reward levels
        can reuse the same memo tables — across time bounds, reward
        bounds and psi-sets.  The returned dict is shared and grows
        monotonically; do not replace entries.
        """
        key = ("omega-calculators", tuple(float(r) for r in reward_levels))
        return self.get_or_build(key, dict)

    def worker_pool(self):
        """The persistent fan-out pool everything on this cache shares.

        Returns the :class:`~repro.check.pool.PersistentWorkerPool`
        passed at construction, or the process-wide default pool
        otherwise — so CLI invocations, repeated ``ModelChecker``
        instances and a future server all reuse one set of forked
        workers instead of re-spawning a pool per call.  :meth:`clear`
        does not touch the pool; worker processes are engine capacity,
        not cached precomputation.
        """
        if self._worker_pool is not None:
            return self._worker_pool
        from repro.check.pool import default_pool

        return default_pool()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
            )

    def clear(self) -> None:
        """Drop all entries (counters are reset too)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats
        return (
            f"EngineCache(entries={stats.entries}, hits={stats.hits}, "
            f"misses={stats.misses}, evictions={stats.evictions})"
        )


_DEFAULT_CACHE = EngineCache()


def default_engine_cache() -> EngineCache:
    """The process-wide cache used by :class:`~repro.check.ModelChecker`
    and the CLI when no explicit cache is supplied."""
    return _DEFAULT_CACHE
