"""The probabilistic next operator ``P_{op p}(X^I_J Phi)`` (Section 4.3.1).

Per eq. (3.4) the probability of taking the first transition into a
``Phi``-state at a time in ``I`` while the accumulated reward (state
reward earned in the current state plus the transition's impulse reward)
lies in ``J`` is

    sum_{s' |= Phi} P(s, s') * (exp(-E(s) inf K(s,s')) - exp(-E(s) sup K(s,s')))

with ``K(s, s') = {x in I | rho(s) x + iota(s, s') in J}``.
"""

from __future__ import annotations

import math
from typing import AbstractSet, FrozenSet

import numpy as np

from repro.check.results import NextResult
from repro.logic.ast import Comparison
from repro.mrm.model import MRM
from repro.numerics.intervals import Interval

__all__ = ["next_probabilities", "satisfy_next"]


def next_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
) -> np.ndarray:
    """``P(s, X^I_J Phi)`` for every state ``s`` (eq. 3.4 / Alg. 4.4)."""
    n = model.num_states
    values = np.zeros(n, dtype=float)
    rates = model.rates
    for state in range(n):
        exit_rate = model.exit_rate(state)
        if exit_rate == 0.0:
            # Absorbing: no next transition ever happens.
            continue
        total = 0.0
        for pos in range(rates.indptr[state], rates.indptr[state + 1]):
            successor = int(rates.indices[pos])
            if successor not in phi_states:
                continue
            rate = float(rates.data[pos])
            window = Interval.k_transition(
                time_bound,
                reward_bound,
                rate=model.state_reward(state),
                impulse=model.impulse_reward(state, successor),
            )
            if window.is_empty:
                continue
            jump = rate / exit_rate
            upper = math.exp(-exit_rate * window.lower)
            lower = (
                0.0
                if math.isinf(window.upper)
                else math.exp(-exit_rate * window.upper)
            )
            total += jump * (upper - lower)
        values[state] = total
    return values


def satisfy_next(
    model: MRM,
    comparison: Comparison,
    bound: float,
    phi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
) -> NextResult:
    """Algorithm 4.4: the states satisfying ``P_{op p}(X^I_J Phi)``."""
    values = next_probabilities(model, phi_states, time_bound, reward_bound)
    satisfying: FrozenSet[int] = frozenset(
        state for state in range(model.num_states) if comparison.holds(values[state], bound)
    )
    return NextResult(values=values, satisfying=satisfying)
