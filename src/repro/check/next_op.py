"""The probabilistic next operator ``P_{op p}(X^I_J Phi)`` (Section 4.3.1).

Per eq. (3.4) the probability of taking the first transition into a
``Phi``-state at a time in ``I`` while the accumulated reward (state
reward earned in the current state plus the transition's impulse reward)
lies in ``J`` is

    sum_{s' |= Phi} P(s, s') * (exp(-E(s) inf K(s,s')) - exp(-E(s) sup K(s,s')))

with ``K(s, s') = {x in I | rho(s) x + iota(s, s') in J}``.

The evaluation is vectorized over the CSR transition arrays: the window
``K(s, s')`` depends only on the pair ``(rho(s), iota(s, s'))``, so the
transitions are grouped by their distinct reward/impulse combinations
(typically a handful per model), :meth:`Interval.k_transition` runs once
per group, and the exponential weights are computed with NumPy array
operations over ``rates.data`` instead of a per-transition Python loop.
:func:`next_probabilities_reference` keeps the literal per-transition
loop of Algorithm 4.4 as the differential-testing oracle.
"""

from __future__ import annotations

import math
from typing import AbstractSet, FrozenSet

import numpy as np

from repro.check.results import NextResult
from repro.logic.ast import Comparison
from repro.mrm.model import MRM
from repro.numerics.intervals import Interval

__all__ = ["next_probabilities", "next_probabilities_reference", "satisfy_next"]


def next_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
) -> np.ndarray:
    """``P(s, X^I_J Phi)`` for every state ``s`` (eq. 3.4 / Alg. 4.4)."""
    n = model.num_states
    values = np.zeros(n, dtype=float)
    rates = model.rates
    if n == 0 or rates.nnz == 0 or not phi_states:
        return values

    exit_rates = np.array([model.exit_rate(s) for s in range(n)], dtype=float)
    sources = np.repeat(np.arange(n), np.diff(rates.indptr))
    targets = rates.indices
    phi_mask = np.zeros(n, dtype=bool)
    phi_mask[[int(s) for s in phi_states]] = True
    keep = phi_mask[targets] & (exit_rates[sources] > 0.0) & (rates.data > 0.0)
    if not np.any(keep):
        return values

    src = sources[keep]
    tgt = targets[keep]
    rate = np.asarray(rates.data[keep], dtype=float)
    exits = exit_rates[src]
    rho = model.state_rewards[src]
    impulses = np.asarray(
        model.impulse_rewards[src, tgt], dtype=float
    ).ravel()

    # K(s, s') is a function of (rho(s), iota(s, s')) alone: evaluate the
    # interval algebra once per distinct combination.
    pairs = np.column_stack((rho, impulses))
    distinct, inverse = np.unique(pairs, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).ravel()  # numpy 2.0 shape quirk
    contributions = np.zeros(src.shape[0], dtype=float)
    for group, (group_rho, group_impulse) in enumerate(distinct):
        window = Interval.k_transition(
            time_bound,
            reward_bound,
            rate=float(group_rho),
            impulse=float(group_impulse),
        )
        if window.is_empty:
            continue
        members = inverse == group
        exit_members = exits[members]
        upper = np.exp(-exit_members * window.lower)
        if math.isinf(window.upper):
            lower = 0.0
        else:
            lower = np.exp(-exit_members * window.upper)
        contributions[members] = rate[members] / exit_members * (upper - lower)

    np.add.at(values, src, contributions)
    return values


def next_probabilities_reference(
    model: MRM,
    phi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
) -> np.ndarray:
    """The literal per-transition loop of Algorithm 4.4 (testing oracle)."""
    n = model.num_states
    values = np.zeros(n, dtype=float)
    rates = model.rates
    for state in range(n):
        exit_rate = model.exit_rate(state)
        if exit_rate == 0.0:
            # Absorbing: no next transition ever happens.
            continue
        total = 0.0
        for pos in range(rates.indptr[state], rates.indptr[state + 1]):
            successor = int(rates.indices[pos])
            if successor not in phi_states:
                continue
            rate = float(rates.data[pos])
            window = Interval.k_transition(
                time_bound,
                reward_bound,
                rate=model.state_reward(state),
                impulse=model.impulse_reward(state, successor),
            )
            if window.is_empty:
                continue
            jump = rate / exit_rate
            upper = math.exp(-exit_rate * window.lower)
            lower = (
                0.0
                if math.isinf(window.upper)
                else math.exp(-exit_rate * window.upper)
            )
            total += jump * (upper - lower)
        values[state] = total
    return values


def satisfy_next(
    model: MRM,
    comparison: Comparison,
    bound: float,
    phi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
) -> NextResult:
    """Algorithm 4.4: the states satisfying ``P_{op p}(X^I_J Phi)``."""
    values = next_probabilities(model, phi_states, time_bound, reward_bound)
    satisfying: FrozenSet[int] = frozenset(
        state for state in range(model.num_states) if comparison.holds(values[state], bound)
    )
    return NextResult(values=values, satisfying=satisfying)
