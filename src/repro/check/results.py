"""Result objects returned by the model-checking algorithms.

Each operator's algorithm returns both the quantitative values (per-state
probabilities) and the qualitative answer (the satisfying set), plus the
diagnostics the experiments in Chapter 5 report: error bounds, number of
generated/stored paths, and engine parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

__all__ = ["SatResult", "SteadyResult", "NextResult", "UntilResult"]


@dataclass(frozen=True)
class SatResult:
    """The satisfying set of a state formula.

    Attributes
    ----------
    formula:
        The rendered formula text.
    states:
        The satisfying states ``Sat(Phi)``.
    probabilities:
        Per-state probabilities, when the top operator was quantitative
        (``S`` or ``P``); ``None`` for purely boolean formulas.
    report:
        The :class:`repro.obs.RunReport` of the producing ``check()``
        call — per-phase timings, engine-cache activity and the
        formula's error budget.  ``None`` when observation was disabled
        (``CheckOptions(observe=False)``) or the result was built
        outside :meth:`repro.check.ModelChecker.check`.
    trust:
        How the answer was produced:

        * ``"exact"`` — every quantitative sub-evaluation ran with the
          configured engine configuration (and within the guard's error
          tolerance, when one was set);
        * ``"degraded"`` — at least one sub-problem was re-run on a
          cheaper engine tier (or a linear solve fell back to the direct
          solver) after a budget trip, out-of-memory condition or
          convergence failure, or the finished run's error budget
          exceeds the guard's ``error_tolerance``.  The answer is still
          complete;
        * ``"partial"`` — some sub-problem could not be completed at any
          tier within the budgets; the affected probabilities are
          conservative fill-ins (``Psi``-states 1, everything else 0)
          and the satisfying set must be treated as a lower-confidence
          answer.
    """

    formula: str
    states: FrozenSet[int]
    probabilities: Optional[Tuple[float, ...]] = None
    report: Optional[object] = None
    trust: str = "exact"

    def __contains__(self, state: int) -> bool:
        return int(state) in self.states

    def probability_of(self, state: int) -> Optional[float]:
        """The computed probability for a state (None if not quantitative)."""
        if self.probabilities is None:
            return None
        return self.probabilities[int(state)]


@dataclass(frozen=True)
class SteadyResult:
    """Values behind a steady-state operator evaluation."""

    values: np.ndarray
    satisfying: FrozenSet[int]


@dataclass(frozen=True)
class NextResult:
    """Values behind a next operator evaluation."""

    values: np.ndarray
    satisfying: FrozenSet[int]


@dataclass(frozen=True)
class UntilResult:
    """Values and diagnostics behind an until operator evaluation.

    Attributes
    ----------
    values:
        Per-state probabilities ``P(s, Phi U^I_J Psi)``.
    satisfying:
        States meeting the probability bound.
    engine:
        ``"linear-system"`` (P0), ``"uniformization-transient"`` (P1),
        ``"paths-uniformization"`` or ``"discretization"`` (P2).
    error_bounds:
        Per-state truncation error bounds (paths engine only; zeros for
        the other engines, whose errors are solver tolerances).
    statistics:
        Per-state engine statistics.  For the P2 engines every pending
        state maps to its engine result object
        (:class:`repro.check.paths_engine.PathEngineResult` or
        :class:`repro.check.discretization.DiscretizationResult`), even
        when the batched all-states evaluation produced them from one
        shared precomputation.
    """

    values: np.ndarray
    satisfying: FrozenSet[int]
    engine: str
    error_bounds: Optional[np.ndarray] = None
    statistics: Dict[int, "object"] = field(default_factory=dict)

    def probability_of(self, state: int) -> float:
        """The computed probability for one state."""
        return float(self.values[int(state)])

    def error_bound_of(self, state: int) -> float:
        """The truncation error bound for one state (0.0 if exact)."""
        if self.error_bounds is None:
            return 0.0
        return float(self.error_bounds[int(state)])

    def statistics_for(self, state: int) -> Optional[object]:
        """Engine diagnostics for one state (None for trivial states)."""
        return self.statistics.get(int(state))
