"""The model-checking procedure (Section 4.1, Algorithm 4.1).

:class:`ModelChecker` binds an MRM to the per-operator algorithms.  A
formula's value is the set of states that satisfy it; the checker walks
the parse tree post-order (sub-formulas first), caching the satisfying
set of every sub-formula, exactly as ``SatisfyStateFormula`` does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

import numpy as np

from repro.check.engine_cache import EngineCache, default_engine_cache
from repro.check.next_op import next_probabilities
from repro.check.results import SatResult
from repro.check.steady import satisfy_steady
from repro.check.until import satisfy_until
from repro.exceptions import CheckError, FormulaError
from repro.logic.ast import (
    And,
    Atomic,
    Comparison,
    FalseFormula,
    Formula,
    Implies,
    Next,
    Not,
    Or,
    PathFormula,
    Prob,
    StateFormula,
    Steady,
    TrueFormula,
    Until,
)
from repro.logic.parser import parse_formula
from repro.mrm.model import MRM
from repro.obs import Collector, RunReport, get_collector, use_collector

__all__ = ["CheckOptions", "ModelChecker"]


@dataclass(frozen=True)
class CheckOptions:
    """Numerical configuration for the quantitative operators.

    Attributes
    ----------
    until_engine:
        ``"uniformization"`` (Section 4.6) or ``"discretization"``
        (Section 4.5) for time- and reward-bounded until.
    truncation_probability:
        The path-truncation threshold ``w`` of the uniformization engine
        (the appendix default is ``1e-8``).
    discretization_step:
        The step ``d`` of the discretization engine.
    path_strategy:
        ``"paths"`` (the paper's per-path DFS) or ``"merged"``
        (class-aggregated dynamic programming; prunes less at equal
        ``w``).
    truncation_mode:
        ``"safe"`` (default; prunes on a sound upper bound over all
        extensions of a path) or ``"paper"`` (Algorithm 4.7's literal
        ``P(sigma, t) < w`` test, which degrades for large
        ``Lambda * t`` exactly as Table 5.3 shows).
    linear_solver:
        Solver for steady-state/unbounded-until linear systems
        (``"gauss-seidel"``, ``"jacobi"``, ``"sor"``, ``"direct"``).
    workers:
        Number of worker processes for the uniformization engine's
        per-initial-state fan-out (``0``/``1`` = serial; results are
        bitwise identical either way, see
        :func:`repro.check.paths_engine.joint_distribution_many`).
    observe:
        Whether ``check()`` records a :class:`repro.obs.RunReport`
        (per-phase timings, cache activity, error budget).  On by
        default; the instrumentation is a handful of dict operations per
        phase (overhead is tracked in ``BENCH_3.json``), but it can be
        switched off for micro-benchmarking the bare engines.
    """

    until_engine: str = "uniformization"
    truncation_probability: float = 1e-8
    discretization_step: float = 1 / 32
    path_strategy: str = "paths"
    truncation_mode: str = "safe"
    linear_solver: str = "gauss-seidel"
    workers: int = 0
    observe: bool = True


class ModelChecker:
    """Checks CSRL formulas against an MRM.

    Examples
    --------
    >>> from repro.models import build_wavelan_modem
    >>> checker = ModelChecker(build_wavelan_modem())
    >>> result = checker.check("P(>=0) [TT U[0,0.5][0,50] busy]")
    >>> 2 in result  # the idle state satisfies the trivial bound
    True
    """

    def __init__(
        self,
        model: MRM,
        options: Optional[CheckOptions] = None,
        engine_cache: Optional[EngineCache] = None,
    ) -> None:
        self._model = model
        self._options = options or CheckOptions()
        # Cross-formula engine precomputation (Poisson tables, successor
        # structures, discretization grids, Omega memos), keyed by model
        # fingerprint so repeated checkers over equal models share it.
        # An explicit (possibly empty, hence falsy) cache must win over
        # the process-wide default.
        self._engine_cache = (
            engine_cache if engine_cache is not None else default_engine_cache()
        )
        self._cache: Dict[Formula, FrozenSet[int]] = {}
        self._value_cache: Dict[Formula, Tuple[float, ...]] = {}
        self._last_report: Optional[RunReport] = None
        # Quantitative values keyed by the *path* operator (including its
        # time/reward intervals), not the enclosing Prob formula: two P
        # formulas that differ only in comparison/bound share one engine
        # run, the second check being a pure threshold test.
        self._path_value_cache: Dict[PathFormula, np.ndarray] = {}

    @property
    def model(self) -> MRM:
        return self._model

    @property
    def options(self) -> CheckOptions:
        return self._options

    @property
    def engine_cache(self) -> EngineCache:
        """The cache sharing engine precomputation across formulas."""
        return self._engine_cache

    @property
    def last_report(self) -> Optional[RunReport]:
        """The :class:`repro.obs.RunReport` of the most recent ``check()``."""
        return self._last_report

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def check(self, formula: Union[str, StateFormula]) -> SatResult:
        """Evaluate a state formula; returns its satisfying set.

        Accepts either an AST or concrete syntax (parsed with
        :func:`repro.logic.parse_formula`).  Unless observation is
        disabled (``CheckOptions(observe=False)``), the evaluation runs
        under a fresh :class:`repro.obs.Collector` and the returned
        :class:`SatResult` carries a :class:`repro.obs.RunReport` with
        per-phase timings, engine-cache activity, and the formula's
        error budget; the same report is available as
        :attr:`last_report`.
        """
        parsed = self._coerce(formula)
        if not self._options.observe:
            states = self.satisfying_states(parsed)
            probabilities = self._value_cache.get(parsed)
            return SatResult(
                formula=str(parsed), states=states, probabilities=probabilities
            )
        collector = Collector()
        before = self._engine_cache.stats
        start = time.perf_counter()
        with use_collector(collector):
            states = self._sat(parsed)
        wall_seconds = time.perf_counter() - start
        after = self._engine_cache.stats
        report = RunReport.from_collector(
            str(parsed),
            collector,
            wall_seconds,
            cache={
                "hits": after.hits - before.hits,
                "misses": after.misses - before.misses,
                "evictions": after.evictions - before.evictions,
                "entries": after.entries,
            },
        )
        self._last_report = report
        probabilities = self._value_cache.get(parsed)
        return SatResult(
            formula=str(parsed),
            states=states,
            probabilities=probabilities,
            report=report,
        )

    def holds_in(self, formula: Union[str, StateFormula], state: int) -> bool:
        """Whether ``state |= formula``."""
        parsed = self._coerce(formula)
        return int(state) in self.satisfying_states(parsed)

    def satisfying_states(self, formula: Union[str, StateFormula]) -> FrozenSet[int]:
        """``Sat(Phi)`` with per-sub-formula caching (Algorithm 4.1)."""
        parsed = self._coerce(formula)
        return self._sat(parsed)

    def path_probabilities(self, formula: Union[str, PathFormula]) -> np.ndarray:
        """``P(s, phi)`` for every state ``s`` and a path formula ``phi``.

        Accepts a path AST, or a string of the form the ``P`` operator
        would wrap (e.g. ``"a U[0,3][0,23] b"`` or ``"X a"``): strings are
        parsed by wrapping them in a trivial probability bound.
        """
        if isinstance(formula, str):
            wrapped = parse_formula(f"P(>=0) [{formula}]")
            assert isinstance(wrapped, Prob)
            path = wrapped.path
        elif isinstance(formula, PathFormula):
            path = formula
        else:
            raise FormulaError(
                f"expected a path formula, got {type(formula).__name__}"
            )
        return self._path_values(path).copy()

    def _path_values(self, path: PathFormula) -> np.ndarray:
        """``P(s, phi)`` for every state, cached per path operator.

        The cache key is the path formula itself (structural equality,
        intervals included), so every probability bound wrapped around
        the same path operator reuses one quantitative engine run.
        """
        cached = self._path_value_cache.get(path)
        if cached is not None:
            get_collector().counter_add("path-values.cache-hits")
            return cached
        if isinstance(path, Next):
            with get_collector().span("next"):
                values = next_probabilities(
                    self._model,
                    phi_states=self._sat(path.child),
                    time_bound=path.time_bound,
                    reward_bound=path.reward_bound,
                )
        elif isinstance(path, Until):
            # Resolve the operand sub-formulas before opening the span so
            # "until" times only the quantitative engine work.
            phi_states = self._sat(path.left)
            psi_states = self._sat(path.right)
            with get_collector().span("until"):
                result = satisfy_until(
                    self._model,
                    comparison=Comparison.GE,
                    bound=0.0,
                    phi_states=phi_states,
                    psi_states=psi_states,
                    time_bound=path.time_bound,
                    reward_bound=path.reward_bound,
                    engine=self._options.until_engine,
                    truncation_probability=self._options.truncation_probability,
                    discretization_step=self._options.discretization_step,
                    strategy=self._options.path_strategy,
                    truncation=self._options.truncation_mode,
                    solver=self._options.linear_solver,
                    workers=self._options.workers,
                    cache=self._engine_cache,
                )
            values = result.values
        else:
            raise FormulaError(f"unsupported path formula {path!r}")
        self._path_value_cache[path] = values
        return values

    # ------------------------------------------------------------------
    # recursion (Algorithm 4.1)
    # ------------------------------------------------------------------
    def _coerce(self, formula: Union[str, StateFormula]) -> StateFormula:
        if isinstance(formula, str):
            return parse_formula(formula)
        if isinstance(formula, StateFormula):
            return formula
        raise FormulaError(
            f"expected a state formula or string, got {type(formula).__name__}"
        )

    def _sat(self, formula: StateFormula) -> FrozenSet[int]:
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._compute_sat(formula)
        self._cache[formula] = result
        return result

    def _compute_sat(self, formula: StateFormula) -> FrozenSet[int]:
        model = self._model
        all_states = frozenset(range(model.num_states))
        if isinstance(formula, TrueFormula):
            return all_states
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, Atomic):
            if (
                model.atomic_propositions
                and formula.name not in model.atomic_propositions
            ):
                raise CheckError(
                    f"atomic proposition {formula.name!r} is not used in the "
                    "model (declared propositions: "
                    f"{sorted(model.atomic_propositions)})"
                )
            return frozenset(model.states_with_label(formula.name))
        if isinstance(formula, Not):
            return all_states - self._sat(formula.child)
        if isinstance(formula, Or):
            return self._sat(formula.left) | self._sat(formula.right)
        if isinstance(formula, And):
            return self._sat(formula.left) & self._sat(formula.right)
        if isinstance(formula, Implies):
            return (all_states - self._sat(formula.left)) | self._sat(formula.right)
        if isinstance(formula, Steady):
            with get_collector().span("steady"):
                result = satisfy_steady(
                    model,
                    comparison=formula.comparison,
                    bound=formula.bound,
                    phi_states=self._sat(formula.child),
                    cache=self._engine_cache,
                )
            self._value_cache[formula] = tuple(float(v) for v in result.values)
            return result.satisfying
        if isinstance(formula, Prob):
            return self._sat_probability(formula)
        raise FormulaError(f"unsupported formula {formula!r}")

    def _sat_probability(self, formula: Prob) -> FrozenSet[int]:
        values = self._path_values(formula.path)
        self._value_cache[formula] = tuple(float(v) for v in values)
        return frozenset(
            state
            for state in range(self._model.num_states)
            if formula.comparison.holds(float(values[state]), formula.bound)
        )
