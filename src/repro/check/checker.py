"""The model-checking procedure (Section 4.1, Algorithm 4.1).

:class:`ModelChecker` binds an MRM to the per-operator algorithms.  A
formula's value is the set of states that satisfy it; the checker walks
the parse tree post-order (sub-formulas first), caching the satisfying
set of every sub-formula, exactly as ``SatisfyStateFormula`` does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from repro.check.engine_cache import EngineCache, default_engine_cache
from repro.check.next_op import next_probabilities
from repro.check.results import SatResult
from repro.check.steady import satisfy_steady
from repro.check.until import satisfy_until
from repro.exceptions import (
    CheckError,
    ConvergenceError,
    FormulaError,
    GuardExceeded,
    NumericalError,
)
from repro.guard import (
    Guard,
    NullGuard,
    degradation_record,
    get_guard,
    until_tiers,
    use_guard,
)
from repro.logic.ast import (
    And,
    Atomic,
    Comparison,
    FalseFormula,
    Formula,
    Implies,
    Next,
    Not,
    Or,
    PathFormula,
    Prob,
    StateFormula,
    Steady,
    TrueFormula,
    Until,
)
from repro.diag.lints import lint_formula
from repro.logic.parser import parse_formula
from repro.mrm.model import MRM
from repro.obs import Collector, ErrorBudget, RunReport, get_collector, use_collector
from repro.obs.report import (
    DEGRADATION_EVENT,
    PARTIAL_EVENT,
    SOLVER_FALLBACK_EVENT,
)

__all__ = ["CheckOptions", "ModelChecker"]

_UNTIL_ENGINES = ("uniformization", "discretization")
_PATH_STRATEGIES = ("paths", "merged", "merged-legacy")
_TRUNCATION_MODES = ("safe", "paper")
_LINEAR_SOLVERS = ("gauss-seidel", "jacobi", "sor", "direct")
_KERNEL_BACKENDS = ("auto", "numpy", "numba", "python")


@dataclass(frozen=True)
class CheckOptions:
    """Numerical configuration for the quantitative operators.

    Attributes
    ----------
    until_engine:
        ``"uniformization"`` (Section 4.6) or ``"discretization"``
        (Section 4.5) for time- and reward-bounded until.
    truncation_probability:
        The path-truncation threshold ``w`` of the uniformization engine
        (the appendix default is ``1e-8``).
    discretization_step:
        The step ``d`` of the discretization engine.
    path_strategy:
        ``"paths"`` (the paper's per-path DFS) or ``"merged"``
        (class-aggregated dynamic programming; prunes less at equal
        ``w``).
    truncation_mode:
        ``"safe"`` (default; prunes on a sound upper bound over all
        extensions of a path) or ``"paper"`` (Algorithm 4.7's literal
        ``P(sigma, t) < w`` test, which degrades for large
        ``Lambda * t`` exactly as Table 5.3 shows).
    linear_solver:
        Solver for steady-state/unbounded-until linear systems
        (``"gauss-seidel"``, ``"jacobi"``, ``"sor"``, ``"direct"``).
    kernels:
        Compiled-kernel backend for the path engine's hot loops
        (``"auto"``, ``"numpy"``, ``"numba"``, ``"python"``).  The
        default ``"auto"`` uses the numba-jitted frontier merge and
        Omega sweep when the optional ``repro[speed]`` extra is
        installed and falls back to the NumPy reference path (with a
        ``kernels.fallback`` event) otherwise.  All backends are
        bitwise identical — see :mod:`repro.kernels`.
    workers:
        Number of worker processes for the uniformization engine's
        per-initial-state fan-out (``0``/``1`` = serial; clamped to the
        machine's core count, with a ``pool.workers-clamped`` event when
        clamping).  The fan-out runs on the engine cache's persistent
        shared-memory worker pool, and results are bitwise identical
        either way — see
        :func:`repro.check.paths_engine.joint_distribution_many`.
    observe:
        Whether ``check()`` records a :class:`repro.obs.RunReport`
        (per-phase timings, cache activity, error budget).  On by
        default; the instrumentation is a handful of dict operations per
        phase (overhead is tracked in ``BENCH_3.json``), but it can be
        switched off for micro-benchmarking the bare engines.
    deadline_s:
        Wall-clock budget per ``check()`` call in seconds; ``None``
        (default) leaves time unbounded.  Enforced cooperatively by a
        :class:`repro.guard.Guard` at the engines' checkpoint sites.
    mem_budget_bytes:
        Memory budget per ``check()`` call in bytes; ``None`` (default)
        leaves memory unbounded.
    error_tolerance:
        Acceptable total :class:`~repro.obs.ErrorBudget` for a check's
        answer; when set and exceeded, the result's ``trust`` is
        downgraded to ``"degraded"`` (requires ``observe=True`` — the
        budget is assembled from the run's collector).
    degrade:
        Whether budget trips, out-of-memory conditions and convergence
        failures step down through cheaper engine tiers
        (:func:`repro.guard.until_tiers`) instead of propagating.  On by
        default; with ``False`` the first such failure raises.

    All fields are validated at construction: unknown engine, strategy,
    truncation-mode or solver names, negative worker counts, a
    non-positive discretization step, or a truncation probability
    outside ``(0, 1)`` raise :class:`~repro.exceptions.CheckError`
    immediately instead of failing deep inside an engine.
    """

    until_engine: str = "uniformization"
    truncation_probability: float = 1e-8
    discretization_step: float = 1 / 32
    path_strategy: str = "paths"
    truncation_mode: str = "safe"
    linear_solver: str = "gauss-seidel"
    kernels: str = "auto"
    workers: int = 0
    observe: bool = True
    deadline_s: Optional[float] = None
    mem_budget_bytes: Optional[int] = None
    error_tolerance: Optional[float] = None
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.until_engine not in _UNTIL_ENGINES:
            raise CheckError(
                f"unknown until engine {self.until_engine!r} "
                f"(expected one of {_UNTIL_ENGINES})"
            )
        if self.path_strategy not in _PATH_STRATEGIES:
            raise CheckError(
                f"unknown path strategy {self.path_strategy!r} "
                f"(expected one of {_PATH_STRATEGIES})"
            )
        if self.truncation_mode not in _TRUNCATION_MODES:
            raise CheckError(
                f"unknown truncation mode {self.truncation_mode!r} "
                f"(expected one of {_TRUNCATION_MODES})"
            )
        if self.linear_solver not in _LINEAR_SOLVERS:
            raise CheckError(
                f"unknown linear solver {self.linear_solver!r} "
                f"(expected one of {_LINEAR_SOLVERS})"
            )
        if self.kernels not in _KERNEL_BACKENDS:
            raise CheckError(
                f"unknown kernel backend {self.kernels!r} "
                f"(expected one of {_KERNEL_BACKENDS})"
            )
        if not isinstance(self.workers, int) or self.workers < 0:
            raise CheckError(
                f"workers must be a non-negative integer, got {self.workers!r}"
            )
        if not 0.0 < self.truncation_probability < 1.0:
            raise CheckError(
                "truncation probability must lie in (0, 1), got "
                f"{self.truncation_probability!r}"
            )
        if self.discretization_step <= 0.0:
            raise CheckError(
                f"discretization step must be positive, got "
                f"{self.discretization_step!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise CheckError(
                f"deadline_s must be positive or None, got {self.deadline_s!r}"
            )
        if self.mem_budget_bytes is not None and self.mem_budget_bytes < 1:
            raise CheckError(
                "mem_budget_bytes must be at least 1 or None, got "
                f"{self.mem_budget_bytes!r}"
            )
        if self.error_tolerance is not None and self.error_tolerance < 0:
            raise CheckError(
                "error_tolerance must be non-negative or None, got "
                f"{self.error_tolerance!r}"
            )

    @property
    def guarded(self) -> bool:
        """Whether any guard budget is configured."""
        return (
            self.deadline_s is not None
            or self.mem_budget_bytes is not None
            or self.error_tolerance is not None
        )


class ModelChecker:
    """Checks CSRL formulas against an MRM.

    Examples
    --------
    >>> from repro.models import build_wavelan_modem
    >>> checker = ModelChecker(build_wavelan_modem())
    >>> result = checker.check("P(>=0) [TT U[0,0.5][0,50] busy]")
    >>> 2 in result  # the idle state satisfies the trivial bound
    True
    """

    def __init__(
        self,
        model: MRM,
        options: Optional[CheckOptions] = None,
        engine_cache: Optional[EngineCache] = None,
        guard: Optional[NullGuard] = None,
    ) -> None:
        self._model = model
        self._options = options or CheckOptions()
        # Cross-formula engine precomputation (Poisson tables, successor
        # structures, discretization grids, Omega memos), keyed by model
        # fingerprint so repeated checkers over equal models share it.
        # An explicit (possibly empty, hence falsy) cache must win over
        # the process-wide default.
        self._engine_cache = (
            engine_cache if engine_cache is not None else default_engine_cache()
        )
        # An explicit guard is shared across every check() of this
        # checker (one budget for a whole analysis); without one, each
        # check() builds a fresh per-call guard from the options.
        self._guard = guard
        self._cache: Dict[Formula, FrozenSet[int]] = {}
        self._value_cache: Dict[Formula, Tuple[float, ...]] = {}
        self._last_report: Optional[RunReport] = None
        # Quantitative values keyed by the *path* operator (including its
        # time/reward intervals), not the enclosing Prob formula: two P
        # formulas that differ only in comparison/bound share one engine
        # run, the second check being a pure threshold test.  Each entry
        # stores the values together with the degradation records of the
        # run that produced them, so cache hits replay the degradations
        # (marked ``cached``) into the requesting check's report instead
        # of silently laundering a degraded answer into an "exact" one.
        # Partial results are never cached.
        self._path_value_cache: Dict[
            PathFormula, Tuple[np.ndarray, Tuple[Dict[str, Any], ...]]
        ] = {}
        # Per-check degradation state, reset by check().
        self._partial = False
        self._degradations: List[Dict[str, Any]] = []

    @property
    def model(self) -> MRM:
        return self._model

    @property
    def options(self) -> CheckOptions:
        return self._options

    @property
    def engine_cache(self) -> EngineCache:
        """The cache sharing engine precomputation across formulas."""
        return self._engine_cache

    @property
    def last_report(self) -> Optional[RunReport]:
        """The :class:`repro.obs.RunReport` of the most recent ``check()``."""
        return self._last_report

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def check(
        self,
        formula: Union[str, StateFormula],
        guard: Optional[NullGuard] = None,
        request_id: Optional[str] = None,
    ) -> SatResult:
        """Evaluate a state formula; returns its satisfying set.

        Accepts either an AST or concrete syntax (parsed with
        :func:`repro.logic.parse_formula`).  Unless observation is
        disabled (``CheckOptions(observe=False)``), the evaluation runs
        under a fresh :class:`repro.obs.Collector` and the returned
        :class:`SatResult` carries a :class:`repro.obs.RunReport` with
        per-phase timings, engine-cache activity, and the formula's
        error budget; the same report is available as
        :attr:`last_report`.

        When the options (or an explicit constructor guard) configure
        budgets, the evaluation additionally runs under a
        :class:`repro.guard.Guard` and never raises on a tripped budget
        while ``options.degrade`` holds: failed sub-problems are re-run
        on cheaper engine tiers, the result's :attr:`SatResult.trust`
        reports ``"degraded"``/``"partial"``, and every step is listed
        in the report's ``degradations`` section.

        A per-call ``guard`` overrides both the constructor guard and
        the options-derived budgets for this one evaluation — the hook a
        long-lived service uses to run every request on a *shared*
        checker (warm formula caches) under that request's own
        admission-clipped budgets.  A per-call ``request_id`` becomes
        the run collector's correlation id: every span of the trace
        (including pool-worker shard spans) records it as an attribute,
        so the daemon's response envelope, its log lines and the
        exported Chrome trace all name the same request.
        """
        parsed = self._coerce(formula)
        guard = guard if guard is not None else self._make_guard()
        self._partial = False
        self._degradations = []
        if not self._options.observe:
            with use_guard(guard if guard.enabled else None):
                states = self._sat(parsed)
            probabilities = self._value_cache.get(parsed)
            return SatResult(
                formula=str(parsed),
                states=states,
                probabilities=probabilities,
                trust=self._trust(guard, None),
            )
        collector = Collector(request_id=request_id)
        before = self._engine_cache.stats
        start = time.perf_counter()
        with use_collector(collector), use_guard(guard if guard.enabled else None):
            # The formula parsed (errors would have raised in _coerce);
            # record the lint verdict so reports show what was checked
            # under vacuous bounds or measure-zero reward points.
            lint_warnings = lint_formula(parsed)
            collector.event(
                "diag.count",
                errors=0,
                warnings=len(lint_warnings),
                codes=",".join(sorted({d.code for d in lint_warnings})),
            )
            with collector.span("check", formula=str(parsed)) as root:
                states = self._sat(parsed)
        wall_seconds = time.perf_counter() - start
        after = self._engine_cache.stats
        trust = self._trust(guard, collector)
        root.attributes["trust"] = trust
        report = RunReport.from_collector(
            str(parsed),
            collector,
            wall_seconds,
            cache={
                "hits": after.hits - before.hits,
                "misses": after.misses - before.misses,
                "evictions": after.evictions - before.evictions,
                "entries": after.entries,
            },
            trust=trust,
        )
        self._last_report = report
        probabilities = self._value_cache.get(parsed)
        return SatResult(
            formula=str(parsed),
            states=states,
            probabilities=probabilities,
            report=report,
            trust=trust,
        )

    # ------------------------------------------------------------------
    # guarded execution
    # ------------------------------------------------------------------
    def _make_guard(self) -> NullGuard:
        """The guard for one ``check()`` call.

        An explicit constructor guard wins (its deadline keeps ticking
        across calls — a whole-analysis budget); otherwise a fresh
        per-call :class:`Guard` is built whenever the options configure
        any budget, and the shared no-op guard when they do not.
        """
        if self._guard is not None:
            return self._guard
        opts = self._options
        if opts.guarded:
            return Guard(
                deadline_s=opts.deadline_s,
                mem_budget_bytes=opts.mem_budget_bytes,
                error_tolerance=opts.error_tolerance,
            )
        return NullGuard()

    def _trust(self, guard: NullGuard, collector: Optional[Collector]) -> str:
        """The trust qualification of the check that just finished."""
        if self._partial:
            return "partial"
        if self._degradations:
            return "degraded"
        if collector is not None:
            if collector.events_named(SOLVER_FALLBACK_EVENT):
                # An iterative solve silently fell back to the direct
                # solver inside solve_linear_system: the answer is
                # complete but not what the configuration asked for.
                return "degraded"
            tolerance = guard.error_tolerance
            if tolerance is not None:
                budget = ErrorBudget.from_collector(collector)
                if budget.total > tolerance:
                    return "degraded"
        return "exact"

    def _note_degradation(self, record: Dict[str, Any]) -> None:
        """Track one degradation and mirror it into the collector."""
        self._degradations.append(record)
        name = PARTIAL_EVENT if record.get("kind") == "partial" else DEGRADATION_EVENT
        get_collector().event(name, **record)

    @property
    def degradations(self) -> List[Dict[str, Any]]:
        """Engine-level degradation records of the most recent check."""
        return list(self._degradations)

    def holds_in(self, formula: Union[str, StateFormula], state: int) -> bool:
        """Whether ``state |= formula``."""
        parsed = self._coerce(formula)
        return int(state) in self.satisfying_states(parsed)

    def satisfying_states(self, formula: Union[str, StateFormula]) -> FrozenSet[int]:
        """``Sat(Phi)`` with per-sub-formula caching (Algorithm 4.1)."""
        parsed = self._coerce(formula)
        return self._sat(parsed)

    def path_probabilities(self, formula: Union[str, PathFormula]) -> np.ndarray:
        """``P(s, phi)`` for every state ``s`` and a path formula ``phi``.

        Accepts a path AST, or a string of the form the ``P`` operator
        would wrap (e.g. ``"a U[0,3][0,23] b"`` or ``"X a"``): strings are
        parsed by wrapping them in a trivial probability bound.
        """
        if isinstance(formula, str):
            wrapped = parse_formula(f"P(>=0) [{formula}]")
            assert isinstance(wrapped, Prob)
            path = wrapped.path
        elif isinstance(formula, PathFormula):
            path = formula
        else:
            raise FormulaError(
                f"expected a path formula, got {type(formula).__name__}"
            )
        return self._path_values(path).copy()

    def _path_values(self, path: PathFormula) -> np.ndarray:
        """``P(s, phi)`` for every state, cached per path operator.

        The cache key is the path formula itself (structural equality,
        intervals included), so every probability bound wrapped around
        the same path operator reuses one quantitative engine run.  A
        cache hit replays the producing run's degradation records
        (marked ``cached``) so the current check's trust stays honest;
        partial results are recomputed every time.
        """
        cached = self._path_value_cache.get(path)
        if cached is not None:
            values, records = cached
            obs = get_collector()
            obs.counter_add("path-values.cache-hits")
            obs.annotate(cached=True)
            for record in records:
                self._note_degradation({**record, "cached": True})
            return values
        if isinstance(path, Next):
            values, records, partial = self._next_values_guarded(path)
        elif isinstance(path, Until):
            values, records, partial = self._until_values_guarded(path)
        else:
            raise FormulaError(f"unsupported path formula {path!r}")
        if partial:
            self._partial = True
        else:
            self._path_value_cache[path] = (values, tuple(records))
        return values

    def _next_values_guarded(
        self, path: Next
    ) -> Tuple[np.ndarray, List[Dict[str, Any]], bool]:
        """The next operator under the ambient guard.

        Next has no cheaper tier (one matrix-vector product); a budget
        trip makes the sub-problem partial immediately.
        """
        phi_states = self._sat(path.child)
        guard = get_guard()
        records: List[Dict[str, Any]] = []
        try:
            with get_collector().span("next"):
                values = next_probabilities(
                    self._model,
                    phi_states=phi_states,
                    time_bound=path.time_bound,
                    reward_bound=path.reward_bound,
                )
            return values, records, False
        except (GuardExceeded, MemoryError, ConvergenceError) as exc:
            if not self._options.degrade:
                raise
            record = degradation_record(
                "next",
                "next",
                None,
                exc,
                kind="partial",
                elapsed_s=guard.elapsed() if guard.enabled else None,
            )
            self._note_degradation(record)
            records.append(record)
            values = np.zeros(self._model.num_states, dtype=float)
            for state in phi_states:
                values[state] = 1.0
            return values, records, True

    def _until_values_guarded(
        self, path: Until
    ) -> Tuple[np.ndarray, List[Dict[str, Any]], bool]:
        """The until operator under the ambient guard, with the cascade.

        Runs the configured tier first; on a budget trip, out-of-memory
        condition or convergence failure it steps down through
        :func:`repro.guard.until_tiers`, re-running only this
        sub-problem.  When every tier fails (or the deadline leaves no
        time for a retry) the values are the conservative fill-in —
        ``Psi``-states 1, everything else 0 — and the result is partial.
        """
        opts = self._options
        # Resolve the operand sub-formulas before opening the span so
        # "until" times only the quantitative engine work.
        phi_states = self._sat(path.left)
        psi_states = self._sat(path.right)
        guard = get_guard()
        tiers = until_tiers(opts.until_engine, opts.path_strategy)
        if path.reward_bound.is_unbounded:
            # P0/P1 formulas ignore the engine/strategy configuration
            # entirely (linear system / transient uniformization), so a
            # "cheaper tier" would repeat the identical computation.
            tiers = tiers[:1]
        obs = get_collector()
        records: List[Dict[str, Any]] = []
        for index, tier in enumerate(tiers):
            try:
                with obs.span("until", tier=tier.label) as span:
                    result = satisfy_until(
                        self._model,
                        comparison=Comparison.GE,
                        bound=0.0,
                        phi_states=phi_states,
                        psi_states=psi_states,
                        time_bound=path.time_bound,
                        reward_bound=path.reward_bound,
                        engine=tier.engine,
                        truncation_probability=opts.truncation_probability,
                        discretization_step=opts.discretization_step,
                        strategy=tier.strategy,
                        truncation=opts.truncation_mode,
                        solver=opts.linear_solver,
                        workers=opts.workers,
                        cache=self._engine_cache,
                        kernels=opts.kernels,
                    )
                if span is not None:
                    span.attributes["engine"] = result.engine
                # The enclosing sat.prob span records which engine
                # finally answered (after any cascade step-downs).
                obs.annotate(engine=result.engine, tier=tier.label)
                return result.values, records, False
            except (GuardExceeded, MemoryError, ConvergenceError) as exc:
                if not opts.degrade:
                    raise
                elapsed = guard.elapsed() if guard.enabled else None
                # A passed deadline dooms every retry at its first
                # checkpoint — go partial instead of burning tiers.
                retry = index + 1 < len(tiers) and not guard.time_exhausted()
                if retry:
                    record = degradation_record(
                        "until",
                        tier.label,
                        tiers[index + 1].label,
                        exc,
                        kind="engine",
                        elapsed_s=elapsed,
                    )
                    self._note_degradation(record)
                    records.append(record)
                    continue
                record = degradation_record(
                    "until", tier.label, None, exc, kind="partial", elapsed_s=elapsed
                )
                self._note_degradation(record)
                records.append(record)
                break
            except (CheckError, NumericalError) as exc:
                # Configuration/precondition errors.  From the
                # *configured* tier they are the caller's problem and
                # propagate; a fallback tier whose preconditions the
                # model violates (e.g. discretization over non-integral
                # rewards) is simply skipped.
                if index == 0 or not opts.degrade:
                    raise
                elapsed = guard.elapsed() if guard.enabled else None
                retry = index + 1 < len(tiers)
                record = degradation_record(
                    "until",
                    tier.label,
                    tiers[index + 1].label if retry else None,
                    exc,
                    kind="engine" if retry else "partial",
                    elapsed_s=elapsed,
                )
                self._note_degradation(record)
                records.append(record)
                if retry:
                    continue
                break
        values = np.zeros(self._model.num_states, dtype=float)
        for state in psi_states:
            values[state] = 1.0
        return values, records, True

    # ------------------------------------------------------------------
    # recursion (Algorithm 4.1)
    # ------------------------------------------------------------------
    def _coerce(self, formula: Union[str, StateFormula]) -> StateFormula:
        if isinstance(formula, str):
            return parse_formula(formula)
        if isinstance(formula, StateFormula):
            return formula
        raise FormulaError(
            f"expected a state formula or string, got {type(formula).__name__}"
        )

    def _sat(self, formula: StateFormula) -> FrozenSet[int]:
        obs = get_collector()
        if not obs.enabled:
            cached = self._cache.get(formula)
            if cached is not None:
                return cached
            result = self._compute_sat(formula)
            # Partial fill-ins must not poison the cross-check
            # satisfying-set cache: once this check has gone partial,
            # nothing computed from here on is known to be exact, so
            # stop caching entirely.
            if not self._partial:
                self._cache[formula] = result
            return result
        # One span per parse-tree node, so the trace renders the
        # Sat(Phi) recursion of Algorithm 4.1 as a tree.  Cache hits
        # still open a (marked) span: the tree mirrors the parse *tree*,
        # not the memoized DAG.  The root ``check`` span already carries
        # the full formula text; rendering every subformula here would
        # cost more than the span itself.
        with obs.span(f"sat.{type(formula).__name__.lower()}"):
            cached = self._cache.get(formula)
            if cached is not None:
                obs.annotate(cached=True, states=len(cached))
                return cached
            result = self._compute_sat(formula)
            obs.annotate(states=len(result))
            if not self._partial:
                self._cache[formula] = result
            return result

    def _compute_sat(self, formula: StateFormula) -> FrozenSet[int]:
        model = self._model
        all_states = frozenset(range(model.num_states))
        if isinstance(formula, TrueFormula):
            return all_states
        if isinstance(formula, FalseFormula):
            return frozenset()
        if isinstance(formula, Atomic):
            if (
                model.atomic_propositions
                and formula.name not in model.atomic_propositions
            ):
                raise CheckError(
                    f"atomic proposition {formula.name!r} is not used in the "
                    "model (declared propositions: "
                    f"{sorted(model.atomic_propositions)})"
                )
            return frozenset(model.states_with_label(formula.name))
        if isinstance(formula, Not):
            return all_states - self._sat(formula.child)
        if isinstance(formula, Or):
            return self._sat(formula.left) | self._sat(formula.right)
        if isinstance(formula, And):
            return self._sat(formula.left) & self._sat(formula.right)
        if isinstance(formula, Implies):
            return (all_states - self._sat(formula.left)) | self._sat(formula.right)
        if isinstance(formula, Steady):
            return self._sat_steady(formula)
        if isinstance(formula, Prob):
            return self._sat_probability(formula)
        raise FormulaError(f"unsupported formula {formula!r}")

    def _sat_steady(self, formula: Steady) -> FrozenSet[int]:
        """The steady-state operator under the ambient guard.

        The solver already degrades iterative → direct internally
        (:func:`repro.numerics.linsolve.solve_linear_system`), so a
        failure escaping here means even the direct solve (or the BSCC
        analysis) could not finish within the budgets: the sub-problem
        goes partial with the conservative empty satisfying set.
        """
        obs = get_collector()
        obs.annotate(
            operator="S",
            comparison=str(formula.comparison),
            bound=float(formula.bound),
        )
        phi_states = self._sat(formula.child)
        guard = get_guard()
        try:
            with obs.span("steady"):
                result = satisfy_steady(
                    self._model,
                    comparison=formula.comparison,
                    bound=formula.bound,
                    phi_states=phi_states,
                    cache=self._engine_cache,
                )
        except (GuardExceeded, MemoryError, ConvergenceError) as exc:
            if not self._options.degrade:
                raise
            self._partial = True
            self._note_degradation(
                degradation_record(
                    "steady",
                    "steady",
                    None,
                    exc,
                    kind="partial",
                    elapsed_s=guard.elapsed() if guard.enabled else None,
                )
            )
            self._value_cache[formula] = tuple(
                0.0 for _ in range(self._model.num_states)
            )
            return frozenset()
        self._value_cache[formula] = tuple(float(v) for v in result.values)
        return result.satisfying

    def _sat_probability(self, formula: Prob) -> FrozenSet[int]:
        get_collector().annotate(
            operator="P",
            comparison=str(formula.comparison),
            bound=float(formula.bound),
            time_bound=str(formula.path.time_bound),
            reward_bound=str(formula.path.reward_bound),
        )
        values = self._path_values(formula.path)
        self._value_cache[formula] = tuple(float(v) for v in values)
        return frozenset(
            state
            for state in range(self._model.num_states)
            if formula.comparison.holds(float(values[state]), formula.bound)
        )
