"""The probabilistic until operator (Sections 4.3.2, 4.5, 4.6).

Three property classes are distinguished per the paper:

* **P0** ``P(Phi U Psi)`` — unbounded: a linear system over the embedded
  chain (eq. 3.8), solved after qualitative reachability precomputation;
* **P1** ``P(Phi U^{[0,t]} Psi)`` — time-bounded, reward-unbounded:
  transient analysis of ``M[!Phi or Psi]`` by standard uniformization
  with Fox–Glynn Poisson weights;
* **P2** ``P(Phi U^{[0,t]}_{[0,r]} Psi)`` — time- and reward-bounded:
  via Theorems 4.1/4.3 reduced to ``Pr{Y(t) <= r, X(t) |= Psi}`` over
  ``M[!Phi or Psi]``, evaluated with either the path-generation engine
  (Section 4.6) or the discretization engine (Section 4.5).

The paper restricts computational support to lower-bound-zero intervals
``[0, t]``/``[0, r]``.  As an extension of the paper (its chapter 6
lists general bounds as future work), reward-*unbounded* until
additionally supports general time intervals ``[t1, t2]`` via the
two-phase construction of :func:`interval_until_probabilities`;
reward-bounded formulas with positive lower bounds still raise
:class:`CheckError`.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, FrozenSet, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.check.discretization import (
    discretized_joint_distribution,
    discretized_joint_distributions,
)
from repro.check.engine_cache import EngineCache
from repro.check.paths_engine import (
    joint_distribution_from_context,
    joint_distribution_many,
    prepare_path_engine,
)
from repro.check.results import UntilResult
from repro.exceptions import CheckError
from repro.graphs.reachability import backward_reachable
from repro.guard import get_guard
from repro.logic.ast import Comparison
from repro.mrm.model import MRM
from repro.numerics.intervals import Interval
from repro.numerics.linsolve import solve_linear_system
from repro.numerics.poisson import fox_glynn
from repro.obs import get_collector
from repro.obs.report import TRUNCATION_COUNTER

__all__ = [
    "unbounded_until_probabilities",
    "time_bounded_until_probabilities",
    "interval_until_probabilities",
    "until_probability",
    "until_probabilities",
    "satisfy_until",
]


def unbounded_until_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    solver: str = "gauss-seidel",
) -> np.ndarray:
    """P0: ``P(s, Phi U Psi)`` for all states (least solution of eq. 3.8).

    States that cannot reach ``Psi`` through ``Phi``-states get exactly 0
    (the least-fixed-point requirement); ``Psi``-states get exactly 1.
    The remaining states are solved as a linear system over the embedded
    jump probabilities.
    """
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}
    values = np.zeros(n, dtype=float)
    for state in psi:
        values[state] = 1.0

    # Qualitative step: only Phi-states that can reach Psi via Phi-states
    # have positive probability.
    allowed = phi - psi
    relevant = backward_reachable(model.rates, psi, allowed=allowed)
    unknown = sorted((relevant - psi) & allowed)
    if not unknown:
        return values

    index = {state: pos for pos, state in enumerate(unknown)}
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs = np.zeros(len(unknown), dtype=float)
    rates = model.rates
    for state in unknown:
        row = index[state]
        rows.append(row)
        cols.append(row)
        vals.append(1.0)
        exit_rate = model.exit_rate(state)
        if exit_rate == 0.0:
            continue  # absorbing: equation x = 0 (cannot move at all)
        for pos in range(rates.indptr[state], rates.indptr[state + 1]):
            successor = int(rates.indices[pos])
            probability = float(rates.data[pos]) / exit_rate
            if probability == 0.0:
                continue
            if successor in psi:
                rhs[row] += probability
            elif successor in index:
                rows.append(row)
                cols.append(index[successor])
                vals.append(-probability)
    system = sp.csr_matrix((vals, (rows, cols)), shape=(len(unknown), len(unknown)))
    solution = solve_linear_system(system, rhs, method=solver)
    for state, row in index.items():
        values[state] = min(max(float(solution[row]), 0.0), 1.0)
    return values


def time_bounded_until_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: float,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """P1: ``P(s, Phi U^{[0,t]} Psi)`` for all states.

    Theorem 4.1 with trivial reward bound: make ``(!Phi or Psi)``-states
    absorbing and compute ``Pr{X(t) |= Psi}`` by uniformization.  The
    computation runs backwards (``u = sum_i poisson(i) P^i 1_Psi``) so a
    single pass yields the value for every initial state.
    """
    if time_bound < 0:
        raise CheckError("time bound must be non-negative")
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}
    indicator = np.zeros(n, dtype=float)
    for state in psi:
        indicator[state] = 1.0
    if time_bound == 0.0:
        return indicator

    absorbing = (set(range(n)) - phi) | psi
    transformed = model.make_absorbing(absorbing)
    process = transformed.uniformize()
    weights = fox_glynn(process.rate * time_bound, epsilon)
    matrix = process.dtmc.matrix

    current = indicator.copy()
    result = np.zeros(n, dtype=float)
    guard = get_guard()
    mem_estimate = (
        int(matrix.data.nbytes + 3 * current.nbytes) if guard.enabled else None
    )
    obs = get_collector()
    mass_series = obs.series("until.truncation-mass") if obs.enabled else None
    covered = 0.0
    for step in range(weights.right + 1):
        if guard.enabled:
            guard.checkpoint("until.transient", mem_bytes=mem_estimate)
        if step >= weights.left:
            w_step = weights.weight(step)
            if mass_series is not None:
                # Poisson mass not yet accumulated at this epoch — the
                # remaining truncation if the sum stopped here.
                covered += w_step
                mass_series.append(float(step), max(0.0, 1.0 - covered))
            result += w_step * current
        if step < weights.right:
            current = matrix.dot(current)
    if obs.enabled:
        # The Fox-Glynn window discards at most epsilon Poisson mass.
        obs.counter_add(TRUNCATION_COUNTER, float(epsilon))
        obs.event(
            "until.transient",
            lambda_t=float(process.rate * time_bound),
            left=int(weights.left),
            right=int(weights.right),
            epsilon=float(epsilon),
        )
    return np.clip(result, 0.0, 1.0)


def interval_until_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: Interval,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """P1 with a general time interval: ``P(s, Phi U^{[t1,t2]} Psi)``.

    The paper's Chapter 6 lists general time bounds as future work; for
    the reward-unbounded case the standard two-phase CSL construction
    (Baier et al., IEEE TSE 2003) applies and is implemented here:

    1. during ``[0, t1]`` the path must stay within ``Phi``-states, so
       the first phase evolves ``M[!Phi]`` for ``t1`` time units;
    2. from the state occupied at ``t1`` (if still a ``Phi``-state) the
       remaining obligation is ``Phi U^{[0, t2 - t1]} Psi``.

    Both phases run backwards so one pass covers every initial state.
    For ``t1 = t2`` the second phase degenerates to the indicator of
    ``Psi``, matching the ``U^{[t,t]}`` semantics of Theorem 4.2.
    """
    if time_bound.is_empty:
        raise CheckError("time interval must be non-empty")
    t1 = time_bound.lower
    t2 = time_bound.upper
    if math.isinf(t2):
        raise CheckError(
            "intervals of the form [t1, infinity) are not supported; "
            "combine a [t1, t1] phase with an unbounded until instead"
        )
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}
    if t1 == 0.0:
        return time_bounded_until_probabilities(model, phi, psi, t2, epsilon)

    # Phase 2: values from each state for the residual obligation.
    if t2 > t1:
        residual = time_bounded_until_probabilities(model, phi, psi, t2 - t1, epsilon)
    else:
        residual = np.zeros(n, dtype=float)
        for state in psi:
            residual[state] = 1.0
    # Only Phi-states may be occupied at t1 (strictly-before satisfaction
    # of Phi); zero the rest.
    phase_two = np.array(
        [residual[s] if s in phi else 0.0 for s in range(n)], dtype=float
    )

    # Phase 1: evolve M[!Phi] backwards for t1.
    transformed = model.make_absorbing(set(range(n)) - phi)
    process = transformed.uniformize()
    weights = fox_glynn(process.rate * t1, epsilon)
    matrix = process.dtmc.matrix
    current = phase_two.copy()
    values = np.zeros(n, dtype=float)
    guard = get_guard()
    mem_estimate = (
        int(matrix.data.nbytes + 3 * current.nbytes) if guard.enabled else None
    )
    for step in range(weights.right + 1):
        if guard.enabled:
            guard.checkpoint("until.interval", mem_bytes=mem_estimate)
        if step >= weights.left:
            values += weights.weight(step) * current
        if step < weights.right:
            current = matrix.dot(current)
    get_collector().counter_add(TRUNCATION_COUNTER, float(epsilon))
    # Non-Phi start states were absorbed immediately with value 0 unless
    # they are Phi themselves (handled), so just clip.
    return np.clip(values, 0.0, 1.0)


def _require_zero_lower(interval: Interval, what: str) -> None:
    if interval.lower != 0.0:
        raise CheckError(
            f"{what} intervals with positive lower bounds are not supported "
            "(the paper restricts computation to [0, t] and [0, r]; see "
            "chapter 6, future work)"
        )


def until_probability(
    model: MRM,
    initial_state: int,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
    engine: str = "uniformization",
    truncation_probability: float = 1e-8,
    discretization_step: float = 1 / 32,
    strategy: str = "paths",
    truncation: str = "safe",
    depth_limit: Optional[int] = None,
    cache: Optional[EngineCache] = None,
    kernels: str = "auto",
):
    """P2 for one initial state: the quantitative value plus diagnostics.

    Returns the engine-specific result object
    (:class:`repro.check.paths_engine.PathEngineResult` or
    :class:`repro.check.discretization.DiscretizationResult`).

    Implements Theorems 4.1/4.3: ``(!Phi or Psi)``-states are made
    absorbing with zero rewards, then the joint distribution
    ``Pr{Y(t) <= r, X(t) |= Psi}`` is evaluated.  To evaluate many
    initial states of the same formula, use :func:`until_probabilities`,
    which runs the make-absorbing transform and the engine
    precomputation once for all of them.
    """
    transformed, psi, dead = _p2_setup(model, phi_states, psi_states,
                                       time_bound, reward_bound)
    if engine == "uniformization":
        context = prepare_path_engine(
            transformed,
            psi_states=psi,
            time_bound=time_bound.upper,
            reward_bound=reward_bound.upper,
            truncation_probability=truncation_probability,
            dead_states=dead,
            depth_limit=depth_limit,
            strategy=strategy,
            truncation=truncation,
            cache=cache,
            kernels=kernels,
        )
        return joint_distribution_from_context(context, initial_state)
    if engine == "discretization":
        return discretized_joint_distribution(
            transformed,
            initial_state=initial_state,
            psi_states=psi,
            time_bound=time_bound.upper,
            reward_bound=reward_bound.upper,
            step=discretization_step,
            cache=cache,
        )
    raise CheckError(f"unknown until engine {engine!r}")


def _p2_setup(model, phi_states, psi_states, time_bound, reward_bound):
    """Shared P2 validation plus the Theorem 4.1/4.3 transformation."""
    _require_zero_lower(time_bound, "time")
    _require_zero_lower(reward_bound, "reward")
    if math.isinf(time_bound.upper):
        raise CheckError(
            "reward-bounded but time-unbounded until is not supported"
        )
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}
    absorbing = (set(range(n)) - phi) | psi
    transformed = model.make_absorbing(absorbing)
    dead = set(range(n)) - phi - psi
    return transformed, psi, dead


def until_probabilities(
    model: MRM,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
    engine: str = "uniformization",
    truncation_probability: float = 1e-8,
    discretization_step: float = 1 / 32,
    strategy: str = "paths",
    truncation: str = "safe",
    depth_limit: Optional[int] = None,
    workers: int = 0,
    cache: Optional[EngineCache] = None,
    kernels: str = "auto",
):
    """Batched P2: ``P(s, Phi U^I_J Psi)`` for **all** states at once.

    One make-absorbing transform and one engine precomputation serve
    every initial state:

    * ``engine="uniformization"`` builds a single
      :class:`repro.check.paths_engine.PathEngineContext` (uniformized
      process, successor tables, Poisson tables, Omega memos) and runs
      one search per pending state against it;
    * ``engine="discretization"`` exploits the linearity of the forward
      recursion: a single backward (adjoint) sweep over
      ``(state, reward-cell)`` yields the value for every initial state
      (:func:`repro.check.discretization.discretized_joint_distributions`).

    ``Psi``-states get probability exactly 1 and ``(!Phi and !Psi)``
    states exactly 0; the engines run only on the remaining pending
    ``Phi``-states.

    ``workers > 1`` (clamped to the machine's core count) shards the
    pending states of the uniformization engine across the persistent
    shared-memory worker pool (see
    :func:`repro.check.paths_engine.joint_distribution_many`); the
    probabilities and error bounds are bitwise-identical to the serial
    run.  The discretization engine is a single batched sweep, so the
    parameter is accepted but has no effect there.  ``cache`` shares
    engine precomputation (Poisson tables, successor structures,
    discretization grids, Omega memos) across formulas and calls, and
    its :meth:`~repro.check.engine_cache.EngineCache.worker_pool` is the
    pool the fan-out runs on.

    Returns
    -------
    (values, error_bounds, statistics):
        Per-state probabilities, per-state truncation error bounds
        (zeros for the discretization engine) and a dict mapping each
        pending state to its engine-specific result object.
    """
    transformed, psi, dead = _p2_setup(model, phi_states, psi_states,
                                       time_bound, reward_bound)
    n = model.num_states
    phi = {int(s) for s in phi_states}
    values = np.zeros(n, dtype=float)
    error_bounds = np.zeros(n, dtype=float)
    statistics: Dict[int, object] = {}
    for state in psi:
        values[state] = 1.0
    pending = sorted(phi - psi)
    if not pending:
        return values, error_bounds, statistics

    obs = get_collector()
    if engine == "uniformization":
        context = prepare_path_engine(
            transformed,
            psi_states=psi,
            time_bound=time_bound.upper,
            reward_bound=reward_bound.upper,
            truncation_probability=truncation_probability,
            dead_states=dead,
            depth_limit=depth_limit,
            strategy=strategy,
            truncation=truncation,
            cache=cache,
            kernels=kernels,
        )
        with obs.span(
            "until.search",
            strategy=strategy,
            kernels=context.kernels,
            workers=int(workers),
            pending=len(pending),
        ):
            results = joint_distribution_many(
                context,
                pending,
                workers=workers,
                pool=cache.worker_pool() if cache is not None else None,
            )
        for state in pending:
            result = results[state]
            values[state] = result.probability
            error_bounds[state] = result.error_bound
            statistics[state] = result
        if obs.enabled:
            # Aggregate the per-state search statistics: they feed the
            # run report's counters and the truncation side of the error
            # budget (eq. 4.6's bound, worst pending state).
            obs.counter_add(
                "paths.generated",
                float(sum(r.paths_generated for r in results.values())),
            )
            obs.counter_add(
                "paths.stored",
                float(sum(r.paths_stored for r in results.values())),
            )
            obs.counter_add(
                "omega.evaluations",
                float(sum(r.omega_evaluations for r in results.values())),
            )
            worst = float(error_bounds[pending].max()) if pending else 0.0
            obs.counter_add(TRUNCATION_COUNTER, worst)
            obs.event(
                "until.paths",
                pending_states=len(pending),
                truncation_mass=worst,
                max_depth=max((r.max_depth for r in results.values()), default=0),
                uniformization_rate=context.rate,
                strategy=strategy,
            )
    elif engine == "discretization":
        with obs.span("until.discretize"):
            batched = discretized_joint_distributions(
                transformed,
                psi_states=psi,
                time_bound=time_bound.upper,
                reward_bound=reward_bound.upper,
                step=discretization_step,
                cache=cache,
            )
        for state in pending:
            result = batched.result_for(state)
            values[state] = result.probability
            statistics[state] = result
    else:
        raise CheckError(f"unknown until engine {engine!r}")
    return values, error_bounds, statistics


def satisfy_until(
    model: MRM,
    comparison: Comparison,
    bound: float,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: Interval,
    reward_bound: Interval,
    engine: str = "uniformization",
    truncation_probability: float = 1e-8,
    discretization_step: float = 1 / 32,
    strategy: str = "paths",
    truncation: str = "safe",
    solver: str = "gauss-seidel",
    workers: int = 0,
    cache: Optional[EngineCache] = None,
    kernels: str = "auto",
) -> UntilResult:
    """Algorithm 4.5 generalized over the three property classes.

    Computes ``P(s, Phi U^I_J Psi)`` for every state and compares against
    the bound.  ``Psi``-states trivially get probability 1 and
    ``(!Phi and !Psi)``-states 0 (for the supported ``[0, ...]``
    intervals), so the quantitative engines run only on the remaining
    ``Phi``-states — via the batched :func:`until_probabilities`, which
    runs the make-absorbing transform and the engine precomputation once
    for all of them instead of once per state.  Reward-unbounded
    formulas additionally support general time intervals ``[t1, t2]``
    (the paper's future-work case) via
    :func:`interval_until_probabilities`.
    """
    _require_zero_lower(reward_bound, "reward")
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}

    error_bounds = np.zeros(n, dtype=float)
    statistics: Dict[int, object] = {}

    obs = get_collector()
    if time_bound.is_unbounded and reward_bound.is_unbounded:
        with obs.span("until.linear-system"):
            values = unbounded_until_probabilities(model, phi, psi, solver=solver)
        engine_name = "linear-system"
    elif reward_bound.is_unbounded and time_bound.lower > 0.0:
        with obs.span("until.transient"):
            values = interval_until_probabilities(model, phi, psi, time_bound)
        engine_name = "uniformization-interval"
    elif reward_bound.is_unbounded:
        with obs.span("until.transient"):
            values = time_bounded_until_probabilities(
                model, phi, psi, time_bound=time_bound.upper
            )
        engine_name = "uniformization-transient"
    else:
        values, error_bounds, statistics = until_probabilities(
            model,
            phi_states=phi,
            psi_states=psi,
            time_bound=time_bound,
            reward_bound=reward_bound,
            engine=engine,
            truncation_probability=truncation_probability,
            discretization_step=discretization_step,
            strategy=strategy,
            truncation=truncation,
            workers=workers,
            cache=cache,
            kernels=kernels,
        )
        engine_name = (
            "paths-uniformization" if engine == "uniformization" else "discretization"
        )

    satisfying: FrozenSet[int] = frozenset(
        state for state in range(n) if comparison.holds(float(values[state]), bound)
    )
    return UntilResult(
        values=values,
        satisfying=satisfying,
        engine=engine_name,
        error_bounds=error_bounds,
        statistics=statistics,
    )
