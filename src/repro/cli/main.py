"""``mrmc-impulse`` — the command-line model checker.

Usage mirrors the paper's appendix::

    mrmc-impulse model.tra model.lab model.rewr model.rewi [u=1e-8 | d=0.03125] [NP]

or, with a guarded-command model description::

    mrmc-impulse model.mrm [u=1e-8 | d=0.03125] [NP] [-c NAME=VALUE ...]

* ``u=<w>`` selects uniformization with truncation probability ``w`` for
  reward-bounded until formulas; ``d=<step>`` selects discretization with
  factor ``step``.  The default is uniformization with ``w = 1e-8``
  (the appendix default).
* ``NP`` suppresses the computed probabilities; only satisfying states
  are printed.
* ``-c/--const NAME=VALUE`` overrides a ``const`` declaration of a
  ``.mrm`` model (repeatable).
* ``-j/--workers N`` fans the uniformization engine's per-initial-state
  searches out over ``N`` worker processes (clamped to the machine's
  core count; the workers form a persistent shared-memory pool reused
  across formulas, and results are identical to a serial run).
* ``--kernels {auto,numpy,numba,python}`` selects the compiled-kernel
  backend for the path engine's hot loops.  The default ``auto`` uses
  the numba-jitted kernels when the optional ``repro[speed]`` extra is
  installed and silently (modulo a ``kernels.fallback`` report event)
  runs the NumPy reference path otherwise; all backends are bitwise
  identical.
* ``--timeout SECONDS`` and ``--mem-budget BYTES`` (``K``/``M``/``G``
  suffixes accepted) bound each formula's evaluation; on a tripped
  budget the checker degrades through cheaper engine tiers instead of
  aborting, and the printed ``trust`` line says how the answer was
  produced (``exact``, ``degraded`` or ``partial``).  ``--no-degrade``
  turns the cascade off: a tripped budget then fails the formula.
* ``--verbose/-v`` prints a per-phase timing table, engine-cache
  activity, and the error budget of each formula after its result.
* ``--report FILE`` writes the structured run reports of all checked
  formulas to ``FILE`` as JSON (schema ``repro.run-report/3``).
* ``--trace FILE`` writes a Chrome trace-event JSON file covering every
  checked formula — the span tree of the ``Sat()`` recursion, worker
  shard spans, and instant events — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* ``--metrics FILE`` writes a Prometheus text-exposition snapshot of
  the same runs (phase timings, counters, error-budget gauges).

A ``report`` subcommand compares two saved report files::

    mrmc-impulse report diff OLD.json NEW.json

printing wall-clock, phase, error-budget and trust deltas for the
formulas the two runs share.

A ``lint`` subcommand checks sources without running the checker::

    mrmc-impulse lint [--format {text,json}] FILE...

``.mrm`` files run the full front-end pipeline (lex/parse with
multi-error recovery, semantic checks, compile, model lints); any
other file is read as CSRL formulas, one per line (``#`` comments and
blank lines skipped).  Text output uses the classic caret format
(``file:line:col: severity[CODE]: message`` plus a source excerpt);
``--format json`` emits the ``repro.diagnostics/1`` document described
in ``docs/diagnostics.md``.  Exit status is 1 when any *error* was
found (warnings alone exit 0), 2 for unreadable files.

``serve`` and ``client`` subcommands run the checker as a persistent
daemon (newline-delimited JSON-RPC over TCP or a Unix socket) and talk
to it::

    mrmc-impulse serve --socket /tmp/mrmc.sock --mem-ceiling 2G
    mrmc-impulse client --socket /tmp/mrmc.sock check model.mrm -f "P(>0.5) [a U[0,4][0,3] b]"

See :mod:`repro.server` and the "Running as a service" section of
``docs/api.md`` for the protocol, tenancy and coalescing semantics.

When a parse fails in the main checking pipeline, the same caret
diagnostics are printed to stderr after the one-line summary.

Formulas are read one per line, either from ``--formula/-f`` arguments
or from standard input.  Empty lines and lines starting with ``#`` are
skipped.  States in the output are 1-based, matching the file formats.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.check.checker import CheckOptions, ModelChecker
from repro.diag import (
    diagnostics_payload,
    lint_formula_source,
    lint_model_source,
    render_diagnostics,
)
from repro.exceptions import ReproError
from repro.io.bundle import load_mrm
from repro.lang.compiler import load_model
from repro.obs import (
    REPORT_SCHEMA,
    RunReport,
    chrome_trace,
    diff_reports,
    load_report_file,
    prometheus_exposition,
)

__all__ = ["main"]


def _build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mrmc-impulse",
        description="CSRL model checker for Markov reward models with impulse rewards",
    )
    parser.add_argument(
        "tra", help="transition file (.tra) or guarded-command model (.mrm)"
    )
    parser.add_argument("lab", nargs="?", default=None, help="labeling file (.lab)")
    parser.add_argument("rewr", nargs="?", default=None, help="state reward file (.rewr)")
    parser.add_argument("rewi", nargs="?", default=None, help="impulse reward file (.rewi)")
    parser.add_argument(
        "method",
        nargs="?",
        default=None,
        help="until engine: u=<truncation probability> or d=<discretization factor>",
    )
    parser.add_argument(
        "np_flag",
        nargs="?",
        default=None,
        metavar="NP",
        help="suppress probability output",
    )
    parser.add_argument(
        "--formula",
        "-f",
        action="append",
        default=[],
        help="CSRL formula to check (repeatable); otherwise read from stdin",
    )
    parser.add_argument(
        "--const",
        "-c",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a const declaration of a .mrm model (repeatable)",
    )
    parser.add_argument(
        "--workers",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the uniformization engine's "
        "per-initial-state fan-out (default: serial; clamped to the "
        "machine's core count)",
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "numpy", "numba", "python"),
        default=None,
        help="compiled-kernel backend for the engine hot loops "
        "(default: auto — numba when installed, else the NumPy "
        "reference path; all backends are bitwise identical)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per formula; on exhaustion the checker "
        "degrades to cheaper engines instead of aborting",
    )
    parser.add_argument(
        "--mem-budget",
        default=None,
        metavar="BYTES",
        help="memory budget per formula (K/M/G suffixes accepted, "
        "e.g. 512M); enforced at the engines' checkpoints",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail a formula when a budget trips instead of stepping "
        "down through cheaper engine tiers",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print per-phase timings, cache activity and the error "
        "budget after each formula",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write structured run reports for all formulas to FILE as JSON",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON file (Perfetto-loadable) "
        "covering all checked formulas",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a Prometheus text-exposition metrics snapshot "
        "covering all checked formulas",
    )
    return parser


def _report_main(argv: List[str]) -> int:
    """The ``report`` subcommand (currently: ``diff OLD NEW``)."""
    if len(argv) != 3 or argv[0] != "diff":
        print("usage: mrmc-impulse report diff OLD.json NEW.json", file=sys.stderr)
        return 2
    try:
        old_reports = load_report_file(argv[1])
        new_reports = load_report_file(argv[2])
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sys.stdout.write(diff_reports(old_reports, new_reports))
    return 0


def _rebase_line(diagnostic, line_offset: int):
    """Shift a diagnostic's span down by ``line_offset`` lines.

    Formula files are linted one line at a time, so the per-line spans
    (always line 1) must be re-anchored to the file line.
    """
    if diagnostic.span is None or line_offset == 0:
        return diagnostic
    span = dataclasses.replace(
        diagnostic.span,
        line=diagnostic.span.line + line_offset,
        end_line=diagnostic.span.end_line + line_offset,
    )
    return dataclasses.replace(diagnostic, span=span)


def _lint_file(path: str):
    """Diagnostics for one file (source text, diagnostic list)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    if path.endswith(".mrm"):
        return source, lint_model_source(source)
    diagnostics = []
    for index, line in enumerate(source.splitlines()):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        for diagnostic in lint_formula_source(line.rstrip()):
            diagnostics.append(_rebase_line(diagnostic, index))
    return source, diagnostics


def _lint_main(argv: List[str]) -> int:
    """The ``lint`` subcommand: batch front-end checks, no model run."""
    parser = argparse.ArgumentParser(
        prog="mrmc-impulse lint",
        description="lint .mrm models and CSRL formula files without "
        "running the checker",
    )
    parser.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help=".mrm model, or a text file of CSRL formulas (one per line)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text with caret excerpts)",
    )
    args = parser.parse_args(argv)
    per_file = []
    sources = {}
    for path in args.files:
        try:
            source, diagnostics = _lint_file(path)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        sources[path] = source
        per_file.append((path, diagnostics))
    payload = diagnostics_payload(per_file)
    if args.format == "json":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for path, diagnostics in per_file:
            if diagnostics:
                print(
                    render_diagnostics(
                        diagnostics, source=sources[path], filename=path
                    )
                )
        summary = payload["summary"]
        print(
            f"{summary['files']} file(s): "
            f"{summary['errors']} error(s), {summary['warnings']} warning(s)"
        )
    return 1 if payload["summary"]["errors"] else 0


def _print_error_diagnostics(error: BaseException, source: Optional[str]) -> None:
    """Caret excerpts for a raised ParseError, when it carries any."""
    diagnostics = getattr(error, "diagnostics", ())
    if diagnostics:
        print(render_diagnostics(diagnostics, source=source), file=sys.stderr)


def _print_report(report: RunReport) -> None:
    """Render one run report as the --verbose per-phase table."""
    print(f"  wall time: {report.wall_seconds * 1e3:.3f} ms")
    if report.phases:
        width = max(len(p.name) for p in report.phases)
        print("  phase timings:")
        for timing in report.phases:
            print(
                f"    {timing.name:<{width}}  "
                f"{timing.seconds * 1e3:10.3f} ms  x{timing.count}"
            )
    cache = report.cache
    print(
        "  engine cache: "
        f"{cache.get('hits', 0)} hits, {cache.get('misses', 0)} misses, "
        f"{cache.get('evictions', 0)} evictions, "
        f"{cache.get('entries', 0)} entries"
    )
    budget = report.error_budget
    print(
        "  error budget: "
        f"truncation {budget.truncation_mass:.3g} + "
        f"discretization {budget.discretization_defect:.3g} + "
        f"solver residual {budget.solver_residual:.3g} "
        f"= {budget.total:.3g}"
    )
    if report.degradations:
        print("  degradations:")
        for record in report.degradations:
            target = record.get("to") or "partial result"
            print(
                f"    [{record.get('kind', 'engine')}] "
                f"{record.get('from')} -> {target}: {record.get('reason')}"
            )


_SIZE_SUFFIXES = {"K": 1024, "M": 1024**2, "G": 1024**3}


def _parse_size(text: str) -> int:
    """A byte count like ``"2048"``, ``"512M"`` or ``"2G"``."""
    cleaned = text.strip().upper()
    factor = 1
    if cleaned and cleaned[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError as error:
        raise ReproError(
            f"bad size {text!r}: expected BYTES with optional K/M/G suffix"
        ) from error
    if value <= 0:
        raise ReproError(f"bad size {text!r}: must be positive")
    return int(value * factor)


def _parse_method(argument: Optional[str]) -> CheckOptions:
    if argument is None:
        return CheckOptions()
    text = argument.strip()
    if "=" not in text:
        raise ReproError(
            f"bad engine argument {argument!r}: expected u=<w> or d=<step>"
        )
    key, _, value = text.partition("=")
    key = key.strip().lower()
    try:
        number = float(value)
    except ValueError as error:
        raise ReproError(f"bad engine parameter {value!r}: {error}") from error
    if key == "u":
        return CheckOptions(until_engine="uniformization", truncation_probability=number)
    if key == "d":
        return CheckOptions(until_engine="discretization", discretization_step=number)
    raise ReproError(f"unknown engine {key!r}: expected 'u' or 'd'")


def _iter_formulas(args: argparse.Namespace, declared):
    """Formulas to check: explicit flags win; then a .mrm model's own
    ``formula`` declarations; stdin as the last resort."""
    if args.formula:
        for formula in args.formula:
            yield None, formula
        return
    if declared:
        for name, formula in declared.items():
            yield name, formula
        return
    for line in sys.stdin:
        text = line.strip()
        if text and not text.startswith("#"):
            yield None, text


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.server.daemon import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from repro.server.client import client_main

        return client_main(argv[1:])
    parser = _build_argument_parser()
    args = parser.parse_args(argv)

    # A .mrm language model takes a single positional; shift the rest
    # into the method/NP slots.
    positionals = [args.lab, args.rewr, args.rewi, args.method, args.np_flag]
    if args.tra.endswith(".mrm"):
        tail = [p for p in positionals if p is not None]
        if len(tail) > 2:
            print(
                "error: a .mrm model takes at most engine and NP arguments",
                file=sys.stderr,
            )
            return 2
        method_slot = tail[0] if tail else None
        np_slot = tail[1] if len(tail) > 1 else None
    else:
        method_slot = args.method
        np_slot = args.np_flag

    # The positional tail is flexible: "NP" may appear in the method slot.
    method_argument = method_slot
    print_probabilities = True
    for candidate in (method_slot, np_slot):
        if candidate is not None and candidate.upper() == "NP":
            print_probabilities = False
            if candidate is method_slot:
                method_argument = None

    try:
        options = _parse_method(method_argument)
        if args.workers:
            if args.workers < 0:
                raise ReproError(f"bad --workers {args.workers}: must be >= 0")
            options = dataclasses.replace(options, workers=args.workers)
        if args.kernels is not None:
            options = dataclasses.replace(options, kernels=args.kernels)
        if args.timeout is not None:
            if args.timeout <= 0:
                raise ReproError(f"bad --timeout {args.timeout}: must be > 0")
            options = dataclasses.replace(options, deadline_s=args.timeout)
        if args.mem_budget is not None:
            options = dataclasses.replace(
                options, mem_budget_bytes=_parse_size(args.mem_budget)
            )
        if args.no_degrade:
            options = dataclasses.replace(options, degrade=False)
        if args.tra.endswith(".mrm"):
            overrides = {}
            for item in args.const:
                name, separator, value = item.partition("=")
                if not separator:
                    raise ReproError(
                        f"bad --const {item!r}: expected NAME=VALUE"
                    )
                overrides[name.strip()] = float(value)
            compiled = load_model(args.tra, constants=overrides or None)
            model = compiled.mrm
            declared_formulas = compiled.formulas
        else:
            if args.lab is None:
                raise ReproError("a .tra model also needs a .lab file")
            model = load_mrm(args.tra, args.lab, args.rewr, args.rewi)
            declared_formulas = None
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        if args.tra.endswith(".mrm"):
            try:
                with open(args.tra, encoding="utf-8") as handle:
                    model_source = handle.read()
            except OSError:
                model_source = None
            _print_error_diagnostics(error, model_source)
        return 2

    checker = ModelChecker(model, options)
    status = 0
    reports = []
    for name, formula in _iter_formulas(args, declared_formulas):
        try:
            result = checker.check(formula)
        except ReproError as error:
            print(f"error: {formula}: {error}", file=sys.stderr)
            _print_error_diagnostics(error, formula)
            status = 1
            continue
        states = sorted(result.states)
        rendered = ", ".join(str(s + 1) for s in states) if states else "(none)"
        title = f"formula {name!r}: " if name else "formula: "
        print(f"{title}{result.formula}")
        print(f"satisfying states: {rendered}")
        if options.guarded or result.trust != "exact":
            print(f"trust: {result.trust}")
        if print_probabilities and result.probabilities is not None:
            for state, value in enumerate(result.probabilities):
                print(f"  state {state + 1}: {value:.12g}")
        if result.report is not None:
            reports.append(result.report)
            if args.verbose:
                _print_report(result.report)
    if args.report is not None:
        payload = {
            "schema": REPORT_SCHEMA,
            "reports": [report.to_dict() for report in reports],
        }
        try:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return 2
    if args.trace is not None:
        try:
            with open(args.trace, "w", encoding="utf-8") as handle:
                json.dump(chrome_trace(reports), handle)
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write trace: {error}", file=sys.stderr)
            return 2
    if args.metrics is not None:
        try:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(prometheus_exposition(reports))
        except OSError as error:
            print(f"error: cannot write metrics: {error}", file=sys.stderr)
            return 2
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
