"""Command-line interface mirroring the appendix usage of the paper's tool."""

from repro.cli.main import main

__all__ = ["main"]
