"""Monte-Carlo simulation of Markov reward models.

The numerical engines of :mod:`repro.check` are exact up to truncation
and discretization error; this module provides the *independent* oracle
the test suite uses to cross-validate them: a discrete-event simulator
that samples timed paths of an MRM according to the race semantics of
Section 2.4 (exponential sojourns, jump probabilities ``R[s,s']/E(s)``)
and accumulates state and impulse rewards along the way.

Estimators return the sample mean together with a normal-approximation
confidence half-width so assertions can be made statistically sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Callable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.mrm.model import MRM
from repro.mrm.paths import TimedPath

__all__ = [
    "MRMSimulator",
    "EstimateResult",
    "estimate_joint_distribution",
    "estimate_until_probability",
]


@dataclass(frozen=True)
class EstimateResult:
    """A Monte-Carlo estimate with its precision.

    Attributes
    ----------
    estimate:
        The sample mean.
    half_width:
        Half-width of the (approximately) 99% confidence interval.
    samples:
        Number of simulated paths.
    """

    estimate: float
    half_width: float
    samples: int

    def contains(self, value: float) -> bool:
        """Whether the confidence interval covers ``value``."""
        return abs(value - self.estimate) <= self.half_width


class MRMSimulator:
    """Samples timed trajectories of an MRM.

    Parameters
    ----------
    model:
        The MRM to simulate (used as-is; apply
        :meth:`repro.mrm.MRM.make_absorbing` beforehand to simulate a
        transformed model).
    seed:
        Seed for the underlying ``numpy`` generator; simulations are
        reproducible given the seed.
    """

    def __init__(self, model: MRM, seed: Optional[int] = None) -> None:
        self._model = model
        self._rng = np.random.default_rng(seed)
        # Pre-extract per-state jump tables.
        n = model.num_states
        rates = model.rates
        self._exit = np.array([model.exit_rate(s) for s in range(n)])
        self._targets: List[np.ndarray] = []
        self._cumulative: List[np.ndarray] = []
        for state in range(n):
            start, stop = rates.indptr[state], rates.indptr[state + 1]
            targets = rates.indices[start:stop].astype(np.int64)
            weights = rates.data[start:stop].astype(float)
            self._targets.append(targets)
            total = weights.sum()
            if total > 0:
                cumulative = np.cumsum(weights / total)
                cumulative[-1] = 1.0  # guard against rounding
            else:
                cumulative = weights
            self._cumulative.append(cumulative)

    @property
    def model(self) -> MRM:
        return self._model

    def _draw_successor(self, state: int) -> int:
        """Sample the jump target by inverse transform over the
        cumulative jump distribution (much faster than ``rng.choice``)."""
        position = np.searchsorted(self._cumulative[state], self._rng.random())
        return int(self._targets[state][position])

    def sample_run(
        self, initial_state: int, horizon: float
    ) -> Tuple[int, float]:
        """One trajectory up to ``horizon``.

        Returns
        -------
        (state, reward):
            The state occupied at the horizon and the reward ``y(t)``
            accumulated by then (state rewards plus impulse rewards of
            the jumps strictly before the horizon).
        """
        if horizon < 0:
            raise ModelError("horizon must be non-negative")
        model = self._model
        state = int(initial_state)
        if not 0 <= state < model.num_states:
            raise ModelError(f"initial state {state} out of range")
        clock = 0.0
        reward = 0.0
        rng = self._rng
        while True:
            exit_rate = self._exit[state]
            if exit_rate == 0.0:
                reward += model.state_reward(state) * (horizon - clock)
                return state, reward
            sojourn = rng.exponential(1.0 / exit_rate)
            if clock + sojourn >= horizon:
                reward += model.state_reward(state) * (horizon - clock)
                return state, reward
            reward += model.state_reward(state) * sojourn
            clock += sojourn
            successor = self._draw_successor(state)
            reward += model.impulse_reward(state, successor)
            state = successor

    def sample_timed_path(
        self, initial_state: int, horizon: float, max_transitions: int = 100_000
    ) -> TimedPath:
        """A full :class:`TimedPath` prefix covering ``[0, horizon]``.

        The path records every visited state and sojourn; the last
        sojourn is truncated at the horizon.  Useful for inspecting and
        re-evaluating the path functionals (``sigma@t``, ``y_sigma``).
        """
        model = self._model
        state = int(initial_state)
        states = [state]
        sojourns: List[float] = []
        clock = 0.0
        rng = self._rng
        for _ in range(max_transitions):
            exit_rate = self._exit[state]
            if exit_rate == 0.0:
                break
            sojourn = float(rng.exponential(1.0 / exit_rate))
            if clock + sojourn >= horizon:
                break
            successor = self._draw_successor(state)
            sojourns.append(sojourn)
            states.append(successor)
            state = successor
            clock += sojourn
        else:
            raise ModelError(
                f"trajectory exceeded {max_transitions} transitions before "
                f"the horizon {horizon}"
            )
        # Transitions were sampled from the model itself.
        return TimedPath(model, states, sojourns, validate_transitions=False)

    def estimate(
        self,
        initial_state: int,
        horizon: float,
        predicate: Callable[[int, float], bool],
        samples: int = 10_000,
    ) -> EstimateResult:
        """Estimate ``Pr{predicate(X(t), Y(t))}`` by simulation."""
        if samples < 1:
            raise ModelError("need at least one sample")
        hits = 0
        for _ in range(samples):
            state, reward = self.sample_run(initial_state, horizon)
            if predicate(state, reward):
                hits += 1
        mean = hits / samples
        # Normal approximation, z = 2.576 for ~99%.
        half_width = 2.576 * math.sqrt(max(mean * (1.0 - mean), 1e-12) / samples)
        return EstimateResult(estimate=mean, half_width=half_width, samples=samples)


def estimate_joint_distribution(
    model: MRM,
    initial_state: int,
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    samples: int = 10_000,
    seed: Optional[int] = None,
) -> EstimateResult:
    """Monte-Carlo estimate of ``Pr{Y(t) <= r, X(t) in psi_states}``.

    The direct statistical counterpart of
    :func:`repro.check.paths_engine.joint_distribution`.
    """
    psi = frozenset(int(s) for s in psi_states)
    simulator = MRMSimulator(model, seed=seed)
    return simulator.estimate(
        initial_state,
        time_bound,
        lambda state, reward: state in psi and reward <= reward_bound,
        samples=samples,
    )


def estimate_until_probability(
    model: MRM,
    initial_state: int,
    phi_states: AbstractSet[int],
    psi_states: AbstractSet[int],
    time_bound: float,
    reward_bound: float,
    samples: int = 10_000,
    seed: Optional[int] = None,
) -> EstimateResult:
    """Monte-Carlo estimate of ``P(s, Phi U^{[0,t]}_{[0,r]} Psi)``.

    Applies Theorems 4.1/4.3 (make ``(!Phi or Psi)``-states absorbing)
    and then estimates the joint distribution — the same reduction the
    numerical engines use, so any bug in the reduction itself would not
    be caught here; the reduction is validated separately by the
    semantics-level tests.
    """
    n = model.num_states
    phi = {int(s) for s in phi_states}
    psi = {int(s) for s in psi_states}
    transformed = model.make_absorbing((set(range(n)) - phi) | psi)
    return estimate_joint_distribution(
        transformed,
        initial_state,
        psi,
        time_bound,
        reward_bound,
        samples=samples,
        seed=seed,
    )
