"""Discrete-event simulation of MRMs (statistical cross-validation)."""

from repro.simulation.simulator import (
    EstimateResult,
    MRMSimulator,
    estimate_joint_distribution,
    estimate_until_probability,
)

__all__ = [
    "MRMSimulator",
    "EstimateResult",
    "estimate_joint_distribution",
    "estimate_until_probability",
]
