"""Performability of the wireless-phone model (the Table 5.1 workload).

Treats the accumulated energy as the performability variable Y(t) of
Definition 3.4 and computes:

* the full CSRL check of the Table 5.1 formula with both engines;
* the performability CDF Perf([0, r]) = Pr{Y(24h) <= r} over a sweep of
  budgets r — the curve an energy-provisioning engineer would read off;
* a steady-state property of the untransformed phone.

Run:  python examples/phone_performability.py
"""

from repro import CheckOptions, ModelChecker, accumulated_reward_cdf
from repro.models import build_phone_model
from repro.models.phone import PHONE_FORMULA


def table_5_1_check() -> None:
    model = build_phone_model()
    print(f"checking  {PHONE_FORMULA}")
    for engine, options in (
        ("uniformization", CheckOptions(truncation_probability=1e-10, path_strategy="merged")),
        ("discretization", CheckOptions(until_engine="discretization", discretization_step=1 / 32)),
    ):
        checker = ModelChecker(model, options)
        result = checker.check(PHONE_FORMULA)
        value = result.probability_of(0)
        verdict = "SAT" if 0 in result else "unsat"
        print(f"  {engine:>15}: P(Call_Idle) = {value:.6f}  -> {verdict}")
    print("  ([Hav02] reference for the original model: 0.49540399)")
    print()


def performability_curve() -> None:
    model = build_phone_model()
    budgets = [60.0, 90.0, 120.0, 150.0, 180.0, 210.0]
    cdf = accumulated_reward_cdf(
        model, 0, 8.0, budgets, truncation_probability=1e-7
    )
    print("Performability: Perf([0, r]) = Pr{Y(8) <= r} from Call_Idle")
    for budget, probability in zip(budgets, cdf):
        bar = "#" * int(probability * 40)
        print(f"  r = {budget:>5.0f}  {probability:>8.5f}  {bar}")
    print()


def steady_state_property() -> None:
    model = build_phone_model()
    checker = ModelChecker(model)
    result = checker.check("S(>0.5) Doze")
    value = result.probability_of(0)
    print(f"long-run dozing fraction: {value:.4f}")
    print(f"  S(>0.5) Doze satisfied in: {sorted(result.states) or 'no state'}")


if __name__ == "__main__":
    table_5_1_check()
    performability_curve()
    steady_state_property()
