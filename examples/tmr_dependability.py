"""Dependability analysis of the triple-modular redundant system.

Reproduces the spirit of the paper's Chapter 5 study interactively:

* the probability of system failure within a mission time, under a
  resource (reward) budget — the Table 5.3/5.4 formula — computed with
  BOTH numerical engines and cross-validated;
* the sensitivity of the repair story to the number of modules — the
  Table 5.5 formula on a smaller sweep;
* the effect of the truncation probability w on accuracy and work.

Run:  python examples/tmr_dependability.py
"""

from repro.check.until import until_probability
from repro.models import build_tmr
from repro.numerics.intervals import Interval


def failure_probability_study() -> None:
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    print("TMR(3): P(Sup U[0,t][0,3000] failed) from the all-up state")
    print(f"{'t':>5}  {'uniformization':>15}  {'discretization':>15}  {'error bound':>12}")
    for t in (50, 100, 200):
        uniform = until_probability(
            model, 3, sup, failed, Interval.upto(t), Interval.upto(3000),
            truncation_probability=1e-11,
        )
        disc = until_probability(
            model, 3, sup, failed, Interval.upto(t), Interval.upto(3000),
            engine="discretization", discretization_step=0.25,
        )
        print(
            f"{t:>5}  {uniform.probability:>15.9f}  {disc.probability:>15.9f}"
            f"  {uniform.error_bound:>12.2e}"
        )
    print()


def repair_capacity_study() -> None:
    from repro.models.tmr import TMR11_REWARDS

    model = build_tmr(11, rewards=TMR11_REWARDS)
    allup = model.states_with_label("allUp")
    everything = set(range(model.num_states))
    print("TMR(11): P(tt U[0,100][0,2000] allUp) per starting state")
    print(f"{'working':>8}  {'P':>10}  {'paths':>9}")
    for n in (0, 3, 6, 9, 10):
        result = until_probability(
            model, n, everything, allup, Interval.upto(100), Interval.upto(2000),
            truncation_probability=1e-8,
        )
        print(f"{n:>8}  {result.probability:>10.6f}  {result.paths_generated:>9}")
    print()


def truncation_study() -> None:
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    print("Truncation probability w vs accuracy/work (t = 300)")
    print(f"{'w':>8}  {'P':>12}  {'error bound':>12}  {'paths':>9}")
    for w in (1e-6, 1e-8, 1e-10, 1e-12):
        result = until_probability(
            model, 3, sup, failed, Interval.upto(300), Interval.upto(3000),
            truncation_probability=w,
        )
        print(
            f"{w:>8.0e}  {result.probability:>12.9f}"
            f"  {result.error_bound:>12.2e}  {result.paths_generated:>9}"
        )


if __name__ == "__main__":
    failure_probability_study()
    repair_capacity_study()
    truncation_study()
