"""Quickstart: model-check the WaveLAN modem MRM of the paper.

Builds the five-mode energy model of Examples 2.4/3.1, checks the three
CSRL properties of Example 3.3, and prints the quantitative values next
to the qualitative verdicts.

Run:  python examples/quickstart.py
"""

from repro import CheckOptions, ModelChecker
from repro.models import build_wavelan_modem


def main() -> None:
    model = build_wavelan_modem()
    checker = ModelChecker(model, CheckOptions(truncation_probability=1e-10))

    print("WaveLAN modem MRM")
    print(f"  states: {model.state_names}")
    print(f"  atomic propositions: {sorted(model.atomic_propositions)}")
    print()

    # Property 1 (Example 3.3): with a 50 J budget (5e4 mJ here; rewards
    # are in mW so reward = energy in mW*h), is the modem busy within 10
    # minutes with probability > 0.5?  (time unit: hours)
    formula_busy = "P(>0.5) [TT U[0,0.1667][0,50000] busy]"
    result = checker.check(formula_busy)
    print(f"checking  {result.formula}")
    for state, name in enumerate(model.state_names):
        verdict = "SAT  " if state in result else "unsat"
        print(f"  {verdict}  {name:<8}  P = {result.probability_of(state):.6f}")
    print()

    # Property 2 (Example 3.3): from busy or idle, reach sleep within
    # 10 seconds (~0.00278 h) spending at most 50 J.
    formula_sleep = "P(>0.8) [(busy || idle) U[0,0.00278][0,50000] sleep]"
    result = checker.check(formula_sleep)
    print(f"checking  {result.formula}")
    print(f"  satisfying states: {sorted(result.states) or 'none'}")
    print()

    # Property 3: the worked until value of Example 3.6.
    values = checker.path_probabilities("idle U[0,2][0,2000] busy")
    print("P(idle U[0,2][0,2000] busy) per state (Example 3.6: idle ~ 0.15789):")
    for state, name in enumerate(model.state_names):
        print(f"  {name:<8}  {values[state]:.6f}")


if __name__ == "__main__":
    main()
