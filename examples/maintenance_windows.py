"""Maintenance-window analysis with the interval-until extension.

The paper's algorithms support time bounds of the form [0, t]; its
Chapter 6 lists general intervals as future work.  This library
implements them for reward-unbounded until (two-phase uniformization),
which enables *window* questions: not "does the system fail within t"
but "does the failure land inside a given maintenance window [t1, t2]"
— the case where a failure would be caught immediately.

The study also uses the expected-reward extension to budget the
resources consumed up to the window.

Run:  python examples/maintenance_windows.py
"""

import numpy as np

from repro.check.until import (
    interval_until_probabilities,
    time_bounded_until_probabilities,
)
from repro.models import build_tmr
from repro.performability.expected import (
    expected_accumulated_reward,
    long_run_reward_rate,
)


def failure_window_study() -> None:
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    start = 3  # all modules working

    print("TMR(3): probability the first failure lands in a window")
    print(f"{'window (h)':>14}  {'P(failure in window)':>21}")
    windows = [(0, 100), (100, 200), (200, 300), (300, 400), (0, 400)]
    total = 0.0
    for t1, t2 in windows[:-1]:
        from repro.numerics.intervals import Interval

        values = interval_until_probabilities(
            model, sup, failed, Interval(float(t1), float(t2))
        )
        print(f"{f'[{t1},{t2}]':>14}  {values[start]:>21.8f}")
        total += values[start]
    from repro.numerics.intervals import Interval

    full = interval_until_probabilities(model, sup, failed, Interval(0.0, 400.0))
    print(f"{'[0,400]':>14}  {full[start]:>21.8f}")
    # Windows of the first-passage event partition the horizon: the sum
    # over disjoint windows equals the full-horizon probability, because
    # once failed, the transformed process never returns.
    print(f"{'sum of windows':>14}  {total:>21.8f}")
    print()


def staffing_question() -> None:
    """Would an unstaffed night shift (hours 0-12) be risky?"""
    model = build_tmr(3)
    sup = model.states_with_label("Sup")
    failed = model.states_with_label("failed")
    from repro.numerics.intervals import Interval

    night = interval_until_probabilities(model, sup, failed, Interval(0.0, 12.0))
    day = interval_until_probabilities(model, sup, failed, Interval(12.0, 24.0))
    print("failure probability per 12 h shift (from all-up):")
    print(f"  night [0,12):  {night[3]:.3e}")
    print(f"  day  [12,24):  {day[3]:.3e}")
    print()


def resource_budgeting() -> None:
    model = build_tmr(3)
    initial = np.zeros(model.num_states)
    initial[3] = 1.0
    print("expected resources consumed (state rewards + repair impulses):")
    for horizon in (100.0, 200.0, 400.0):
        expected = expected_accumulated_reward(model, initial, horizon)
        print(f"  E[Y({horizon:g})] = {expected:10.2f}")
    rate = long_run_reward_rate(model, initial)
    print(f"  long-run rate: {rate:.4f} per hour")
    print("  (the Table 5.3 bound r = 3000 is hit near t ~"
          f" {3000 / rate:.0f} h on average, matching the saturation"
          " of Table 5.4)")


if __name__ == "__main__":
    failure_window_study()
    staffing_question()
    resource_budgeting()
