"""Capacity planning for a bounded queue with loss penalties.

A second application domain for the library: an M/M/1/K system whose
reward structure prices holding cost per queued job and an *impulse*
penalty per arrival rejected at the full queue — exactly the kind of
instantaneous cost the paper's impulse rewards were introduced for.

The study answers three capacity-planning questions:

1. long-run operating cost per hour as a function of the capacity K;
2. the probability of hitting the full queue within a shift while the
   operating budget lasts (a reward-bounded until);
3. a statistical sanity check of the numerical answer via simulation.

Run:  python examples/queue_capacity_planning.py
"""

import numpy as np

from repro import CheckOptions, ModelChecker, MRMSimulator
from repro.models import build_mm1k_queue
from repro.performability.expected import long_run_reward_rate


def cost_vs_capacity() -> None:
    print("Long-run cost rate vs capacity (arrival 0.8/h, service 1.0/h)")
    print(f"{'K':>3}  {'cost rate':>10}  {'holding':>8}  {'loss':>8}")
    for capacity in (2, 4, 6, 8, 12):
        total = long_run_reward_rate(
            build_mm1k_queue(capacity=capacity)
        )
        holding_only = long_run_reward_rate(
            build_mm1k_queue(capacity=capacity, loss_penalty=0.0)
        )
        print(
            f"{capacity:>3}  {total:>10.4f}  {holding_only:>8.4f}"
            f"  {total - holding_only:>8.4f}"
        )
    print()


def budget_bounded_saturation() -> None:
    model = build_mm1k_queue(capacity=4, arrival_rate=0.9)
    # The queue's uniformized chain is dense (every step carries ~0.5
    # probability), so the per-path DFS explodes; the merged dynamic
    # programming over (state, k, j) classes is the practical choice.
    checker = ModelChecker(model, CheckOptions(path_strategy="merged"))
    print("P(TT U[0,t][0,budget] full) from the empty queue")
    print(f"{'t':>4}  {'budget':>7}  {'P':>9}")
    for t, budget in ((4.0, 6.0), (4.0, 12.0), (8.0, 12.0), (8.0, 24.0)):
        formula = f"P(>0) [TT U[0,{t:g}][0,{budget:g}] full]"
        result = checker.check(formula)
        print(f"{t:>4g}  {budget:>7g}  {result.probability_of(0):>9.6f}")
    print()


def simulation_check() -> None:
    model = build_mm1k_queue(capacity=4, arrival_rate=0.9)
    checker = ModelChecker(model, CheckOptions(path_strategy="merged"))
    exact = checker.path_probabilities("TT U[0,4][0,12] full")[0]
    transformed = model.make_absorbing(model.states_with_label("full"))
    simulator = MRMSimulator(transformed, seed=101)
    full_states = model.states_with_label("full")
    estimate = simulator.estimate(
        0,
        4.0,
        lambda state, reward: state in full_states and reward <= 12.0,
        samples=20_000,
    )
    print("numerical vs simulated (20k runs):")
    print(f"  exact      {exact:.5f}")
    print(
        f"  simulated  {estimate.estimate:.5f} +- {estimate.half_width:.5f}"
        f"  ({'consistent' if estimate.contains(exact) else 'INCONSISTENT'})"
    )


if __name__ == "__main__":
    cost_vs_capacity()
    budget_bounded_saturation()
    simulation_check()
