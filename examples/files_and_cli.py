"""The tool workflow of the paper's appendix: files in, verdicts out.

Writes the WaveLAN MRM as a ``.tra/.lab/.rewr/.rewi`` bundle, reloads
it, checks a formula through the library API, and finally drives the
``mrmc-impulse`` CLI entry point in-process on the same files —
mirroring::

    java checker/MRMChecker *.tra *.lab *.rewr *.rewi [{u|d}=f] [NP]

Run:  python examples/files_and_cli.py
"""

import tempfile

from repro import ModelChecker, load_mrm, save_mrm
from repro.cli.main import main as mrmc_impulse
from repro.models import build_wavelan_modem


def run() -> None:
    model = build_wavelan_modem()
    with tempfile.TemporaryDirectory() as directory:
        paths = save_mrm(model, directory, "wavelan")
        print("wrote model bundle:")
        for kind, path in paths.items():
            print(f"  .{kind:<5} {path}")
        print()

        with open(paths["tra"]) as handle:
            print("head of the .tra file:")
            for line in list(handle)[:5]:
                print("  " + line.rstrip())
        print()

        reloaded = load_mrm(paths["tra"], paths["lab"], paths["rewr"], paths["rewi"])
        checker = ModelChecker(reloaded)
        result = checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        print(f"library check: {result.formula}")
        print(f"  satisfying states (0-based): {sorted(result.states)}")
        print()

        print("CLI run (uniformization, w = 1e-10):")
        status = mrmc_impulse(
            [
                paths["tra"],
                paths["lab"],
                paths["rewr"],
                paths["rewi"],
                "u=1e-10",
                "--formula",
                "P(>0.1) [idle U[0,2][0,2000] busy]",
                "--formula",
                "S(>=0) busy",
            ]
        )
        print(f"CLI exit status: {status}")


if __name__ == "__main__":
    run()
