"""Regenerate the paper's tables without pytest.

Uses the :mod:`repro.experiments` sweeps at reduced ranges so the whole
script finishes in well under a minute; pass ``--full`` for the paper's
exact parameters (several minutes, matching ``benchmarks/``).

Run:  python examples/reproduce_tables.py [--full]
"""

import sys

from repro.experiments import table_5_1, table_5_3, table_5_5, table_5_8


def main() -> None:
    full = "--full" in sys.argv[1:]

    print("Table 5.1 — discretization on the phone workload")
    steps = (1 / 16, 1 / 32, 1 / 64) if full else (1 / 8, 1 / 16)
    for row in table_5_1(steps=steps):
        print(f"  d = 1/{int(1 / row.step):<3}  P = {row.probability:.10f}"
              f"  ({row.seconds:.2f}s)")
    print("  (reference ~0.49507; [Hav02]: 0.49540399)\n")

    print("Table 5.3 — constant truncation probability")
    times = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500) if full else (50, 150, 250)
    w = 1e-11 if full else 1e-9
    for row in table_5_3(times=times, truncation_probability=w):
        print(f"  t = {row.time_bound:<4g}  P = {row.probability:.9f}"
              f"  E = {row.error_bound:.2e}  paths = {row.paths_generated:<8}"
              f"  ({row.seconds:.2f}s)")
    print()

    print("Table 5.5 — reaching allUp on the 11-module system")
    starts = tuple(range(11)) if full else (0, 5, 10)
    for row in table_5_5(starts=starts):
        print(f"  n = {row.working_modules:<2}  P = {row.probability:.6f}"
              f"  E = {row.error_bound:.2e}  ({row.seconds:.2f}s)")
    print()

    print("Table 5.8 — discretization on the TMR formula (d = 0.25)")
    times = (50, 100, 150, 200) if full else (50, 100)
    for t, probability, seconds in table_5_8(times=times):
        print(f"  t = {t:<4g}  P = {probability:.12f}  ({seconds:.2f}s)")


if __name__ == "__main__":
    main()
