"""Authoring MRMs in the guarded-command language.

Compiles the two model files under ``examples/models/`` and runs CSRL
queries against them:

* ``tmr.mrm`` — the paper's TMR system, checked against Table 5.3's
  formula, then recompiled with ``N = 11`` for the Table 5.5 question;
* ``cluster.mrm`` — a two-tier web cluster with switchover impulses,
  queried for availability and cost-bounded outage risk.

Run:  python examples/modeling_language.py
"""

import os

from repro import CheckOptions, ModelChecker
from repro.lang import load_model

MODELS = os.path.join(os.path.dirname(__file__), "models")


def tmr_from_source() -> None:
    compiled = load_model(os.path.join(MODELS, "tmr.mrm"))
    print(f"tmr.mrm compiled: {compiled.mrm.num_states} states "
          f"(variables {', '.join(compiled.variable_names)})")
    checker = ModelChecker(compiled.mrm, CheckOptions(truncation_probability=1e-11))
    result = checker.check("P(>0.1) [Sup U[0,200][0,3000] failed]")
    start = compiled.state_index(modules=3, voter=1)
    print(f"  P(Sup U[0,200][0,3000] failed) from all-up = "
          f"{result.probability_of(start):.9f}  (Table 5.3: 0.020357846)")

    big = load_model(os.path.join(MODELS, "tmr.mrm"), constants={"N": 11})
    print(f"  recompiled with N=11: {big.mrm.num_states} states")
    checker = ModelChecker(big.mrm, CheckOptions(truncation_probability=1e-8))
    result = checker.check("P(>0.5) [TT U[0,100][0,2000] allUp]")
    nine_up = big.state_index(modules=9, voter=1)
    print(f"  P(TT U[0,100][0,2000] allUp) from 9 working = "
          f"{result.probability_of(nine_up):.6f}")
    print()


def cluster_study() -> None:
    compiled = load_model(os.path.join(MODELS, "cluster.mrm"))
    model = compiled.mrm
    print(f"cluster.mrm compiled: {model.num_states} states")
    checker = ModelChecker(model, CheckOptions(path_strategy="merged"))

    availability = checker.check("S(>0.999) serving")
    healthy = compiled.state_index(fe=3, be=2)
    print(f"  long-run availability = {availability.probability_of(healthy):.6f}"
          f"  (S(>0.999) serving {'holds' if healthy in availability else 'fails'})")

    outage = checker.check("P(<0.01) [serving U[0,24][0,100] down]")
    print(f"  P(outage within 24 h under cost budget 100) = "
          f"{outage.probability_of(healthy):.3e}"
          f"  ({'acceptable' if healthy in outage else 'too risky'})")

    degraded = checker.check("P(>0.1) [healthy U[0,168] degraded]")
    print(f"  P(degrade within a week) = {degraded.probability_of(healthy):.4f}")


if __name__ == "__main__":
    tmr_from_source()
    cluster_study()
