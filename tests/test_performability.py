"""Tests for the performability distribution Pr{Y(t) <= r} (Section 3.5)."""

import math

import pytest

from repro.ctmc.chain import CTMC
from repro.mrm.model import MRM
from repro.performability.distribution import (
    accumulated_reward_cdf,
    accumulated_reward_distribution,
)


def single_state_model(rate=3.0):
    chain = CTMC([[0.0]], labels={0: {"only"}})
    return MRM(chain, state_rewards=[rate])


class TestDeterministicCases:
    def test_single_state_reward_is_deterministic(self):
        """One absorbing state earning rate rho: Y(t) = rho t exactly."""
        model = single_state_model(3.0)
        above = accumulated_reward_distribution(model, 0, 2.0, 6.1)
        below = accumulated_reward_distribution(model, 0, 2.0, 5.9)
        at = accumulated_reward_distribution(model, 0, 2.0, 6.0)
        assert above.probability == pytest.approx(1.0)
        assert below.probability == pytest.approx(0.0)
        assert at.probability == pytest.approx(1.0)  # closed bound

    def test_zero_rewards_always_within_budget(self, bscc_example):
        result = accumulated_reward_distribution(
            bscc_example, 0, 5.0, 0.0,
            truncation_probability=1e-10, strategy="merged",
        )
        # The estimate undershoots only by the (reported) truncated mass.
        assert result.probability <= 1.0 + 1e-12
        assert result.probability + result.error_bound >= 1.0 - 1e-9
        assert result.probability == pytest.approx(1.0, abs=1e-6)


class TestTwoStateMixture:
    def test_analytic_mixture(self):
        """0 -> 1 (absorbing), rho = (c, 0): Y(t) = c * min(T, t) with
        T ~ Exp(lam).  Pr{Y(t) <= r} = 1 - e^{-lam r / c} for r < c t."""
        lam, c, t = 1.0, 2.0, 3.0
        chain = CTMC([[0.0, lam], [0.0, 0.0]], labels={0: {"a"}, 1: {"b"}})
        model = MRM(chain, state_rewards=[c, 0.0])
        for r in (0.5, 2.0, 4.0):
            result = accumulated_reward_distribution(
                model, 0, t, r, truncation_probability=1e-12
            )
            expected = 1.0 - math.exp(-lam * r / c)
            assert result.probability == pytest.approx(expected, abs=1e-6)

    def test_bound_above_maximum_is_certain(self):
        chain = CTMC([[0.0, 1.0], [0.0, 0.0]])
        model = MRM(chain, state_rewards=[2.0, 0.0])
        result = accumulated_reward_distribution(
            model, 0, 3.0, 6.5, truncation_probability=1e-12
        )
        assert result.probability == pytest.approx(1.0, abs=1e-9)


class TestCdf:
    # WaveLAN has five distinct state-reward levels and five impulse
    # levels, so the (k, j) class lattice grows steeply with Lambda*t;
    # keep the horizon short so the tests stay fast.
    def test_monotone_nondecreasing(self, wavelan):
        levels = [0.0, 100.0, 400.0, 1000.0, 5000.0]
        cdf = accumulated_reward_cdf(
            wavelan, 0, 0.25, levels, truncation_probability=1e-7
        )
        assert all(a <= b + 1e-9 for a, b in zip(cdf, cdf[1:]))
        assert all(0.0 <= v <= 1.0 + 1e-12 for v in cdf)

    def test_impulses_shift_cdf_left(self, wavelan):
        """With impulse rewards stripped, less reward accumulates."""
        stripped = MRM(wavelan.ctmc, state_rewards=wavelan.state_rewards)
        levels = [50.0, 150.0, 400.0]
        with_impulses = accumulated_reward_cdf(
            wavelan, 0, 0.25, levels, truncation_probability=1e-7
        )
        without = accumulated_reward_cdf(
            stripped, 0, 0.25, levels, truncation_probability=1e-7
        )
        for a, b in zip(with_impulses, without):
            assert a <= b + 1e-9
