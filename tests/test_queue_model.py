"""Tests for the M/M/1/K queueing workload."""

import math

import numpy as np
import pytest

from repro.check.checker import ModelChecker
from repro.exceptions import ModelError
from repro.models.queue import build_mm1k_queue
from repro.performability.expected import long_run_reward_rate


class TestStructure:
    def test_state_count(self):
        model = build_mm1k_queue(capacity=5)
        assert model.num_states == 7  # 0..5 jobs + overflow

    def test_labels(self):
        model = build_mm1k_queue(capacity=6)
        assert model.states_with_label("empty") == {0}
        assert 6 in model.states_with_label("full")
        assert model.states_with_label("overflow") == {7}
        # congestion threshold ceil(12/3) wait: ceil(2*6/3) = 4.
        assert model.states_with_label("congested") >= {4, 5, 6, 7}

    def test_loss_penalty_on_overflow_edge(self):
        model = build_mm1k_queue(capacity=3, loss_penalty=9.0)
        full = 3
        overflow = 4
        assert model.impulse_reward(full, overflow) == 9.0

    def test_validation(self):
        with pytest.raises(ModelError):
            build_mm1k_queue(capacity=0)
        with pytest.raises(ModelError):
            build_mm1k_queue(arrival_rate=0.0)
        with pytest.raises(ModelError):
            build_mm1k_queue(recovery_rate=1.0)


class TestAgainstQueueingTheory:
    def test_steady_state_matches_mm1k_formula(self):
        """pi_n = rho^n (1 - rho) / (1 - rho^{K+1}) up to the tiny
        overflow-state mass."""
        lam, mu, k = 0.8, 1.0, 6
        model = build_mm1k_queue(capacity=k, arrival_rate=lam, service_rate=mu)
        from repro.ctmc.steady import steady_state_distribution

        steady = steady_state_distribution(model.ctmc)
        rho = lam / mu
        expected = np.array(
            [rho**n * (1 - rho) / (1 - rho ** (k + 1)) for n in range(k + 1)]
        )
        assert steady[: k + 1] == pytest.approx(expected, abs=1e-3)
        assert steady[-1] < 1e-3  # overflow state is nearly instantaneous

    def test_loss_rate_matches_erlang_formula(self):
        """Long-run loss cost = loss_penalty * lam * pi_K."""
        lam, mu, k, penalty = 0.8, 1.0, 5, 10.0
        model = build_mm1k_queue(
            capacity=k,
            arrival_rate=lam,
            service_rate=mu,
            holding_cost=0.0,
            loss_penalty=penalty,
        )
        rho = lam / mu
        pi_full = rho**k * (1 - rho) / (1 - rho ** (k + 1))
        expected = penalty * lam * pi_full
        assert long_run_reward_rate(model) == pytest.approx(expected, rel=2e-3)

    def test_holding_cost_rate(self):
        """Long-run holding cost = holding_cost * E[N] (loss disabled)."""
        lam, mu, k = 0.5, 1.0, 8
        model = build_mm1k_queue(
            capacity=k,
            arrival_rate=lam,
            service_rate=mu,
            holding_cost=2.0,
            loss_penalty=0.0,
        )
        rho = lam / mu
        weights = np.array([rho**n for n in range(k + 1)])
        expected_jobs = float((np.arange(k + 1) * weights).sum() / weights.sum())
        assert long_run_reward_rate(model) == pytest.approx(
            2.0 * expected_jobs, rel=2e-3
        )


class TestCSRLProperties:
    def test_congestion_steady_state(self):
        model = build_mm1k_queue(capacity=6, arrival_rate=0.5)
        checker = ModelChecker(model)
        result = checker.check("S(<0.2) congested")
        # Light load: congestion is rare, every state satisfies the bound.
        assert result.states == frozenset(range(model.num_states))

    def test_fill_up_probability(self):
        """P(!full U[0,t] full) from empty: a transient quantity that
        must grow with t."""
        model = build_mm1k_queue(capacity=4, arrival_rate=0.9)
        checker = ModelChecker(model)
        small = checker.path_probabilities("!full U[0,5] full")[0]
        large = checker.path_probabilities("!full U[0,50] full")[0]
        assert 0.0 < small < large <= 1.0

    def test_cost_bounded_fill_up(self):
        """Reward-bounded until with the impulse-carrying model.

        The queue's uniformized chain is dense, so use the merged DP
        strategy (the per-path DFS takes ~17 s here; merged is
        milliseconds at identical accuracy).
        """
        from repro.check.checker import CheckOptions

        model = build_mm1k_queue(capacity=3, arrival_rate=0.9)
        checker = ModelChecker(model, CheckOptions(path_strategy="merged"))
        unbounded = checker.path_probabilities("TT U[0,10] full")[0]
        bounded = checker.path_probabilities("TT U[0,10][0,15] full")[0]
        assert bounded <= unbounded + 1e-9
        assert bounded > 0.0
