"""Tests for the result objects returned by the checking layer."""

import numpy as np
import pytest

from repro.check.results import NextResult, SatResult, SteadyResult, UntilResult


class TestSatResult:
    def test_contains(self):
        result = SatResult(formula="busy", states=frozenset({1, 3}))
        assert 1 in result
        assert 2 not in result

    def test_probability_of_without_values(self):
        result = SatResult(formula="busy", states=frozenset())
        assert result.probability_of(0) is None

    def test_probability_of_with_values(self):
        result = SatResult(
            formula="P(>0) [X a]",
            states=frozenset({0}),
            probabilities=(0.25, 0.75),
        )
        assert result.probability_of(1) == 0.75

    def test_frozen(self):
        result = SatResult(formula="busy", states=frozenset())
        with pytest.raises(AttributeError):
            result.formula = "other"


class TestQuantitativeResults:
    def test_steady_result_fields(self):
        result = SteadyResult(values=np.array([0.1, 0.9]), satisfying=frozenset({1}))
        assert result.values[1] == 0.9
        assert result.satisfying == {1}

    def test_next_result_fields(self):
        result = NextResult(values=np.zeros(3), satisfying=frozenset())
        assert result.values.shape == (3,)

    def test_until_result_defaults(self):
        result = UntilResult(
            values=np.ones(2),
            satisfying=frozenset({0, 1}),
            engine="linear-system",
        )
        assert result.error_bounds is None
        assert result.statistics == {}
        assert result.engine == "linear-system"
