"""Failure-injection tests: malformed inputs must fail loudly and typed.

Errors should never pass silently — every constructor and engine is fed
hostile inputs (NaN/inf, wrong shapes, inconsistent structures) and must
raise the documented exception type, never produce numbers.
"""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.dtmc.chain import DTMC
from repro.exceptions import (
    CheckError,
    FormulaError,
    LabelingError,
    ModelError,
    NumericalError,
    ReproError,
    RewardError,
)
from repro.mrm.model import MRM
from repro.numerics.intervals import Interval

NAN = float("nan")
INF = float("inf")


class TestNonFiniteInputs:
    def test_nan_probability_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            DTMC([[NAN, 1.0], [0.0, 1.0]])

    def test_inf_probability_rejected(self):
        with pytest.raises(ModelError):
            DTMC([[INF, 0.0], [0.0, 1.0]])

    def test_nan_rate_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            CTMC([[0.0, NAN], [1.0, 0.0]])

    def test_inf_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC([[0.0, INF], [1.0, 0.0]])

    def test_nan_state_reward_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError, match="finite"):
            MRM(chain, state_rewards=[NAN, 0.0])

    def test_inf_impulse_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError):
            MRM(chain, impulse_rewards={(0, 1): INF})

    def test_nan_impulse_matrix_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        impulses = sp.csr_matrix(np.array([[0.0, NAN], [0.0, 0.0]]))
        with pytest.raises(RewardError):
            MRM(chain, impulse_rewards=impulses)


class TestStructuralMismatches:
    def test_rewards_wrong_length(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError):
            MRM(chain, state_rewards=[1.0])

    def test_labels_on_ghost_states(self):
        with pytest.raises(LabelingError):
            CTMC([[0.0]], labels={1: {"a"}})

    def test_ragged_matrix(self):
        with pytest.raises(Exception):
            CTMC([[0.0, 1.0], [1.0]])

    def test_empty_state_space(self):
        # A 0x0 chain is degenerate; scipy may allow the matrix but any
        # downstream use must not crash with an unintelligible error.
        matrix = sp.csr_matrix((0, 0))
        chain = CTMC(matrix)
        assert chain.num_states == 0


class TestEngineGuards:
    def test_until_rejects_all_bad_bounds(self, wavelan):
        from repro.check.until import until_probability

        cases = [
            dict(time_bound=Interval(1.0, 2.0), reward_bound=Interval.upto(1.0)),
            dict(time_bound=Interval.upto(1.0), reward_bound=Interval(1.0, 2.0)),
            dict(time_bound=Interval.unbounded(), reward_bound=Interval.upto(1.0)),
        ]
        for bounds in cases:
            with pytest.raises(CheckError):
                until_probability(wavelan, 2, {2}, {3}, **bounds)

    def test_discretization_guards(self, wavelan):
        from repro.check.discretization import discretized_joint_distribution

        # WaveLAN rewards are integers but the impulses are not
        # d-integral at d = 0.0625 -- must be detected, not silently
        # rounded.
        with pytest.raises(NumericalError):
            discretized_joint_distribution(
                wavelan, 2, {3}, 1.0, 100.0, step=0.0625
            )

    def test_paths_engine_rejects_empty_truncation(self, wavelan):
        from repro.check.paths_engine import joint_distribution

        with pytest.raises(CheckError):
            joint_distribution(
                wavelan, 2, {3}, 1.0, 10.0, truncation_probability=0.0
            )

    def test_checker_surfaces_formula_errors(self, wavelan):
        from repro.check.checker import ModelChecker

        checker = ModelChecker(wavelan)
        with pytest.raises(FormulaError):
            checker.check("P(>0.5) [busy U[5,1] idle]")

    def test_every_error_is_a_repro_error(self):
        for exc in (ModelError, RewardError, LabelingError, CheckError,
                    NumericalError, FormulaError):
            assert issubclass(exc, ReproError)


class TestNumericalEdges:
    def test_omega_with_extreme_threshold(self):
        from repro.numerics.orderstat import omega

        assert omega([1.0, 0.0], [5, 5], threshold=1e308) == 1.0
        assert omega([1.0, 0.5], [5, 5], threshold=0.0) == 0.0

    def test_interval_huge_values(self):
        window = Interval.k_transition(
            Interval.upto(1e300), Interval.upto(1e300), rate=1.0, impulse=0.0
        )
        assert window.upper == 1e300

    def test_poisson_zero_everything(self):
        from repro.numerics.poisson import poisson_pmf, poisson_tail_from

        assert poisson_pmf(0.0, 0) == 1.0
        assert poisson_tail_from(0.0, 5) == 0.0

    def test_transient_of_absorbing_only_chain(self):
        from repro.ctmc.transient import transient_distribution

        chain = CTMC([[0.0, 0.0], [0.0, 0.0]])
        result = transient_distribution(chain, [0.5, 0.5], 10.0)
        assert result == pytest.approx([0.5, 0.5])
