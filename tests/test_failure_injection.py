"""Failure-injection tests: malformed inputs must fail loudly and typed.

Errors should never pass silently — every constructor and engine is fed
hostile inputs (NaN/inf, wrong shapes, inconsistent structures) and must
raise the documented exception type, never produce numbers.

The second half injects *runtime* faults — engines stubbed to raise
``MemoryError``, stubbed to outlive a deadline, pool workers killed
mid-shard — and asserts the guarded checker survives them exactly as
documented: the cascade steps through its tiers in order, the answer's
``trust`` says ``"degraded"``, the numbers match the surviving engine's
direct run, and a dying fork worker is recovered serially with bitwise
identical results instead of hanging the parent.
"""

import math
import os
import time

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import paths_engine
from repro.check.checker import CheckOptions, ModelChecker
from repro.ctmc.chain import CTMC
from repro.dtmc.chain import DTMC
from repro.exceptions import (
    CheckError,
    FormulaError,
    LabelingError,
    ModelError,
    NumericalError,
    ReproError,
    RewardError,
    WorkerError,
)
from repro.mrm.model import MRM
from repro.numerics.intervals import Interval

NAN = float("nan")
INF = float("inf")


class TestNonFiniteInputs:
    def test_nan_probability_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            DTMC([[NAN, 1.0], [0.0, 1.0]])

    def test_inf_probability_rejected(self):
        with pytest.raises(ModelError):
            DTMC([[INF, 0.0], [0.0, 1.0]])

    def test_nan_rate_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            CTMC([[0.0, NAN], [1.0, 0.0]])

    def test_inf_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC([[0.0, INF], [1.0, 0.0]])

    def test_nan_state_reward_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError, match="finite"):
            MRM(chain, state_rewards=[NAN, 0.0])

    def test_inf_impulse_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError):
            MRM(chain, impulse_rewards={(0, 1): INF})

    def test_nan_impulse_matrix_rejected(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        impulses = sp.csr_matrix(np.array([[0.0, NAN], [0.0, 0.0]]))
        with pytest.raises(RewardError):
            MRM(chain, impulse_rewards=impulses)


class TestStructuralMismatches:
    def test_rewards_wrong_length(self):
        chain = CTMC([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RewardError):
            MRM(chain, state_rewards=[1.0])

    def test_labels_on_ghost_states(self):
        with pytest.raises(LabelingError):
            CTMC([[0.0]], labels={1: {"a"}})

    def test_ragged_matrix(self):
        with pytest.raises(Exception):
            CTMC([[0.0, 1.0], [1.0]])

    def test_empty_state_space(self):
        # A 0x0 chain is degenerate; scipy may allow the matrix but any
        # downstream use must not crash with an unintelligible error.
        matrix = sp.csr_matrix((0, 0))
        chain = CTMC(matrix)
        assert chain.num_states == 0


class TestEngineGuards:
    def test_until_rejects_all_bad_bounds(self, wavelan):
        from repro.check.until import until_probability

        cases = [
            dict(time_bound=Interval(1.0, 2.0), reward_bound=Interval.upto(1.0)),
            dict(time_bound=Interval.upto(1.0), reward_bound=Interval(1.0, 2.0)),
            dict(time_bound=Interval.unbounded(), reward_bound=Interval.upto(1.0)),
        ]
        for bounds in cases:
            with pytest.raises(CheckError):
                until_probability(wavelan, 2, {2}, {3}, **bounds)

    def test_discretization_guards(self, wavelan):
        from repro.check.discretization import discretized_joint_distribution

        # WaveLAN rewards are integers but the impulses are not
        # d-integral at d = 0.0625 -- must be detected, not silently
        # rounded.
        with pytest.raises(NumericalError):
            discretized_joint_distribution(
                wavelan, 2, {3}, 1.0, 100.0, step=0.0625
            )

    def test_paths_engine_rejects_empty_truncation(self, wavelan):
        from repro.check.paths_engine import joint_distribution

        with pytest.raises(CheckError):
            joint_distribution(
                wavelan, 2, {3}, 1.0, 10.0, truncation_probability=0.0
            )

    def test_checker_surfaces_formula_errors(self, wavelan):
        from repro.check.checker import ModelChecker

        checker = ModelChecker(wavelan)
        with pytest.raises(FormulaError):
            checker.check("P(>0.5) [busy U[5,1] idle]")

    def test_every_error_is_a_repro_error(self):
        for exc in (ModelError, RewardError, LabelingError, CheckError,
                    NumericalError, FormulaError):
            assert issubclass(exc, ReproError)


class TestNumericalEdges:
    def test_omega_with_extreme_threshold(self):
        from repro.numerics.orderstat import omega

        assert omega([1.0, 0.0], [5, 5], threshold=1e308) == 1.0
        assert omega([1.0, 0.5], [5, 5], threshold=0.0) == 0.0

    def test_interval_huge_values(self):
        window = Interval.k_transition(
            Interval.upto(1e300), Interval.upto(1e300), rate=1.0, impulse=0.0
        )
        assert window.upper == 1e300

    def test_poisson_zero_everything(self):
        from repro.numerics.poisson import poisson_pmf, poisson_tail_from

        assert poisson_pmf(0.0, 0) == 1.0
        assert poisson_tail_from(0.0, 5) == 0.0

    def test_transient_of_absorbing_only_chain(self):
        from repro.ctmc.transient import transient_distribution

        chain = CTMC([[0.0, 0.0], [0.0, 0.0]])
        result = transient_distribution(chain, [0.5, 0.5], 10.0)
        assert result == pytest.approx([0.5, 0.5])


# ----------------------------------------------------------------------
# Runtime fault injection: the degradation cascade and the fork pool.
# ----------------------------------------------------------------------

WAVELAN_P2 = "P(>0.5) [TT U[0,0.5][0,50] busy]"

_STRATEGY_RUNNERS = {
    "merged": "_run_merged_columnar",
    "merged-legacy": "_run_merged_dp",
    "paths": "_run_paths_dfs",
}


class _inject_engine_faults:
    """Replace selected path-engine runners with raising stubs.

    A context manager rather than the ``monkeypatch`` fixture so
    hypothesis can enter/exit it once per drawn example.
    """

    def __init__(self, failing, error=MemoryError):
        self._failing = list(failing)
        self._error = error
        self._saved = {}

    def __enter__(self):
        for strategy in self._failing:
            name = _STRATEGY_RUNNERS[strategy]
            self._saved[name] = getattr(paths_engine, name)
            error = self._error

            def stub(*args, _strategy=strategy, **kwargs):
                raise error(f"injected fault in {_strategy}")

            setattr(paths_engine, name, stub)
        return self

    def __exit__(self, *exc_info):
        for name, original in self._saved.items():
            setattr(paths_engine, name, original)
        return False


class TestDegradationCascade:
    def test_injected_oom_steps_down_one_tier(self, wavelan):
        with _inject_engine_faults(["merged"]):
            checker = ModelChecker(wavelan, CheckOptions(path_strategy="merged"))
            result = checker.check(WAVELAN_P2)
        assert result.trust == "degraded"
        records = result.report.degradations
        assert [r["kind"] for r in records] == ["engine"]
        assert records[0]["from"] == "uniformization/merged"
        assert records[0]["to"] == "uniformization/merged-legacy"
        assert "MemoryError" in records[0]["reason"]
        # The surviving tier's numbers are exactly a direct run of it.
        exact = ModelChecker(
            wavelan, CheckOptions(path_strategy="merged-legacy")
        ).check(WAVELAN_P2)
        assert result.probabilities == exact.probabilities
        assert result.states == exact.states

    def test_documented_cascade_order(self, wavelan):
        # All three uniformization strategies fail; WaveLAN's impulses
        # are not d-integral, so the final discretization tier is
        # skipped as unavailable and the result is partial.
        with _inject_engine_faults(["merged", "merged-legacy", "paths"]):
            checker = ModelChecker(wavelan, CheckOptions(path_strategy="merged"))
            result = checker.check(WAVELAN_P2)
        assert result.trust == "partial"
        hops = [(r["from"], r["to"]) for r in result.report.degradations]
        assert hops == [
            ("uniformization/merged", "uniformization/merged-legacy"),
            ("uniformization/merged-legacy", "uniformization/paths"),
            ("uniformization/paths", "discretization"),
            ("discretization", None),
        ]

    def test_slow_engine_stub_trips_deadline(self, wavelan):
        original = paths_engine._run_merged_columnar

        def slow(*args, **kwargs):
            time.sleep(0.2)
            return original(*args, **kwargs)

        paths_engine._run_merged_columnar = slow
        try:
            checker = ModelChecker(
                wavelan,
                CheckOptions(path_strategy="merged", deadline_s=0.05),
            )
            result = checker.check(WAVELAN_P2)
        finally:
            paths_engine._run_merged_columnar = original
        # The deadline passed inside the slow tier; retrying a cheaper
        # tier cannot beat an absolute deadline, so the cascade goes
        # straight to the conservative partial answer.
        assert result.trust == "partial"
        assert any(
            "DeadlineExceeded" in r["reason"] for r in result.report.degradations
        )

    def test_primary_tier_config_errors_still_raise(self, wavelan):
        # Precondition failures of the *configured* engine are the
        # caller's problem even with degrade on: WaveLAN impulses are
        # not d-integral at the default step.
        checker = ModelChecker(
            wavelan, CheckOptions(until_engine="discretization")
        )
        with pytest.raises(NumericalError):
            checker.check(WAVELAN_P2)

    @settings(max_examples=12, deadline=None)
    @given(
        fail_merged=st.booleans(),
        fail_legacy=st.booleans(),
        fail_paths=st.booleans(),
    )
    def test_degraded_numbers_match_surviving_tier(
        self, fail_merged, fail_legacy, fail_paths
    ):
        from repro.models import build_wavelan_modem

        model = build_wavelan_modem()
        ladder = ["merged", "merged-legacy", "paths"]
        failing = [
            strategy
            for strategy, fails in zip(
                ladder, (fail_merged, fail_legacy, fail_paths)
            )
            if fails
        ]
        surviving = next((s for s in ladder if s not in failing), None)
        with _inject_engine_faults(failing):
            checker = ModelChecker(model, CheckOptions(path_strategy="merged"))
            result = checker.check(WAVELAN_P2)
        if surviving is None:
            # Discretization cannot serve WaveLAN either: partial, with
            # the documented conservative fill-in.
            assert result.trust == "partial"
            psi = model.states_with_label("busy")
            for state, value in enumerate(result.probabilities):
                assert value == (1.0 if state in psi else 0.0)
        else:
            expected_trust = "exact" if surviving == "merged" else "degraded"
            assert result.trust == expected_trust
            exact = ModelChecker(
                model, CheckOptions(path_strategy=surviving)
            ).check(WAVELAN_P2)
            assert result.probabilities == exact.probabilities

    def test_cache_hit_replays_degradations(self, wavelan):
        with _inject_engine_faults(["merged"]):
            checker = ModelChecker(wavelan, CheckOptions(path_strategy="merged"))
            first = checker.check(WAVELAN_P2)
            # Same path operator, different bound: served from the
            # path-value cache, degradation records replayed as cached.
            second = checker.check("P(>0.9) [TT U[0,0.5][0,50] busy]")
        assert first.trust == "degraded"
        assert second.trust == "degraded"
        assert all(r.get("cached") for r in second.report.degradations)


def _exit_hard(task):
    os._exit(3)


def _sleep_forever(task):
    time.sleep(600.0)


def _crash_initializer():
    raise RuntimeError("injected initializer crash")


@pytest.fixture
def multicore(monkeypatch):
    """Pretend the box has cores to spare.

    The fan-out clamps ``workers`` to ``os.cpu_count()``; on a 1-core CI
    runner that would silently serialize every pool test below, making
    the fault-injection vacuous.  Patching the seam keeps the pool in
    play; the default pool is reset afterwards so no stub-poisoned
    workers leak into other tests.
    """
    from repro.check import pool

    monkeypatch.setattr(pool, "_cpu_count", lambda: 8)
    yield
    pool.reset_default_pool()


class TestFaultTolerantPool:
    FANOUT = dict(
        psi_states={3},
        time_bound=1.0,
        reward_bound=10.0,
        truncation_probability=1e-7,
        strategy="paths",
    )

    def _serial(self, model):
        states = list(range(model.num_states))
        return paths_engine.joint_distribution_all(model, states, **self.FANOUT)

    def test_dead_worker_recovers_serially_bitwise(self, wavelan, multicore):
        from repro.check import pool

        serial = self._serial(wavelan)
        states = list(range(wavelan.num_states))
        original = pool._fan_out_shard
        pool._fan_out_shard = _exit_hard
        try:
            recovered = paths_engine.joint_distribution_all(
                wavelan, states, workers=2, **self.FANOUT
            )
        finally:
            pool._fan_out_shard = original
        assert set(recovered) == set(serial)
        for state in serial:
            assert recovered[state].probability == serial[state].probability
            assert recovered[state].error_bound == serial[state].error_bound

    def test_crashing_initializer_recovers_serially(self, wavelan, multicore):
        from repro.check import pool

        serial = self._serial(wavelan)
        states = list(range(wavelan.num_states))
        original = pool._fan_out_initializer
        pool._fan_out_initializer = _crash_initializer
        # The initializer runs when workers fork; reset so the patched
        # hook is part of the next pool's fork snapshot.
        pool.reset_default_pool()
        try:
            recovered = paths_engine.joint_distribution_all(
                wavelan, states, workers=2, **self.FANOUT
            )
        finally:
            pool._fan_out_initializer = original
            pool.reset_default_pool()
        for state in serial:
            assert recovered[state].probability == serial[state].probability

    def test_hung_worker_times_out_not_hangs(self, wavelan, multicore):
        from repro.check import pool

        serial = self._serial(wavelan)
        states = list(range(wavelan.num_states))
        context = paths_engine.prepare_path_engine(
            wavelan,
            psi_states=self.FANOUT["psi_states"],
            time_bound=self.FANOUT["time_bound"],
            reward_bound=self.FANOUT["reward_bound"],
            truncation_probability=self.FANOUT["truncation_probability"],
            strategy=self.FANOUT["strategy"],
        )
        original = pool._fan_out_shard
        pool._fan_out_shard = _sleep_forever
        start = time.monotonic()
        try:
            recovered = paths_engine.joint_distribution_many(
                context, states, workers=2, shard_timeout_s=0.5
            )
        finally:
            pool._fan_out_shard = original
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # watchdog + retries, nowhere near 600 s
        for state in serial:
            assert recovered[state].probability == serial[state].probability

    def test_hung_shards_share_one_absolute_deadline(self, wavelan, multicore):
        # Regression: the old watchdog applied its timeout per future
        # sequentially, so k hung shards cost k timeouts.  Two sleeping
        # shards must together cost about *one* timeout per attempt.
        from repro.check import pool

        states = list(range(wavelan.num_states))
        context = paths_engine.prepare_path_engine(
            wavelan,
            psi_states=self.FANOUT["psi_states"],
            time_bound=self.FANOUT["time_bound"],
            reward_bound=self.FANOUT["reward_bound"],
            truncation_probability=self.FANOUT["truncation_probability"],
            strategy=self.FANOUT["strategy"],
        )
        shards = [(0, states[: len(states) // 2]), (1, states[len(states) // 2 :])]
        worker_pool = pool.PersistentWorkerPool()
        original = pool._fan_out_shard
        pool._fan_out_shard = _sleep_forever
        timeout_s = 1.0
        start = time.monotonic()
        try:
            results, snapshots, failures, _ = worker_pool.run_shards(
                context, shards, timeout_s, workers=2
            )
        finally:
            pool._fan_out_shard = original
            worker_pool.reset()
        elapsed = time.monotonic() - start
        assert not results
        assert len(failures) == len(shards)
        assert all("timed out" in str(error) for _, _, error in failures)
        # One shared deadline: well under 2 stacked timeouts even with
        # fork/teardown slack on a loaded box.
        assert elapsed < timeout_s + 3.0

    def test_pool_submit_failure_is_reported_not_masked(self, wavelan):
        # Regression: an exception inside the submit loop used to raise
        # UnboundLocalError over ``worker_pids`` instead of surfacing
        # the real failure as shard-level WorkerErrors.
        from repro.check import pool

        context = paths_engine.prepare_path_engine(
            wavelan,
            psi_states=self.FANOUT["psi_states"],
            time_bound=self.FANOUT["time_bound"],
            reward_bound=self.FANOUT["reward_bound"],
            truncation_probability=self.FANOUT["truncation_probability"],
            strategy=self.FANOUT["strategy"],
        )

        class _RefusingExecutor:
            def submit(self, fn, *args):
                raise RuntimeError("injected submit failure")

        worker_pool = pool.PersistentWorkerPool()
        worker_pool._executor = _RefusingExecutor()
        worker_pool._size = 2
        shards = [(0, [0, 1]), (1, [2, 3])]
        results, snapshots, failures, worker_pids = worker_pool.run_shards(
            context, shards, timeout_s=5.0, workers=2
        )
        assert not results and not snapshots
        assert worker_pids == []
        assert [index for index, _, _ in failures] == [0, 1]
        assert all(
            "injected submit failure" in str(error) for _, _, error in failures
        )
        # The pool marked itself broken so the next call rebuilds.
        assert not worker_pool.alive

    def test_pool_failures_recorded_on_collector(self, wavelan, multicore):
        from repro.check import pool
        from repro.obs import Collector, use_collector
        from repro.obs.report import RunReport

        states = list(range(wavelan.num_states))
        collector = Collector()
        original = pool._fan_out_shard
        pool._fan_out_shard = _exit_hard
        try:
            with use_collector(collector):
                paths_engine.joint_distribution_all(
                    wavelan, states, workers=2, **self.FANOUT
                )
        finally:
            pool._fan_out_shard = original
        events = collector.events_named("pool.worker-failure")
        assert events
        assert collector.counter("pool.worker-failures") == len(events)
        # Failures normalize into the report's degradations section.
        records = RunReport.degradations_from_collector(collector)
        assert all(r["kind"] == "pool" for r in records)
        assert records[-1]["to"] == "serial"

    def test_worker_error_is_typed(self):
        error = WorkerError("shard 2 died", shard=(4, 5))
        assert isinstance(error, ReproError)
        assert error.shard == (4, 5)
