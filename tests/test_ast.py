"""Tests for the CSRL AST (Definition 3.5)."""

import pytest

from repro.exceptions import FormulaError
from repro.logic.ast import (
    And,
    Atomic,
    Comparison,
    Eventually,
    FalseFormula,
    Implies,
    Next,
    Not,
    Or,
    Prob,
    Steady,
    TrueFormula,
    Until,
    ap,
    ff,
    tt,
)
from repro.numerics.intervals import Interval


class TestComparison:
    def test_holds(self):
        assert Comparison.LT.holds(0.4, 0.5)
        assert not Comparison.LT.holds(0.5, 0.5)
        assert Comparison.LE.holds(0.5, 0.5)
        assert Comparison.GT.holds(0.6, 0.5)
        assert Comparison.GE.holds(0.5, 0.5)
        assert not Comparison.GE.holds(0.4, 0.5)

    def test_from_symbol(self):
        assert Comparison.from_symbol("<=") is Comparison.LE
        with pytest.raises(FormulaError):
            Comparison.from_symbol("==")

    def test_str(self):
        assert str(Comparison.GT) == ">"


class TestConstruction:
    def test_atomic_validation(self):
        with pytest.raises(FormulaError):
            Atomic("")
        with pytest.raises(FormulaError):
            Atomic("two words")

    def test_structural_equality(self):
        assert Atomic("a") == Atomic("a")
        assert Atomic("a") != Atomic("b")
        assert Or(tt(), ap("x")) == Or(TrueFormula(), Atomic("x"))

    def test_hashable_for_caching(self):
        cache = {Atomic("a"): 1, Not(Atomic("a")): 2}
        assert cache[Atomic("a")] == 1

    def test_operator_overloads(self):
        formula = ap("a") & ap("b") | ~ap("c")
        assert isinstance(formula, Or)
        assert isinstance(formula.left, And)
        assert isinstance(formula.right, Not)

    def test_implies_helper(self):
        formula = ap("a").implies(ap("b"))
        assert isinstance(formula, Implies)

    def test_boolean_operand_type_checked(self):
        with pytest.raises(FormulaError):
            Not("a")
        with pytest.raises(FormulaError):
            Or(ap("a"), Next(ap("b")))

    def test_probability_bound_validated(self):
        with pytest.raises(FormulaError):
            Prob(Comparison.GE, 1.5, Next(ap("a")))
        with pytest.raises(FormulaError):
            Steady(Comparison.GE, -0.1, ap("a"))

    def test_prob_needs_path_formula(self):
        with pytest.raises(FormulaError):
            Prob(Comparison.GE, 0.5, ap("a"))

    def test_until_interval_types_checked(self):
        with pytest.raises(FormulaError):
            Until(ap("a"), ap("b"), time_bound=(0, 1))

    def test_empty_interval_rejected(self):
        with pytest.raises(FormulaError):
            Next(ap("a"), time_bound=Interval.EMPTY)


class TestDerivedForms:
    def test_eventually_is_true_until(self):
        formula = Eventually(ap("goal"), time_bound=Interval.upto(5))
        assert isinstance(formula, Until)
        assert formula.left == tt()
        assert formula.right == ap("goal")
        assert formula.time_bound == Interval.upto(5)
        assert formula.reward_bound.is_unbounded

    def test_until_classification(self):
        p0 = Until(ap("a"), ap("b"))
        p1 = Until(ap("a"), ap("b"), time_bound=Interval.upto(3))
        p2 = Until(
            ap("a"), ap("b"), time_bound=Interval.upto(3), reward_bound=Interval.upto(9)
        )
        assert p0.is_unbounded and not p0.is_time_bounded_only
        assert p1.is_time_bounded_only
        assert not p2.is_unbounded and not p2.is_time_bounded_only

    def test_next_unbounded_flag(self):
        assert Next(ap("a")).is_unbounded
        assert not Next(ap("a"), time_bound=Interval.upto(2)).is_unbounded


class TestTraversal:
    def test_subformulas_postorder(self):
        formula = Prob(Comparison.GE, 0.5, Until(ap("a"), Not(ap("b"))))
        nodes = list(formula.subformulas())
        assert nodes[-1] is formula
        # Children appear before parents.
        assert nodes.index(formula) > nodes.index(formula.path)
        until = formula.path
        assert nodes.index(until) > nodes.index(until.left)

    def test_atomic_propositions_collected(self):
        formula = Steady(Comparison.GE, 0.1, Or(ap("x"), And(ap("y"), Not(ap("x")))))
        assert formula.atomic_propositions() == {"x", "y"}

    def test_constants_have_no_propositions(self):
        assert tt().atomic_propositions() == frozenset()
        assert ff().atomic_propositions() == frozenset()


class TestRendering:
    def test_simple_forms(self):
        assert str(tt()) == "TT"
        assert str(ff()) == "FF"
        assert str(ap("busy")) == "busy"
        assert str(Not(ap("a"))) == "!a"
        assert str(Or(ap("a"), ap("b"))) == "(a || b)"
        assert str(And(ap("a"), ap("b"))) == "(a && b)"

    def test_nested_negation_parenthesized(self):
        assert str(Not(Not(ap("a")))) == "!(!a)"

    def test_steady(self):
        assert str(Steady(Comparison.GE, 0.3, ap("b"))) == "S(>=0.3) b"

    def test_prob_until_with_bounds(self):
        formula = Prob(
            Comparison.GT,
            0.5,
            Until(
                ap("a"),
                ap("b"),
                time_bound=Interval.upto(3),
                reward_bound=Interval.upto(23),
            ),
        )
        assert str(formula) == "P(>0.5) [a U[0,3][0,23] b]"

    def test_prob_next_unbounded(self):
        assert str(Prob(Comparison.LE, 0.1, Next(ap("a")))) == "P(<=0.1) [X a]"

    def test_unbounded_reward_rendered_as_tilde(self):
        formula = Until(ap("a"), ap("b"), time_bound=Interval.upto(3))
        assert str(formula) == "a U[0,3][0,~] b"
