"""Tests for the sparse linear solvers."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConvergenceError, NumericalError
from repro.numerics.linsolve import (
    gauss_seidel,
    jacobi,
    solve_direct,
    solve_linear_system,
    sor,
)


def diagonally_dominant(n, rng):
    """A random strictly diagonally dominant system (all solvers converge)."""
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    for i in range(n):
        matrix[i, i] = np.abs(matrix[i]).sum() + rng.uniform(0.5, 2.0)
    return sp.csr_matrix(matrix)


SYSTEM = sp.csr_matrix(np.array([[4.0, 1.0], [2.0, 5.0]]))
RHS = np.array([9.0, 19.0])
EXPECTED = np.linalg.solve(SYSTEM.toarray(), RHS)


class TestGaussSeidel:
    def test_solves_2x2(self):
        solution, stats = gauss_seidel(SYSTEM, RHS)
        assert solution == pytest.approx(EXPECTED, abs=1e-10)
        assert stats.converged
        assert stats.method == "gauss-seidel"

    def test_respects_initial_guess(self):
        solution, stats_cold = gauss_seidel(SYSTEM, RHS)
        _, stats_warm = gauss_seidel(SYSTEM, RHS, x0=solution)
        assert stats_warm.iterations <= stats_cold.iterations

    def test_convergence_error(self):
        # A rotation-like non-dominant system where GS diverges.
        bad = sp.csr_matrix(np.array([[1.0, 3.0], [4.0, 1.0]]))
        with pytest.raises(ConvergenceError) as info:
            gauss_seidel(bad, np.array([1.0, 1.0]), max_iterations=50)
        assert info.value.iterations == 50

    def test_zero_diagonal_rejected(self):
        singular = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(NumericalError):
            gauss_seidel(singular, np.array([1.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(NumericalError):
            gauss_seidel(SYSTEM, np.array([1.0, 2.0, 3.0]))

    def test_non_square_rejected(self):
        with pytest.raises(NumericalError):
            gauss_seidel(sp.csr_matrix(np.ones((2, 3))), np.ones(2))


class TestJacobi:
    def test_solves_2x2(self):
        solution, stats = jacobi(SYSTEM, RHS)
        assert solution == pytest.approx(EXPECTED, abs=1e-9)
        assert stats.method == "jacobi"

    def test_slower_than_gauss_seidel(self):
        _, gs = gauss_seidel(SYSTEM, RHS)
        _, jc = jacobi(SYSTEM, RHS)
        assert jc.iterations >= gs.iterations


class TestSor:
    def test_omega_one_is_gauss_seidel(self):
        sor_solution, sor_stats = sor(SYSTEM, RHS, omega_factor=1.0)
        gs_solution, gs_stats = gauss_seidel(SYSTEM, RHS)
        assert sor_solution == pytest.approx(gs_solution)
        assert sor_stats.iterations == gs_stats.iterations

    def test_overrelaxation_solves(self):
        solution, stats = sor(SYSTEM, RHS, omega_factor=1.1)
        assert solution == pytest.approx(EXPECTED, abs=1e-9)
        assert "sor" in stats.method

    def test_invalid_relaxation_rejected(self):
        for factor in (0.0, 2.0, -1.0):
            with pytest.raises(NumericalError):
                sor(SYSTEM, RHS, omega_factor=factor)


class TestDirect:
    def test_solves_2x2(self):
        assert solve_direct(SYSTEM, RHS) == pytest.approx(EXPECTED, abs=1e-12)

    def test_solves_1x1(self):
        assert solve_direct(sp.csr_matrix([[2.0]]), np.array([6.0])) == pytest.approx(
            [3.0]
        )


class TestDispatch:
    @pytest.mark.parametrize("method", ["gauss-seidel", "jacobi", "sor", "direct"])
    def test_all_methods_agree(self, method):
        solution = solve_linear_system(SYSTEM, RHS, method=method)
        assert solution == pytest.approx(EXPECTED, abs=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(NumericalError):
            solve_linear_system(SYSTEM, RHS, method="cholesky")


class TestRandomSystems:
    @given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_iterative_matches_direct(self, seed, n):
        rng = np.random.default_rng(seed)
        matrix = diagonally_dominant(n, rng)
        rhs = rng.uniform(-5.0, 5.0, size=n)
        reference = solve_direct(matrix, rhs)
        for method in ("gauss-seidel", "jacobi"):
            solution = solve_linear_system(matrix, rhs, method=method)
            assert solution == pytest.approx(reference, abs=1e-7)


def near_singular_system(scale=1e6, a=0.999):
    """A scaled, nearly singular 2x2 system.

    The Jacobi delta equals ``|D^-1 r|``, so with diagonal entries of
    size ``scale`` the iterate delta is ``scale`` times smaller than the
    true residual: the old delta-based gate declares convergence while
    ``|b - Ax|`` is still ``~scale * tol``.
    """
    matrix = sp.csr_matrix(scale * np.array([[1.0, -a], [-a, 1.0]]))
    rhs = scale * np.array([1.0, 1.0])
    return matrix, rhs


class TestTrueResidualGate:
    """Regression: convergence must be decided on ``|b - Ax|_inf``, not on
    the successive-iterate delta (which mislabels slowly converging or
    badly scaled systems as converged)."""

    def test_old_delta_gate_mislabels_nonconverged_solve(self):
        # Replicate the old convergence test (delta <= tol) verbatim and
        # show the "converged" iterate it returns is nowhere near solved.
        matrix, rhs = near_singular_system()
        tolerance = 1e-12
        diagonal = matrix.diagonal()
        off = matrix - sp.diags(diagonal)
        x = np.zeros_like(rhs)
        delta = np.inf
        for _ in range(100_000):
            x_next = (rhs - off.dot(x)) / diagonal
            delta = float(np.max(np.abs(x_next - x)))
            x = x_next
            if delta <= tolerance:
                break
        assert delta <= tolerance  # the old gate would stop here ...
        true_residual = float(np.max(np.abs(rhs - matrix.dot(x))))
        assert true_residual > 1e4 * tolerance  # ... with the system unsolved

    def test_fixed_gate_refuses_premature_convergence(self):
        matrix, rhs = near_singular_system()
        with pytest.raises(ConvergenceError) as info:
            jacobi(matrix, rhs, tolerance=1e-12, max_iterations=5000)
        assert info.value.residual > 1e-12  # honest residual in the error

    def test_fixed_gate_converges_to_true_residual(self):
        # At an achievable tolerance the solver now iterates past the
        # delta gate until the *residual* meets it.
        matrix, rhs = near_singular_system()
        solution, stats = jacobi(matrix, rhs, tolerance=1e-6)
        assert stats.converged
        true_residual = float(np.max(np.abs(rhs - matrix.dot(solution))))
        assert true_residual <= 1e-6
        assert stats.residual == pytest.approx(true_residual)
        # The delta is reported separately and is much smaller.
        assert stats.delta < stats.residual
        reference = solve_direct(matrix, rhs)
        assert solution == pytest.approx(reference, rel=1e-8)

    def test_gauss_seidel_reports_true_residual(self):
        solution, stats = gauss_seidel(SYSTEM, RHS)
        true_residual = float(np.max(np.abs(RHS - SYSTEM.dot(solution))))
        assert stats.residual == pytest.approx(true_residual, abs=1e-15)
        assert stats.residual <= 1e-12


class TestDirectFallback:
    """solve_linear_system degrades to the direct solver on
    ConvergenceError instead of aborting the caller."""

    BAD = sp.csr_matrix(np.array([[1.0, 3.0], [4.0, 1.0]]))  # GS diverges
    B = np.array([1.0, 1.0])

    def test_falls_back_to_direct(self):
        solution = solve_linear_system(
            self.BAD, self.B, method="gauss-seidel", max_iterations=50
        )
        assert solution == pytest.approx(
            np.linalg.solve(self.BAD.toarray(), self.B), abs=1e-10
        )

    def test_fallback_can_be_disabled(self):
        with pytest.raises(ConvergenceError):
            solve_linear_system(
                self.BAD,
                self.B,
                method="gauss-seidel",
                fallback=False,
                max_iterations=50,
            )

    def test_fallback_records_obs_event(self):
        from repro.obs import Collector, use_collector

        with use_collector(Collector()) as obs:
            solve_linear_system(
                self.BAD, self.B, method="jacobi", max_iterations=50
            )
        fallbacks = obs.events_named("linsolve.fallback")
        assert len(fallbacks) == 1
        assert fallbacks[0]["method"] == "jacobi"
        # The direct solve that served the result is recorded too, with
        # its true residual feeding the error budget.
        solves = obs.events_named("linsolve")
        assert solves and solves[-1]["method"] == "direct"
        assert solves[-1]["residual"] <= 1e-9
        assert obs.counter("linsolve.fallbacks") == 1
