"""Tests for Tarjan SCC and BSCC detection (Algorithm 4.2)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.graphs.scc import (
    bottom_strongly_connected_components,
    strongly_connected_components,
)


def as_sets(components):
    return {frozenset(c) for c in components}


class TestSCC:
    def test_single_node_no_edges(self):
        assert as_sets(strongly_connected_components([[]])) == {frozenset({0})}

    def test_two_cycles_and_bridge(self):
        # 0 <-> 1 -> 2 <-> 3
        adjacency = [[1], [0, 2], [3], [2]]
        assert as_sets(strongly_connected_components(adjacency)) == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }

    def test_dag_gives_singletons(self):
        adjacency = [[1, 2], [3], [3], []]
        assert as_sets(strongly_connected_components(adjacency)) == {
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_full_cycle(self):
        n = 6
        adjacency = [[(i + 1) % n] for i in range(n)]
        assert as_sets(strongly_connected_components(adjacency)) == {
            frozenset(range(n))
        }

    def test_self_loop_is_its_own_scc(self):
        adjacency = [[0, 1], []]
        assert as_sets(strongly_connected_components(adjacency)) == {
            frozenset({0}),
            frozenset({1}),
        }

    def test_sparse_matrix_input(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert as_sets(strongly_connected_components(matrix)) == {frozenset({0, 1})}

    def test_zero_entries_are_not_edges(self):
        matrix = sp.csr_matrix((2, 2))
        assert len(strongly_connected_components(matrix)) == 2

    def test_deep_chain_no_recursion_limit(self):
        n = 50_000
        adjacency = [[i + 1] for i in range(n - 1)] + [[]]
        components = strongly_connected_components(adjacency)
        assert len(components) == n

    def test_out_of_range_successor_rejected(self):
        with pytest.raises(ModelError):
            strongly_connected_components([[5]])

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ModelError):
            strongly_connected_components(sp.csr_matrix((2, 3)))


class TestBSCC:
    def test_paper_figure_3_2(self, bscc_example):
        # Two BSCCs: B1 = {s3, s4} = indices {2, 3}, B2 = {s5} = {4}.
        bsccs = as_sets(bottom_strongly_connected_components(bscc_example.rates))
        assert bsccs == {frozenset({2, 3}), frozenset({4})}

    def test_strongly_connected_chain_is_single_bscc(self):
        adjacency = [[1], [2], [0]]
        bsccs = bottom_strongly_connected_components(adjacency)
        assert as_sets(bsccs) == {frozenset({0, 1, 2})}

    def test_transient_scc_is_not_bottom(self):
        # 0 <-> 1 can escape to 2 (absorbing).
        adjacency = [[1], [0, 2], [2]]
        bsccs = as_sets(bottom_strongly_connected_components(adjacency))
        assert bsccs == {frozenset({2})}

    def test_absorbing_state_without_self_loop(self):
        adjacency = [[1], []]
        bsccs = as_sets(bottom_strongly_connected_components(adjacency))
        assert bsccs == {frozenset({1})}

    def test_every_state_reaches_some_bscc(self):
        # Structural sanity on a random-ish fixed graph.
        adjacency = [[1, 3], [2], [0], [4], [3]]
        bsccs = bottom_strongly_connected_components(adjacency)
        bottom_states = {s for b in bsccs for s in b}
        assert bottom_states  # at least one must exist in any finite graph


class TestBSCCProperties:
    @staticmethod
    def random_adjacency(seed, n, density):
        rng = np.random.default_rng(seed)
        return [
            [j for j in range(n) if rng.random() < density] for i in range(n)
        ]

    @given(
        seed=st.integers(0, 5_000),
        n=st.integers(1, 15),
        density=st.floats(0.0, 0.4),
    )
    @settings(max_examples=60, deadline=None)
    def test_components_partition_states(self, seed, n, density):
        adjacency = self.random_adjacency(seed, n, density)
        components = strongly_connected_components(adjacency)
        flat = [s for c in components for s in c]
        assert sorted(flat) == list(range(n))

    @given(
        seed=st.integers(0, 5_000),
        n=st.integers(1, 15),
        density=st.floats(0.0, 0.4),
    )
    @settings(max_examples=60, deadline=None)
    def test_bsccs_are_closed(self, seed, n, density):
        adjacency = self.random_adjacency(seed, n, density)
        for bscc in bottom_strongly_connected_components(adjacency):
            members = set(bscc)
            for state in members:
                assert set(adjacency[state]) <= members

    @given(
        seed=st.integers(0, 5_000),
        n=st.integers(1, 15),
        density=st.floats(0.0, 0.4),
    )
    @settings(max_examples=60, deadline=None)
    def test_bsccs_exist(self, seed, n, density):
        adjacency = self.random_adjacency(seed, n, density)
        assert bottom_strongly_connected_components(adjacency)
