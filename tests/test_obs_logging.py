"""Tests for repro.obs.logging: StructuredLogger and SlowLog."""

import io
import json
import threading

import pytest

from repro.obs import LOG_LEVELS, SlowLog, StructuredLogger


class TestStructuredLogger:
    def test_json_format_one_object_per_line(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="info")
        log.info("request.completed", request_id="abc123", duration_s=0.25)
        log.warning("request.shed", tenant="bulk")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request.completed"
        assert first["level"] == "info"
        assert first["request_id"] == "abc123"
        assert first["duration_s"] == 0.25
        assert first["ts"].endswith("Z")
        assert json.loads(lines[1])["level"] == "warning"

    def test_text_format_key_value_line(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="text", level="debug")
        log.debug("cache.hit", key="a b", count=3)
        line = stream.getvalue().strip()
        assert " DEBUG " in line
        assert "cache.hit" in line
        assert 'key="a b"' in line  # spaces force quoting
        assert "count=3" in line

    def test_level_threshold_drops_records(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="warning")
        log.debug("nope")
        log.info("nope")
        log.warning("yes")
        log.error("yes")
        events = [json.loads(l)["level"] for l in stream.getvalue().splitlines()]
        assert events == ["warning", "error"]
        assert not log.enabled_for("info")
        assert log.enabled_for("error")

    def test_off_level_disables_everything(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="off")
        for level in ("debug", "info", "warning", "error"):
            log.log(level, "nope")
        assert stream.getvalue() == ""

    def test_none_fields_are_dropped(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="info")
        log.info("event", present=1, absent=None)
        record = json.loads(stream.getvalue())
        assert "present" in record and "absent" not in record

    def test_invalid_format_and_level_raise(self):
        with pytest.raises(ValueError):
            StructuredLogger(fmt="xml")
        with pytest.raises(ValueError):
            StructuredLogger(level="loud")

    def test_dead_stream_never_raises(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="info")
        stream.close()
        log.info("event")  # must not raise

    def test_concurrent_writers_never_shear_lines(self):
        stream = io.StringIO()
        log = StructuredLogger(stream=stream, fmt="json", level="info")

        def spam(tag):
            for i in range(200):
                log.info("tick", tag=tag, i=i)

        threads = [
            threading.Thread(target=spam, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 800
        for line in lines:
            json.loads(line)  # every line is a complete record

    def test_levels_are_ordered(self):
        assert (
            LOG_LEVELS["debug"]
            < LOG_LEVELS["info"]
            < LOG_LEVELS["warning"]
            < LOG_LEVELS["error"]
            < LOG_LEVELS["off"]
        )


class TestSlowLog:
    def test_retains_worst_n_by_duration(self):
        slowlog = SlowLog(capacity=3)
        for duration in (0.1, 0.5, 0.2, 0.9, 0.05, 0.3):
            slowlog.record(duration, {"d": duration})
        entries = slowlog.entries()
        assert [e["duration_s"] for e in entries] == [0.9, 0.5, 0.3]
        assert len(slowlog) == 3

    def test_record_reports_retention(self):
        slowlog = SlowLog(capacity=2)
        assert slowlog.record(0.5, {}) is True
        assert slowlog.record(0.7, {}) is True
        assert slowlog.record(0.1, {}) is False  # below the floor
        assert slowlog.record(0.6, {}) is True  # evicts 0.5

    def test_threshold_none_until_full(self):
        slowlog = SlowLog(capacity=2)
        assert slowlog.threshold_s() is None
        slowlog.record(0.5, {})
        assert slowlog.threshold_s() is None
        slowlog.record(0.2, {})
        assert slowlog.threshold_s() == 0.2

    def test_entries_are_copies(self):
        slowlog = SlowLog(capacity=1)
        slowlog.record(1.0, {"request_id": "abc"})
        slowlog.entries()[0]["request_id"] = "mutated"
        assert slowlog.entries()[0]["request_id"] == "abc"

    def test_equal_durations_never_compare_entries(self):
        slowlog = SlowLog(capacity=4)
        # Dicts are not orderable; identical durations must not reach
        # a dict-vs-dict comparison inside the heap.
        for _ in range(8):
            slowlog.record(0.5, {"payload": object()})
        assert len(slowlog) == 4

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowLog(capacity=0)
