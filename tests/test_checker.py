"""Tests for the ModelChecker recursion (Algorithm 4.1)."""

import pytest

from repro.check.checker import CheckOptions, ModelChecker
from repro.exceptions import CheckError, FormulaError
from repro.logic.ast import Atomic, Comparison, Next, Prob, Until, ap, tt
from repro.numerics.intervals import Interval


@pytest.fixture
def checker(wavelan):
    return ModelChecker(wavelan)


class TestBooleanLayer:
    def test_tt_ff(self, checker):
        assert checker.satisfying_states("TT") == frozenset(range(5))
        assert checker.satisfying_states("FF") == frozenset()

    def test_atomic(self, checker):
        assert checker.satisfying_states("busy") == {3, 4}
        assert checker.satisfying_states("idle") == {2}

    def test_negation(self, checker):
        assert checker.satisfying_states("!busy") == {0, 1, 2}

    def test_disjunction_conjunction(self, checker):
        assert checker.satisfying_states("busy || idle") == {2, 3, 4}
        assert checker.satisfying_states("busy && receive") == {3}

    def test_implication(self, checker):
        # busy => receive fails only in transmit (busy but not receive).
        assert checker.satisfying_states("busy => receive") == {0, 1, 2, 3}

    def test_unknown_proposition_rejected(self, checker):
        with pytest.raises(CheckError, match="atomic proposition"):
            checker.satisfying_states("nonexistent_label")

    def test_ast_input(self, checker):
        assert checker.satisfying_states(~ap("busy")) == {0, 1, 2}

    def test_bad_input_type(self, checker):
        with pytest.raises(FormulaError):
            checker.satisfying_states(42)


class TestQuantitativeLayer:
    def test_steady_formula(self, checker):
        # The modem spends most time dozing between off and sleep; just
        # exercise both directions of the bound.
        result = checker.check("S(>=0) busy")
        assert result.states == frozenset(range(5))
        assert result.probabilities is not None

    def test_until_probability_values_recorded(self, checker):
        result = checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        assert result.probability_of(2) == pytest.approx(0.15789, abs=2e-5)
        # idle (0.158), receive and transmit (trivially 1) clear the bound.
        assert result.states == {2, 3, 4}

    def test_nested_formula(self, checker):
        formula = "P(>0) [X (P(>0) [X busy])]"
        states = checker.satisfying_states(formula)
        # Inner set: states with a direct transition to busy = {idle}.
        # Outer: states with a direct transition to idle — sleep, receive
        # and transmit; idle itself has no idle successor.
        assert states == {1, 3, 4}

    def test_holds_in(self, checker):
        assert checker.holds_in("idle", 2)
        assert not checker.holds_in("idle", 0)

    def test_check_result_contains(self, checker):
        result = checker.check("busy")
        assert 3 in result
        assert 0 not in result


class TestCaching:
    def test_subformula_cache_reused(self, wavelan):
        checker = ModelChecker(wavelan)
        checker.satisfying_states("busy || idle")
        cached = dict(checker._cache)
        assert Atomic("busy") in cached
        # Second query with a shared subformula does not recompute.
        checker.satisfying_states("!(busy || idle)")
        assert checker._cache[Atomic("busy")] is cached[Atomic("busy")]

    def test_expensive_until_cached(self, wavelan):
        checker = ModelChecker(wavelan)
        formula = "P(>0.1) [idle U[0,2][0,2000] busy]"
        first = checker.check(formula)
        second = checker.check(formula)
        assert first.states == second.states

    def test_prob_formulas_share_path_engine_run(self, wavelan, monkeypatch):
        """Two P formulas differing only in comparison/bound run the
        engine once: the value cache is keyed by the path operator."""
        import repro.check.checker as checker_mod

        calls = []
        real = checker_mod.satisfy_until

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checker_mod, "satisfy_until", counting)
        checker = ModelChecker(wavelan)
        low = checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        high = checker.check("P(<=0.9) [idle U[0,2][0,2000] busy]")
        assert len(calls) == 1
        assert len(checker._path_value_cache) == 1
        assert low.probability_of(2) == pytest.approx(high.probability_of(2))

    def test_different_intervals_do_not_share(self, wavelan, monkeypatch):
        import repro.check.checker as checker_mod

        calls = []
        real = checker_mod.satisfy_until

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checker_mod, "satisfy_until", counting)
        checker = ModelChecker(wavelan)
        checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        checker.check("P(>0.1) [idle U[0,1][0,2000] busy]")
        assert len(calls) == 2


class TestPathProbabilities:
    def test_until_string(self, checker):
        values = checker.path_probabilities("idle U[0,2][0,2000] busy")
        assert values[2] == pytest.approx(0.15789, abs=2e-5)
        assert values[3] == 1.0

    def test_next_string(self, checker):
        values = checker.path_probabilities("X busy")
        assert values[2] == pytest.approx(2.25 / 14.25)

    def test_path_ast(self, checker):
        path = Until(
            Atomic("idle"),
            Atomic("busy"),
            time_bound=Interval.upto(2.0),
            reward_bound=Interval.upto(2000.0),
        )
        values = checker.path_probabilities(path)
        assert values[2] == pytest.approx(0.15789, abs=2e-5)

    def test_state_formula_rejected(self, checker):
        with pytest.raises(FormulaError):
            checker.path_probabilities(ap("busy"))


class TestOptions:
    def test_discretization_engine_selected(self, phone):
        options = CheckOptions(
            until_engine="discretization", discretization_step=1 / 8
        )
        checker = ModelChecker(phone, options)
        result = checker.check(
            "P(>0.2) [(Call_Idle || Doze) U[0,4][0,600] Call_Initiated]"
        )
        assert result.probabilities is not None

    def test_paper_truncation_mode_selectable(self, wavelan):
        options = CheckOptions(truncation_mode="paper", truncation_probability=1e-8)
        checker = ModelChecker(wavelan, options)
        # Lambda t = 28.5 makes exp(-Lambda t) < w: the paper's rule
        # discards everything (Table 5.3's failure regime).
        result = checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        assert result.probability_of(2) == 0.0

    def test_merged_strategy(self, wavelan):
        options = CheckOptions(path_strategy="merged")
        checker = ModelChecker(wavelan, options)
        result = checker.check("P(>0.1) [idle U[0,2][0,2000] busy]")
        assert result.probability_of(2) == pytest.approx(0.15789, abs=2e-5)


class TestDiagCountEvent:
    def test_every_observed_run_records_diag_count(self, checker):
        checker.check("busy")
        events = [
            e for e in checker.last_report.events
            if e.get("event") == "diag.count"
        ]
        assert len(events) == 1
        assert events[0]["errors"] == 0
        assert events[0]["warnings"] == 0

    def test_lint_warnings_counted(self, checker):
        checker.check("P(>=0) [busy U idle]")
        (event,) = [
            e for e in checker.last_report.events
            if e.get("event") == "diag.count"
        ]
        assert event["warnings"] == 1
        assert "CSRL020" in event["codes"]
